//! # EKBD — Eventually k-Bounded Wait-Free Distributed Daemons
//!
//! Facade crate for the EKBD workspace, a full Rust reproduction of
//! Song & Pike, *"Eventually k-bounded Wait-Free Distributed Daemons"*
//! (DSN 2007): a wait-free dining-philosophers algorithm under eventual
//! weak exclusion (◇WX) using the locally scope-restricted eventually
//! perfect failure detector ◇P₁, satisfying eventual 2-bounded waiting,
//! bounded space, bounded-capacity channels, and quiescence with respect
//! to crashed processes.
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! * [`graph`] — conflict graphs and priority colorings,
//! * [`sim`] — deterministic discrete-event simulation substrate,
//! * [`detector`] — ◇P₁ failure detectors (scripted oracles and a real
//!   heartbeat implementation),
//! * [`dining`] — **the paper's Algorithm 1** and the daemon abstraction,
//! * [`baselines`] — comparison algorithms (Choy–Singh doorway, naive
//!   priority dining, perfect-oracle dining),
//! * [`stabilize`] — self-stabilizing protocols scheduled by the daemon,
//! * [`metrics`] — property checkers (exclusion, fairness, quiescence, …),
//! * [`harness`] — declarative scenario runner wiring everything together,
//! * [`runtime`] — threaded real-time runtime for the same state machines,
//! * [`net`] — networked daemon-as-a-service: TCP/UDS server, fault-
//!   tolerant sessions, client library, and load generator.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture
//! and the experiment index.

#![forbid(unsafe_code)]

pub use ekbd_baselines as baselines;
pub use ekbd_detector as detector;
pub use ekbd_dining as dining;
pub use ekbd_graph as graph;
pub use ekbd_harness as harness;
pub use ekbd_journal as journal;
pub use ekbd_metrics as metrics;
pub use ekbd_net as net;
pub use ekbd_runtime as runtime;
pub use ekbd_sim as sim;
pub use ekbd_stabilize as stabilize;
