//! The paper's motivating application: scheduling a self-stabilizing
//! protocol with a wait-free distributed daemon, under crash *and*
//! transient faults.
//!
//! A 3×3 grid runs self-stabilizing (δ+1)-coloring. The center process
//! crashes early; transient faults keep corrupting colors afterwards.
//! Scheduled by Algorithm 1 (wait-free), the protocol converges anyway;
//! scheduled by the crash-oblivious Choy–Singh doorway, the processes
//! blocked by the crashed center starve and convergence fails.
//!
//! ```sh
//! cargo run --example daemon_scheduling
//! ```

use ekbd::baselines::ChoySinghProcess;
use ekbd::dining::DiningProcess;
use ekbd::graph::{topology, ProcessId};
use ekbd::harness::Scenario;
use ekbd::sim::Time;
use ekbd::stabilize::{ColoringProtocol, ScheduledRun, StabilizationConfig};

fn scenario() -> Scenario {
    Scenario::new(topology::grid(3, 3))
        .seed(7)
        .adversarial_oracle(Time(2_000), 60)
        .crash(ProcessId(4), Time(1_000)) // the grid's center
        .horizon(Time(500_000))
}

fn config() -> StabilizationConfig {
    StabilizationConfig {
        seed: 99,
        think: (1, 10),
        // A barrage of worst-case transient faults, all well after the
        // crash, targeting the crashed center's neighbors (p1/p3/p5/p7):
        // each corruption clones a neighbor's color, and sooner or later one
        // of them clones the DEAD center's color — a conflict only the
        // corrupted process itself can repair.
        transient_faults: (0..12)
            .map(|k| {
                let victims = [1usize, 3, 5, 7];
                (
                    Time(4_000 + 500 * k),
                    ProcessId::from(victims[k as usize % 4]),
                )
            })
            .collect(),
    }
}

fn main() {
    println!("Self-stabilizing (δ+1)-coloring on a 3×3 grid.");
    println!("Center process p4 crashes at t=1000; 10 transient faults follow.\n");

    let wait_free = ScheduledRun::execute(
        &ColoringProtocol::adversarial(),
        scenario(),
        &config(),
        |s, p| DiningProcess::from_graph(&s.graph, &s.colors, p),
    );
    println!("── scheduled by Algorithm 1 (wait-free daemon, ◇P₁) ──");
    println!("  protocol steps executed: {}", wait_free.steps_executed);
    println!("  faults injected:         {}", wait_free.faults_injected);
    println!(
        "  starving processes:      {:?}",
        wait_free.dining.progress().starving()
    );
    println!(
        "  converged:               {} (at {:?})",
        wait_free.legitimate_at_end, wait_free.converged_at
    );
    assert!(
        wait_free.legitimate_at_end,
        "the wait-free daemon must converge"
    );

    let oblivious = ScheduledRun::execute(
        &ColoringProtocol::adversarial(),
        scenario(),
        &config(),
        |s, p| ChoySinghProcess::from_graph(&s.graph, &s.colors, p),
    );
    println!("\n── scheduled by Choy–Singh (crash-oblivious doorway) ──");
    println!("  protocol steps executed: {}", oblivious.steps_executed);
    println!("  faults injected:         {}", oblivious.faults_injected);
    println!(
        "  starving processes:      {:?}",
        oblivious.dining.progress().starving()
    );
    println!(
        "  converged:               {} (at {:?})",
        oblivious.legitimate_at_end, oblivious.converged_at
    );
    assert!(
        !oblivious.dining.progress().wait_free(),
        "the crash-oblivious daemon starves the center's neighbors"
    );
    assert!(
        !oblivious.legitimate_at_end,
        "a starved process cannot repair its corrupted state"
    );

    println!(
        "\nThis is the paper's point (§1): without crash-fault detection, a \n\
         dining-based daemon starves correct processes once a neighbor crashes,\n\
         and a starved process can never repair its state — stabilization fails.\n\
         With ◇P₁, scheduling stays wait-free and convergence survives."
    );
}
