//! Quickstart: five dining philosophers on a ring, one crash, a misbehaving
//! oracle — and every property of the paper checked on the run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ekbd::graph::{topology, ProcessId};
use ekbd::harness::{Scenario, Workload};
use ekbd::sim::Time;

fn main() {
    // Five diners in a ring. The oracle falsely suspects everyone in bursts
    // until t=2000 (a worst-case-but-legal ◇P₁ history), and p2 crashes at
    // t=1500 while the table is busy.
    let report = Scenario::new(topology::ring(5))
        .seed(42)
        .adversarial_oracle(Time(2_000), 50)
        .crash(ProcessId(2), Time(1_500))
        .workload(Workload {
            sessions: 30,
            think: (1, 100),
            eat: (1, 15),
        })
        .horizon(Time(100_000))
        .run_algorithm1();

    println!("events processed ............ {}", report.events_processed);
    println!("messages sent ............... {}", report.total_messages);
    println!(
        "eat sessions granted ........ {}",
        report.total_eat_sessions()
    );

    // Theorem 2 — wait-freedom: every correct hungry process ate.
    let progress = report.progress();
    println!("\nTheorem 2 (wait-freedom)");
    println!("  starving correct processes: {:?}", progress.starving());
    assert!(progress.wait_free());
    let lat = progress.latency_summary();
    println!(
        "  hungry-session latency: p50={} p99={} p999={} max={}",
        lat.p50, lat.p99, lat.p999, lat.max
    );

    // Theorem 1 — ◇WX: mistakes happen only before the oracle converges.
    let exclusion = report.exclusion();
    let convergence = report.detector_convergence();
    println!("\nTheorem 1 (eventual weak exclusion)");
    println!("  oracle convergence (measured): {convergence}");
    println!("  scheduling mistakes, total:    {}", exclusion.total());
    println!(
        "  scheduling mistakes after conv: {}",
        exclusion.after(convergence)
    );
    assert_eq!(exclusion.after(convergence), 0);

    // Theorem 3 — ◇2-BW: at most two overtakes in the suffix.
    let fairness = report.fairness();
    println!("\nTheorem 3 (eventual 2-bounded waiting)");
    println!(
        "  max consecutive overtakes after conv: {}",
        fairness.max_overtakes_after(convergence)
    );
    assert!(fairness.max_overtakes_after(convergence) <= 2);

    // §7 — bounded channels and quiescence.
    println!("\n§7 (efficiency)");
    println!(
        "  max messages in transit per edge: {} (bound: 4)",
        report.max_channel_high_water
    );
    assert!(report.max_channel_high_water <= 4);
    let q = report.quiescence();
    println!(
        "  messages sent to the crashed p2 after its crash: {} (last at {:?})",
        q.total(),
        q.last_send()
    );
    assert!(q.quiescent_by(report.horizon));

    println!("\nAll of the paper's properties hold on this run.");
}
