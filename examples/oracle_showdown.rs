//! One scenario, five oracles: how detector quality shapes the run.
//!
//! The same clique, workload, seed, and crash, scheduled by Algorithm 1
//! under: the perfect detector `P`, two adversarial ◇P₁ scripts (early
//! and late convergence), the real heartbeat detector, and the real
//! probe/echo detector. Compare mistakes, convergence, overtaking, and
//! detection latency.
//!
//! ```sh
//! cargo run --release --example oracle_showdown
//! ```

use ekbd::detector::{HeartbeatConfig, ProbeConfig};
use ekbd::graph::{topology, ProcessId};
use ekbd::harness::{RunReport, Scenario, Workload};
use ekbd::metrics::DetectorQualityReport;
use ekbd::sim::{DelayModel, Time};

fn base() -> Scenario {
    Scenario::new(topology::clique(5))
        .seed(8)
        .delay(DelayModel::Gst {
            gst: Time(1_000),
            pre_max: 100,
            delta: 6,
        })
        .crash(ProcessId(1), Time(2_000))
        .workload(Workload {
            sessions: 40,
            think: (1, 120),
            eat: (1, 15),
        })
        .horizon(Time(300_000))
}

fn describe(name: &str, report: &RunReport) {
    let conv = report.detector_convergence();
    let ex = report.exclusion();
    let quality = DetectorQualityReport::analyze(
        &report.graph,
        &report.suspicions,
        &report.crashes,
        report.horizon,
    );
    println!(
        "{name:<22} conv={:<6} mistakes={:<3} (after conv: {}) overtakes≤{} fp={} detect-latency={:?} starving={:?}",
        format!("{conv}"),
        ex.total(),
        ex.after(conv),
        report.fairness().max_overtakes_after(conv),
        quality.false_positives,
        quality.max_detection_latency(),
        report.progress().starving(),
    );
    assert!(report.progress().wait_free());
    assert_eq!(ex.after(conv), 0);
}

fn main() {
    println!("clique-5, crash p1@2000, identical workload & seed — only the oracle differs\n");
    describe("perfect P", &base().perfect_oracle().run_algorithm1());
    describe(
        "adversarial (conv 500)",
        &base().adversarial_oracle(Time(500), 30).run_algorithm1(),
    );
    describe(
        "adversarial (conv 4000)",
        &base().adversarial_oracle(Time(4_000), 30).run_algorithm1(),
    );
    describe(
        "heartbeat (t/o 50)",
        &base()
            .heartbeat_oracle(HeartbeatConfig {
                period: 10,
                initial_timeout: 50,
                timeout_increment: 30,
            })
            .run_algorithm1(),
    );
    describe(
        "probe/echo (t/o 80)",
        &base()
            .probe_oracle(ProbeConfig {
                period: 10,
                initial_timeout: 80,
                timeout_increment: 30,
            })
            .run_algorithm1(),
    );
    println!(
        "\nEvery oracle — even the wildly misbehaving ones — yields a wait-free,\n\
         eventually-clean schedule; only the length of the messy prefix and the\n\
         crash-detection latency differ. That is Theorems 1–3 in one screen."
    );
}
