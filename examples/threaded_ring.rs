//! The same Algorithm 1 state machines on real OS threads: crossbeam
//! channels as FIFO links, wall-clock heartbeats as ◇P₁, and a genuine
//! crash (the thread exits mid-protocol).
//!
//! ```sh
//! cargo run --example threaded_ring
//! ```

use ekbd::dining::DiningObs;
use ekbd::graph::{topology, ProcessId};
use ekbd::metrics::ExclusionReport;
use ekbd::runtime::{RuntimeConfig, ThreadedDining};
use ekbd::sim::Time;
use std::time::Duration;

fn main() {
    let graph = topology::ring(5);
    println!("Spawning 5 philosopher threads on a ring (heartbeat ◇P₁, 10ms period)…");
    let sys = ThreadedDining::spawn(graph.clone(), RuntimeConfig::default());

    // Phase 1: everyone dines politely.
    for round in 0..10 {
        for i in 0..5 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(25 + round));
    }
    println!(
        "t={:>4}ms  phase 1 done: {} events so far",
        sys.elapsed_ms(),
        sys.events_so_far().len()
    );

    // Phase 2: p0's thread crashes for real; its neighbors keep dining.
    sys.crash(ProcessId(0));
    println!("t={:>4}ms  p0 CRASHED (thread exited)", sys.elapsed_ms());
    for _ in 0..10 {
        for i in 1..5 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(40));
    }

    let events = sys.shutdown_after(Duration::from_millis(300));
    let mut eats = [0u32; 5];
    for e in &events {
        if e.obs == DiningObs::StartedEating {
            eats[e.process.index()] += 1;
        }
    }
    println!("\neat sessions per process: {eats:?}");
    assert!(
        (1..5).all(|i| eats[i] > eats[0]),
        "survivors must keep eating after the crash"
    );

    // No false suspicion happens on a local machine with a 100ms initial
    // timeout, so exclusion should be perfect even before "convergence".
    let report = ExclusionReport::analyze(&graph, &events, &|_| None, Time(600_000));
    println!("scheduling mistakes observed: {}", report.total());
    println!("\nWait-freedom on real threads: the crashed thread is suspected by");
    println!("its neighbors' heartbeat detectors (~100ms) and dining continues.");
}
