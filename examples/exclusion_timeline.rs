//! An ASCII timeline of eating intervals around the oracle's convergence:
//! *watch* eventual weak exclusion establish itself.
//!
//! Before the scripted ◇P₁ converges (t=1200), bursts of mutual false
//! suspicion let neighbors eat simultaneously (scheduling mistakes, marked
//! `!` where an overlap begins). After convergence the schedule is clean
//! forever. A crash is marked `×`.
//!
//! ```sh
//! cargo run --example exclusion_timeline
//! ```

use ekbd::graph::{topology, ProcessId};
use ekbd::harness::{Scenario, Workload};
use ekbd::metrics::Timeline;
use ekbd::sim::Time;

const CONVERGE: u64 = 1_200;

fn main() {
    let graph = topology::ring(4);
    let report = Scenario::new(graph.clone())
        .seed(3)
        .adversarial_oracle(Time(CONVERGE), 45)
        .crash(ProcessId(3), Time(1_800))
        .workload(Workload {
            sessions: 60,
            think: (1, 30),
            eat: (8, 25),
        })
        .horizon(Time(50_000))
        .run_algorithm1();

    println!("eating timeline, t=0..2400; '#' eating, '!' mistake begins, '×' crash\n");
    let rendering = Timeline::until(Time(2_400))
        .width(96)
        .marker(Time(CONVERGE))
        .render(
            &graph,
            &report.events,
            &|p| report.crash_time(p),
            report.horizon,
        );
    println!(
        "      {}  <- ◇P₁ converges (t={CONVERGE})",
        rendering.lines().next().unwrap_or("").trim_end()
    );
    for line in rendering.lines().skip(1) {
        println!("{line}");
    }

    let exclusion = report.exclusion();
    println!(
        "\nmistakes before convergence: {}; after: {}",
        exclusion.total(),
        exclusion.after(Time(CONVERGE))
    );
    assert_eq!(
        exclusion.after(Time(CONVERGE)),
        0,
        "Theorem 1: clean suffix"
    );
    assert!(report.progress().wait_free(), "Theorem 2 despite the crash");
}
