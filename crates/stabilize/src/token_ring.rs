use crate::protocol::Protocol;
use ekbd_graph::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::Rng;

/// Dijkstra's K-state self-stabilizing token ring (1974) — the protocol
/// that founded the field, and the paper's canonical "stabilizing protocol
/// that needs a daemon".
///
/// Processes `0..n` form a directed ring; state is a counter in `0..k`
/// with `k > n`. Process 0 holds the token when its state equals its
/// predecessor's (process `n-1`) and increments modulo `k`; every other
/// process holds the token when its state *differs* from its predecessor's
/// and copies it. Legitimacy: exactly one process holds the token.
///
/// Crash caveat: a ring with a crashed member cannot circulate a token, so
/// this protocol is used in crash-free experiments only (the paper's
/// wait-free daemon keeps *scheduling* everyone, but no daemon can repair
/// a protocol whose own communication structure is severed — that is a
/// limitation of the scheduled protocol, not of the daemon).
#[derive(Clone, Copy, Debug)]
pub struct TokenRingProtocol {
    /// Number of counter values; must exceed the ring size.
    pub k: u32,
}

impl TokenRingProtocol {
    /// Creates the protocol for rings of fewer than `k` processes.
    pub fn new(k: u32) -> Self {
        TokenRingProtocol { k }
    }

    fn pred(p: ProcessId, n: usize) -> usize {
        (p.index() + n - 1) % n
    }

    /// Whether `p` holds the token in `view`.
    pub fn holds_token(&self, p: ProcessId, view: &[u32]) -> bool {
        let n = view.len();
        let me = view[p.index()];
        let pred = view[Self::pred(p, n)];
        if p.index() == 0 {
            me == pred
        } else {
            me != pred
        }
    }
}

impl Protocol for TokenRingProtocol {
    type State = u32;

    fn name(&self) -> &'static str {
        "token-ring"
    }

    fn random_config(&self, g: &ConflictGraph, rng: &mut StdRng) -> Vec<u32> {
        assert!(
            (g.len() as u32) < self.k,
            "K-state ring needs k > n (k={}, n={})",
            self.k,
            g.len()
        );
        (0..g.len()).map(|_| rng.gen_range(0..self.k)).collect()
    }

    fn corrupt(&self, _p: ProcessId, _states: &[u32], _g: &ConflictGraph, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.k)
    }

    fn enabled(&self, p: ProcessId, view: &[u32], _g: &ConflictGraph) -> bool {
        self.holds_token(p, view)
    }

    fn target(&self, p: ProcessId, view: &[u32], _g: &ConflictGraph) -> u32 {
        let n = view.len();
        if p.index() == 0 {
            (view[0] + 1) % self.k
        } else {
            view[Self::pred(p, n)]
        }
    }

    fn legitimate(
        &self,
        states: &[u32],
        _g: &ConflictGraph,
        alive: &dyn Fn(ProcessId) -> bool,
    ) -> bool {
        // Crash-free protocol: legitimacy is only meaningful with everyone
        // alive; a severed ring is never legitimate.
        let n = states.len();
        if (0..n).any(|i| !alive(ProcessId::from(i))) {
            return false;
        }
        let holders = (0..n)
            .filter(|&i| self.holds_token(ProcessId::from(i), states))
            .count();
        holders == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn uniform_config_gives_token_to_p0() {
        let proto = TokenRingProtocol::new(7);
        let view = vec![3, 3, 3, 3];
        assert!(proto.holds_token(p(0), &view));
        assert!(!proto.holds_token(p(1), &view));
        assert!(proto.legitimate(&view, &topology::ring(4), &|_| true));
    }

    #[test]
    fn token_circulates() {
        let g = topology::ring(4);
        let proto = TokenRingProtocol::new(7);
        let mut view = vec![3, 3, 3, 3];
        // p0 fires: 4,3,3,3 → token at p1; then copies propagate.
        for expected_holder in [0usize, 1, 2, 3] {
            assert!(proto.holds_token(p(expected_holder), &view));
            assert!(proto.enabled(p(expected_holder), &view, &g));
            view[expected_holder] = proto.target(p(expected_holder), &view, &g);
        }
        assert_eq!(view, vec![4, 4, 4, 4]);
        assert!(proto.holds_token(p(0), &view), "token is back at p0");
    }

    #[test]
    fn converges_from_arbitrary_config() {
        let g = topology::ring(5);
        let proto = TokenRingProtocol::new(6);
        let mut rng = StdRng::seed_from_u64(17);
        let mut states = proto.random_config(&g, &mut rng);
        let alive = |_: ProcessId| true;
        // Central-daemon execution: step the lowest-id token holder.
        let mut steps = 0;
        while !proto.legitimate(&states, &g, &alive) {
            let holder = g
                .processes()
                .find(|&q| proto.enabled(q, &states, &g))
                .expect("some process always holds a token");
            states[holder.index()] = proto.target(holder, &states, &g);
            steps += 1;
            assert!(steps < 1_000, "K-state ring failed to converge");
        }
        // And once legitimate, stays legitimate while circulating.
        for _ in 0..20 {
            let holder = g
                .processes()
                .find(|&q| proto.enabled(q, &states, &g))
                .unwrap();
            states[holder.index()] = proto.target(holder, &states, &g);
            assert!(proto.legitimate(&states, &g, &alive));
        }
    }

    #[test]
    #[should_panic(expected = "k > n")]
    fn rejects_small_k() {
        let g = topology::ring(6);
        let proto = TokenRingProtocol::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = proto.random_config(&g, &mut rng);
    }

    #[test]
    fn crashed_ring_is_never_legitimate() {
        let proto = TokenRingProtocol::new(7);
        let view = vec![3, 3, 3, 3];
        assert!(!proto.legitimate(&view, &topology::ring(4), &|q| q != p(2)));
    }
}
