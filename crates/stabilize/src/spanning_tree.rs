use crate::protocol::Protocol;
use ekbd_graph::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::Rng;

/// Self-stabilizing BFS distance computation (the Dolev–Israeli–Moran
/// spanning-tree construction, distance part).
///
/// Process 0 is the root. State: a claimed distance in `0..=n` (`n` acts
/// as ∞). Rules:
///
/// * root enabled iff its distance is not 0; action: set 0;
/// * non-root enabled iff its distance ≠ 1 + min neighbor distance;
///   action: set that value (each process's parent is then any neighbor
///   attaining the minimum, so the distances induce a BFS tree).
///
/// Legitimacy: every distance equals the true BFS distance from the root.
/// Like Dijkstra's token ring, this protocol is used in **crash-free**
/// runs: a process cannot tell a crashed neighbor's frozen distance from
/// a live one, so a severed or stale region cannot be recomputed around —
/// a limitation of the protocol, not of the scheduling daemon.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanningTreeProtocol;

impl SpanningTreeProtocol {
    /// True BFS distances from `p0`, with `n` for unreachable.
    fn bfs(g: &ConflictGraph) -> Vec<u32> {
        let n = g.len();
        let mut dist = vec![n as u32; n];
        if n == 0 {
            return dist;
        }
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([ProcessId(0)]);
        while let Some(p) = queue.pop_front() {
            for &q in g.neighbors(p) {
                if dist[q.index()] == n as u32 {
                    dist[q.index()] = dist[p.index()] + 1;
                    queue.push_back(q);
                }
            }
        }
        dist
    }
}

impl Protocol for SpanningTreeProtocol {
    type State = u32;

    fn name(&self) -> &'static str {
        "bfs-tree"
    }

    fn random_config(&self, g: &ConflictGraph, rng: &mut StdRng) -> Vec<u32> {
        (0..g.len())
            .map(|_| rng.gen_range(0..=g.len() as u32))
            .collect()
    }

    fn corrupt(&self, _p: ProcessId, _states: &[u32], g: &ConflictGraph, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..=g.len() as u32)
    }

    fn enabled(&self, p: ProcessId, view: &[u32], g: &ConflictGraph) -> bool {
        view[p.index()] != self.target(p, view, g)
    }

    fn target(&self, p: ProcessId, view: &[u32], g: &ConflictGraph) -> u32 {
        if p.index() == 0 {
            return 0;
        }
        let min = g
            .neighbors(p)
            .iter()
            .map(|&q| view[q.index()])
            .min()
            .unwrap_or(g.len() as u32);
        min.saturating_add(1).min(g.len() as u32)
    }

    fn legitimate(
        &self,
        states: &[u32],
        g: &ConflictGraph,
        alive: &dyn Fn(ProcessId) -> bool,
    ) -> bool {
        if g.processes().any(|p| !alive(p)) {
            return false; // crash-free protocol
        }
        states == Self::bfs(g).as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = topology::path(4);
        assert_eq!(SpanningTreeProtocol::bfs(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn root_pins_itself_to_zero() {
        let g = topology::path(3);
        let proto = SpanningTreeProtocol;
        let view = vec![5, 1, 2];
        assert!(proto.enabled(p(0), &view, &g));
        assert_eq!(proto.target(p(0), &view, &g), 0);
    }

    #[test]
    fn non_root_takes_min_plus_one() {
        let g = topology::star(4);
        let proto = SpanningTreeProtocol;
        let view = vec![0, 3, 1, 1];
        assert_eq!(proto.target(p(1), &view, &g), 1);
        assert!(proto.enabled(p(1), &view, &g));
        assert!(!proto.enabled(p(2), &view, &g));
    }

    #[test]
    fn sequential_daemon_converges_to_bfs() {
        for (g, seed) in [
            (topology::grid(3, 3), 1u64),
            (topology::binary_tree(11), 2),
            (topology::wheel(8), 3),
        ] {
            let proto = SpanningTreeProtocol;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut states = proto.random_config(&g, &mut rng);
            let alive = |_: ProcessId| true;
            let mut steps = 0;
            while !proto.legitimate(&states, &g, &alive) {
                let next = g
                    .processes()
                    .find(|&q| proto.enabled(q, &states, &g))
                    .expect("illegitimate ⇒ someone enabled");
                states[next.index()] = proto.target(next, &states, &g);
                steps += 1;
                assert!(steps < 100_000, "BFS failed to converge");
            }
            assert_eq!(states, SpanningTreeProtocol::bfs(&g));
        }
    }

    #[test]
    fn crashes_forfeit_legitimacy() {
        let g = topology::path(3);
        let proto = SpanningTreeProtocol;
        let states = SpanningTreeProtocol::bfs(&g);
        assert!(proto.legitimate(&states, &g, &|_| true));
        assert!(!proto.legitimate(&states, &g, &|q| q != p(2)));
    }
}
