use crate::protocol::Protocol;
use ekbd_dining::{DiningAlgorithm, DiningObs};
use ekbd_graph::ProcessId;
use ekbd_harness::{HostObs, LiveRun, RunReport, Scenario};
use ekbd_sim::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a daemon-scheduled stabilization run.
#[derive(Clone, Debug)]
pub struct StabilizationConfig {
    /// Seed for the protocol's initial configuration and fault values
    /// (independent of the simulator seed).
    pub seed: u64,
    /// Delay range between detecting an enabled action and becoming hungry.
    pub think: (u64, u64),
    /// Transient faults: at each time, the given process's state is
    /// replaced by a random corruption (ignored if it already crashed).
    pub transient_faults: Vec<(Time, ProcessId)>,
}

impl Default for StabilizationConfig {
    fn default() -> Self {
        StabilizationConfig {
            seed: 0,
            think: (1, 10),
            transient_faults: Vec::new(),
        }
    }
}

/// Outcome of a daemon-scheduled stabilization run.
#[derive(Clone, Debug)]
pub struct StabilizationReport {
    /// The protocol's name.
    pub protocol: &'static str,
    /// When the configuration last became legitimate and stayed so, if it
    /// was legitimate at the end of the run.
    pub converged_at: Option<Time>,
    /// Whether the final configuration is legitimate (restricted to
    /// processes correct in this run).
    pub legitimate_at_end: bool,
    /// Protocol steps executed (writes).
    pub steps_executed: u64,
    /// Eat-slots in which the action was no longer enabled (no-op steps).
    pub steps_skipped: u64,
    /// Transient faults injected.
    pub faults_injected: u64,
    /// The underlying dining run (for wait-freedom, mistakes, …).
    pub dining: RunReport,
}

/// Schedules a self-stabilizing [`Protocol`] through eat-slots granted by a
/// dining algorithm.
///
/// The execution model follows §1–2 of the paper: each diner represents a
/// process of the stabilizing protocol; it becomes hungry whenever it has an
/// enabled action; when scheduled to eat it executes the action. A step
/// *reads* its neighborhood at the moment eating starts and *writes* its own
/// state when eating ends, so two overlapping eat sessions (a ◇WX mistake)
/// read stale views — a genuine sharing violation whose effect is at worst
/// one more transient fault.
pub struct ScheduledRun;

impl ScheduledRun {
    /// Runs `protocol` under the daemon produced by `factory` on the given
    /// scenario (the scenario's automatic workload is ignored: hunger comes
    /// from enabled actions).
    pub fn execute<P, A>(
        protocol: &P,
        mut scenario: Scenario,
        cfg: &StabilizationConfig,
        factory: impl FnMut(&Scenario, ProcessId) -> A,
    ) -> StabilizationReport
    where
        P: Protocol,
        A: DiningAlgorithm,
    {
        scenario.workload.sessions = 0; // hunger is driven by enabledness
        let graph = scenario.graph.clone();
        let horizon = scenario.horizon;
        let crashes = scenario.crashes.clone();
        let crashed_in_run = |p: ProcessId| crashes.iter().any(|&(q, t)| q == p && t <= horizon);
        let alive = |p: ProcessId| !crashed_in_run(p);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut states = protocol.random_config(&graph, &mut rng);
        let n = graph.len();

        let mut live = LiveRun::new(scenario, factory);
        let mut snapshots: Vec<Option<Vec<P::State>>> = vec![None; n];
        let mut pending_hunger = vec![false; n];
        // Mirror of each process's dining phase; a hunger command is only
        // injected while the process is (believed) thinking, otherwise the
        // host would drop it and the pending flag would stick forever.
        let mut busy = vec![false; n];
        let mut steps_executed = 0u64;
        let mut steps_skipped = 0u64;
        let mut faults_injected = 0u64;

        let mut faults = cfg.transient_faults.clone();
        faults.sort_by_key(|&(t, _)| t);
        faults.reverse(); // pop() yields the earliest

        let mut legit = protocol.legitimate(&states, &graph, &alive);
        let mut became_legit_at = legit.then_some(Time::ZERO);

        // Kick off: every enabled process gets hungry.
        let mut to_check: Vec<ProcessId> = graph.processes().collect();
        loop {
            // (Re)schedule hunger for enabled thinking processes.
            for p in to_check.drain(..) {
                if pending_hunger[p.index()] || busy[p.index()] || live.is_crashed(p) {
                    continue;
                }
                if protocol.enabled(p, &states, &graph) {
                    let (lo, hi) = cfg.think;
                    let delay = rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
                    live.inject_hunger(p, live.now() + delay);
                    pending_hunger[p.index()] = true;
                }
            }

            if !live.step() {
                // The system quiesced; if faults are still scheduled before
                // the horizon, jump the clock to the next one so it fires.
                match faults.last() {
                    Some(&(t, _)) if t <= horizon => live.advance_to(t),
                    _ => break,
                }
            }
            let now = live.now();

            // Apply transient faults that have come due.
            while faults.last().is_some_and(|&(t, _)| t <= now) {
                let (_, p) = faults.pop().expect("non-empty");
                if !live.is_crashed(p) {
                    states[p.index()] = protocol.corrupt(p, &states, &graph, &mut rng);
                    faults_injected += 1;
                    let was = legit;
                    legit = protocol.legitimate(&states, &graph, &alive);
                    if was && !legit {
                        became_legit_at = None;
                    }
                    to_check.push(p);
                    to_check.extend(graph.neighbors(p).iter().copied());
                }
            }

            let observations: Vec<(Time, ProcessId, HostObs)> = live
                .new_observations()
                .iter()
                .map(|o| (o.time, o.process, o.obs))
                .collect();
            for (t, p, obs) in observations {
                match obs {
                    HostObs::Sched(DiningObs::BecameHungry) => {
                        pending_hunger[p.index()] = false;
                        busy[p.index()] = true;
                    }
                    HostObs::Sched(DiningObs::StartedEating) => {
                        // Read phase: snapshot the whole view.
                        snapshots[p.index()] = Some(states.clone());
                    }
                    HostObs::Sched(DiningObs::StoppedEating) => {
                        busy[p.index()] = false;
                        if let Some(view) = snapshots[p.index()].take() {
                            if protocol.enabled(p, &view, &graph) {
                                states[p.index()] = protocol.target(p, &view, &graph);
                                steps_executed += 1;
                                let was = legit;
                                legit = protocol.legitimate(&states, &graph, &alive);
                                if !was && legit {
                                    became_legit_at = Some(t);
                                } else if was && !legit {
                                    became_legit_at = None;
                                }
                            } else {
                                steps_skipped += 1;
                            }
                            to_check.push(p);
                            to_check.extend(graph.neighbors(p).iter().copied());
                        }
                    }
                    _ => {}
                }
            }
        }

        let legitimate_at_end = protocol.legitimate(&states, &graph, &alive);
        StabilizationReport {
            protocol: protocol.name(),
            converged_at: legitimate_at_end.then_some(became_legit_at).flatten(),
            legitimate_at_end,
            steps_executed,
            steps_skipped,
            faults_injected,
            dining: live.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColoringProtocol, MisProtocol, TokenRingProtocol};
    use ekbd_baselines::ChoySinghProcess;
    use ekbd_dining::DiningProcess;
    use ekbd_graph::topology;

    fn algorithm1(s: &Scenario, p: ProcessId) -> DiningProcess {
        DiningProcess::from_graph(&s.graph, &s.colors, p)
    }

    #[test]
    fn coloring_converges_crash_free() {
        let scenario = Scenario::new(topology::grid(3, 3))
            .seed(2)
            .horizon(Time(200_000));
        let report = ScheduledRun::execute(
            &ColoringProtocol::default(),
            scenario,
            &StabilizationConfig {
                seed: 5,
                ..Default::default()
            },
            algorithm1,
        );
        assert!(report.legitimate_at_end, "coloring must converge");
        assert!(report.converged_at.is_some());
        assert!(report.steps_executed > 0);
        assert!(report.dining.progress().wait_free());
    }

    #[test]
    fn coloring_converges_despite_crashes_with_wait_free_daemon() {
        let scenario = Scenario::new(topology::grid(3, 3))
            .seed(3)
            .adversarial_oracle(Time(2_000), 60)
            .crash(ProcessId(4), Time(1_000)) // the center of the grid
            .horizon(Time(400_000));
        let cfg = StabilizationConfig {
            seed: 6,
            transient_faults: vec![
                (Time(5_000), ProcessId(1)),
                (Time(6_000), ProcessId(3)),
                (Time(7_000), ProcessId(7)),
            ],
            ..Default::default()
        };
        let report =
            ScheduledRun::execute(&ColoringProtocol::default(), scenario, &cfg, algorithm1);
        assert!(
            report.legitimate_at_end,
            "wait-free daemon must let the protocol converge despite the crash"
        );
        assert!(report.dining.progress().wait_free());
    }

    #[test]
    fn crash_oblivious_daemon_blocks_convergence() {
        // Same shape, but the Choy–Singh daemon: the crashed center blocks
        // its neighbors in the doorway forever, so corruptions injected
        // after the crash can never be repaired by blocked processes.
        let scenario = Scenario::new(topology::star(5))
            .seed(3)
            .crash(ProcessId(0), Time(1_000)) // hub crashes
            .horizon(Time(300_000));
        // Force every leaf to need a step after the hub crashed: corrupt
        // them to the hub's color region repeatedly.
        let cfg = StabilizationConfig {
            seed: 11,
            transient_faults: (0..20)
                .map(|k| (Time(2_000 + k * 100), ProcessId::from(1 + (k as usize % 4))))
                .collect(),
            ..Default::default()
        };
        let cs = ScheduledRun::execute(
            &ColoringProtocol::default(),
            scenario.clone(),
            &cfg,
            |s: &Scenario, p| ChoySinghProcess::from_graph(&s.graph, &s.colors, p),
        );
        // The crash-oblivious baseline leaves starving diners…
        assert!(
            !cs.dining.progress().wait_free(),
            "Choy–Singh starves once the hub crashes"
        );
        // …while Algorithm 1 under the same schedule (with an oracle — here
        // the perfect one) stays wait-free and converges.
        let algo1 = ScheduledRun::execute(
            &ColoringProtocol::default(),
            scenario.perfect_oracle(),
            &cfg,
            algorithm1,
        );
        assert!(algo1.dining.progress().wait_free());
        assert!(algo1.legitimate_at_end);
    }

    #[test]
    fn mis_converges_with_daemon() {
        let scenario = Scenario::new(topology::ring(6))
            .seed(9)
            .horizon(Time(200_000));
        let report = ScheduledRun::execute(
            &MisProtocol,
            scenario,
            &StabilizationConfig {
                seed: 1,
                ..Default::default()
            },
            algorithm1,
        );
        assert!(report.legitimate_at_end);
    }

    #[test]
    fn token_ring_converges_with_daemon() {
        let scenario = Scenario::new(topology::ring(5))
            .seed(14)
            .horizon(Time(400_000));
        let report = ScheduledRun::execute(
            &TokenRingProtocol::new(7),
            scenario,
            &StabilizationConfig {
                seed: 2,
                ..Default::default()
            },
            algorithm1,
        );
        assert!(report.legitimate_at_end, "K-state ring must stabilize");
        assert!(report.steps_executed > 0);
    }
}
