use ekbd_graph::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use std::fmt;

/// A self-stabilizing protocol in the locally shared state model.
///
/// Each process holds one `State`; a process's action reads the states of
/// its closed neighborhood (a *view*, indexed by process id) and rewrites
/// its own state. The dining daemon supplies the local mutual exclusion
/// that makes a step effectively atomic — except during the finitely many
/// ◇WX mistakes, when two neighbors may step from stale views.
pub trait Protocol {
    /// Per-process state.
    type State: Clone + Eq + fmt::Debug;

    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// An arbitrary (adversarial) initial configuration — self-stabilizing
    /// protocols must converge from any of these.
    fn random_config(&self, g: &ConflictGraph, rng: &mut StdRng) -> Vec<Self::State>;

    /// A single-state corruption (transient fault) for process `p`. The
    /// adversary sees the current configuration `states`, so protocols can
    /// model worst-case faults (e.g. cloning a neighbor's color).
    fn corrupt(
        &self,
        p: ProcessId,
        states: &[Self::State],
        g: &ConflictGraph,
        rng: &mut StdRng,
    ) -> Self::State;

    /// Whether `p` has an enabled action in `view`.
    fn enabled(&self, p: ProcessId, view: &[Self::State], g: &ConflictGraph) -> bool;

    /// The new state `p` writes when executing its action from `view`.
    /// Called only when [`enabled`](Self::enabled) holds in `view`.
    fn target(&self, p: ProcessId, view: &[Self::State], g: &ConflictGraph) -> Self::State;

    /// Global legitimacy, restricted to live processes: crashed processes
    /// keep their last state forever, and the predicate must only require
    /// what live processes can still achieve.
    fn legitimate(
        &self,
        states: &[Self::State],
        g: &ConflictGraph,
        alive: &dyn Fn(ProcessId) -> bool,
    ) -> bool;
}
