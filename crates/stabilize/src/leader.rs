use crate::protocol::Protocol;
use ekbd_graph::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::Rng;

/// Self-stabilizing leader election by maximal-id propagation over a
/// bounded id space.
///
/// State: a claimed leader id in `0..n`. A process's action sets its claim
/// to `max(own id, max neighbor claim)`. Because the id space is bounded
/// by the real ids and the true maximum (`n-1`) re-asserts itself at its
/// own process, every connected configuration converges to "everyone
/// claims `n-1`" — with no ghost-leader problem (any claim in `0..n` is
/// eventually dominated by the real maximum).
///
/// Crash-free, like the token ring: a crashed process's frozen claim
/// still propagates, and a crashed true leader cannot be deposed in this
/// simple rule set.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaderProtocol;

impl Protocol for LeaderProtocol {
    type State = u32;

    fn name(&self) -> &'static str {
        "leader"
    }

    fn random_config(&self, g: &ConflictGraph, rng: &mut StdRng) -> Vec<u32> {
        let n = g.len().max(1) as u32;
        (0..g.len()).map(|_| rng.gen_range(0..n)).collect()
    }

    fn corrupt(&self, _p: ProcessId, _states: &[u32], g: &ConflictGraph, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..g.len().max(1) as u32)
    }

    fn enabled(&self, p: ProcessId, view: &[u32], g: &ConflictGraph) -> bool {
        view[p.index()] != self.target(p, view, g)
    }

    fn target(&self, p: ProcessId, view: &[u32], g: &ConflictGraph) -> u32 {
        g.neighbors(p)
            .iter()
            .map(|&q| view[q.index()])
            .chain([p.0])
            .max()
            .expect("own id always present")
    }

    fn legitimate(
        &self,
        states: &[u32],
        g: &ConflictGraph,
        alive: &dyn Fn(ProcessId) -> bool,
    ) -> bool {
        if g.processes().any(|p| !alive(p)) {
            return false; // crash-free protocol
        }
        let max_id = g.len().saturating_sub(1) as u32;
        states.iter().all(|&s| s == max_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn max_id_wins_locally() {
        let g = topology::path(3);
        let proto = LeaderProtocol;
        let view = vec![0, 0, 0];
        // p2 has the largest id and asserts itself.
        assert!(proto.enabled(p(2), &view, &g));
        assert_eq!(proto.target(p(2), &view, &g), 2);
        // p0 adopts a larger neighbor claim.
        let view = vec![0, 2, 2];
        assert_eq!(proto.target(p(0), &view, &g), 2);
    }

    #[test]
    fn ghost_claims_are_dominated() {
        // An arbitrary initial claim (here 1 everywhere) is legal but the
        // real maximum id eventually dominates.
        let g = topology::ring(5);
        let proto = LeaderProtocol;
        let mut states = vec![1, 1, 1, 1, 1];
        let alive = |_: ProcessId| true;
        let mut steps = 0;
        while !proto.legitimate(&states, &g, &alive) {
            let next = g
                .processes()
                .find(|&q| proto.enabled(q, &states, &g))
                .expect("illegitimate ⇒ someone enabled");
            states[next.index()] = proto.target(next, &states, &g);
            steps += 1;
            assert!(steps < 10_000);
        }
        assert_eq!(states, vec![4; 5]);
    }

    #[test]
    fn converges_from_random_configs() {
        for seed in 0..5 {
            let g = topology::grid(3, 4);
            let proto = LeaderProtocol;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut states = proto.random_config(&g, &mut rng);
            let alive = |_: ProcessId| true;
            let mut steps = 0;
            while !proto.legitimate(&states, &g, &alive) {
                let next = g
                    .processes()
                    .find(|&q| proto.enabled(q, &states, &g))
                    .unwrap();
                states[next.index()] = proto.target(next, &states, &g);
                steps += 1;
                assert!(steps < 10_000);
            }
            assert!(states.iter().all(|&s| s == 11));
        }
    }
}
