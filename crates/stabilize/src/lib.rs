//! Self-stabilizing protocols scheduled by a dining-based distributed
//! daemon.
//!
//! This crate closes the loop on the paper's motivation (§1): a
//! self-stabilizing protocol converges from *any* configuration provided
//! every correct process executes infinitely many steps under local mutual
//! exclusion. A crash-oblivious daemon starves diners once neighbors crash,
//! so convergence fails; the paper's wait-free daemon keeps scheduling
//! every correct process, so convergence survives crashes — and each ◇WX
//! scheduling mistake is at worst one more transient fault, which
//! stabilization absorbs.
//!
//! Pieces:
//!
//! * [`Protocol`] — a guarded-command protocol in the classic shared-state
//!   model: `enabled(p, view)` and `target(p, view)` over neighbor states,
//!   plus a legitimacy predicate.
//! * Protocols: [`ColoringProtocol`] (δ+1 graph coloring),
//!   [`MisProtocol`] (maximal independent set), [`TokenRingProtocol`]
//!   (Dijkstra's K-state mutual exclusion), [`SpanningTreeProtocol`]
//!   (BFS distances), and [`LeaderProtocol`] (max-id election) — the last
//!   three are crash-free protocols (e.g. a crashed ring cannot circulate
//!   a token; that limits the *protocol*, not the daemon).
//! * [`ScheduledRun`] — drives a protocol through eat-slots granted by any
//!   [`DiningAlgorithm`](ekbd_dining::DiningAlgorithm): a process becomes
//!   hungry when enabled; its step *reads* its neighborhood when eating
//!   starts and *writes* when eating ends, so overlapping eat sessions
//!   (daemon mistakes) cause genuinely stale reads — the sharing-violation
//!   semantics of §1.
//! * Transient-fault injection corrupting process states mid-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coloring;
mod leader;
mod mis;
mod protocol;
mod runner;
mod spanning_tree;
mod token_ring;

pub use coloring::ColoringProtocol;
pub use leader::LeaderProtocol;
pub use mis::MisProtocol;
pub use protocol::Protocol;
pub use runner::{ScheduledRun, StabilizationConfig, StabilizationReport};
pub use spanning_tree::SpanningTreeProtocol;
pub use token_ring::TokenRingProtocol;
