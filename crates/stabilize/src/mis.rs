use crate::protocol::Protocol;
use ekbd_graph::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::Rng;

/// Self-stabilizing maximal independent set.
///
/// State: `true` = in the set. Rules (the classic two-rule MIS protocol):
///
/// * **leave** — in the set with a neighbor also in the set;
/// * **join** — out of the set with no neighbor in the set.
///
/// Under local mutual exclusion, steps of conflicting neighbors serialize
/// and the usual potential-function argument gives convergence; overlapping
/// steps can let two neighbors join together (a fresh transient fault).
#[derive(Clone, Copy, Debug, Default)]
pub struct MisProtocol;

impl Protocol for MisProtocol {
    type State = bool;

    fn name(&self) -> &'static str {
        "mis"
    }

    fn random_config(&self, g: &ConflictGraph, rng: &mut StdRng) -> Vec<bool> {
        (0..g.len()).map(|_| rng.gen_bool(0.5)).collect()
    }

    fn corrupt(
        &self,
        _p: ProcessId,
        _states: &[bool],
        _g: &ConflictGraph,
        rng: &mut StdRng,
    ) -> bool {
        rng.gen_bool(0.5)
    }

    fn enabled(&self, p: ProcessId, view: &[bool], g: &ConflictGraph) -> bool {
        let me = view[p.index()];
        let any_in = g.neighbors(p).iter().any(|&q| view[q.index()]);
        (me && any_in) || (!me && !any_in)
    }

    fn target(&self, p: ProcessId, view: &[bool], _g: &ConflictGraph) -> bool {
        !view[p.index()]
    }

    fn legitimate(
        &self,
        states: &[bool],
        g: &ConflictGraph,
        alive: &dyn Fn(ProcessId) -> bool,
    ) -> bool {
        // Live processes must be locally stable: dead neighbors' frozen
        // membership counts (a live process adjacent to a dead in-node must
        // stay out; a live out-node with no in-neighbor must join).
        g.processes()
            .filter(|&p| alive(p))
            .all(|p| !self.enabled(p, states, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn rules_enable_correctly() {
        let g = topology::path(3);
        let proto = MisProtocol;
        // [in, in, out]: p0,p1 must leave; p2 has in-neighbor p1, stable.
        let view = vec![true, true, false];
        assert!(proto.enabled(p(0), &view, &g));
        assert!(proto.enabled(p(1), &view, &g));
        assert!(!proto.enabled(p(2), &view, &g));
        // [out, out, out]: everyone can join.
        let view = vec![false, false, false];
        assert!(proto.enabled(p(0), &view, &g));
    }

    #[test]
    fn sequential_daemon_converges_to_mis() {
        let g = topology::grid(4, 4);
        let proto = MisProtocol;
        let mut rng = StdRng::seed_from_u64(8);
        let mut states = proto.random_config(&g, &mut rng);
        let alive = |_: ProcessId| true;
        let mut steps = 0;
        while !proto.legitimate(&states, &g, &alive) {
            let next = g
                .processes()
                .find(|&q| proto.enabled(q, &states, &g))
                .expect("illegitimate ⇒ someone enabled");
            states[next.index()] = proto.target(next, &states, &g);
            steps += 1;
            assert!(steps < 10_000, "MIS failed to converge");
        }
        // Verify it really is a maximal independent set.
        for e in g.edges() {
            assert!(
                !(states[e.lo.index()] && states[e.hi.index()]),
                "independence"
            );
        }
        for q in g.processes() {
            let any_in = g.neighbors(q).iter().any(|&r| states[r.index()]);
            assert!(states[q.index()] || any_in, "maximality at {q}");
        }
    }

    #[test]
    fn dead_in_node_keeps_live_neighbors_out() {
        let g = topology::path(2);
        let proto = MisProtocol;
        // p0 dead and in; p1 out: p1 is stable (has an in-neighbor).
        let states = vec![true, false];
        assert!(proto.legitimate(&states, &g, &|q| q == p(1)));
        // p0 dead and out; p1 out: p1 must join — illegitimate.
        let states = vec![false, false];
        assert!(!proto.legitimate(&states, &g, &|q| q == p(1)));
    }
}
