use crate::protocol::Protocol;
use ekbd_graph::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::Rng;

/// Self-stabilizing (δ+1)-coloring.
///
/// State: a color in `0..=δ`. A process is enabled when it shares its
/// color with a *live-relevant* neighbor of smaller id or any neighbor
/// (symmetric rule): here, enabled iff some neighbor has the same color;
/// the action recolors to the smallest color absent from the neighborhood.
///
/// Under local mutual exclusion two conflicting neighbors never recolor
/// from the same view, so every executed step strictly reduces the
/// conflict count restricted to the stepping process — the classic
/// convergence argument. Without exclusion (or during ◇WX mistakes) two
/// neighbors can pick the same color simultaneously; the conflict persists
/// as a fresh transient fault.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColoringProtocol {
    /// When set, transient faults are worst-case: the corrupted process
    /// clones the color of one of its neighbors (guaranteed conflict)
    /// instead of drawing a random color.
    pub adversarial_faults: bool,
}

impl ColoringProtocol {
    /// Coloring with worst-case (conflict-creating) transient faults.
    pub fn adversarial() -> Self {
        ColoringProtocol {
            adversarial_faults: true,
        }
    }
}

impl Protocol for ColoringProtocol {
    type State = u32;

    fn name(&self) -> &'static str {
        "coloring"
    }

    fn random_config(&self, g: &ConflictGraph, rng: &mut StdRng) -> Vec<u32> {
        let palette = g.max_degree() as u32 + 1;
        (0..g.len()).map(|_| rng.gen_range(0..palette)).collect()
    }

    fn corrupt(&self, p: ProcessId, states: &[u32], g: &ConflictGraph, rng: &mut StdRng) -> u32 {
        let neighbors = g.neighbors(p);
        if self.adversarial_faults && !neighbors.is_empty() {
            // Clone a random neighbor's color: a guaranteed fresh conflict.
            let q = neighbors[rng.gen_range(0..neighbors.len())];
            states[q.index()]
        } else {
            rng.gen_range(0..g.max_degree() as u32 + 1)
        }
    }

    fn enabled(&self, p: ProcessId, view: &[u32], g: &ConflictGraph) -> bool {
        g.neighbors(p)
            .iter()
            .any(|&q| view[q.index()] == view[p.index()])
    }

    fn target(&self, p: ProcessId, view: &[u32], g: &ConflictGraph) -> u32 {
        let used: Vec<u32> = g.neighbors(p).iter().map(|&q| view[q.index()]).collect();
        (0..)
            .find(|c| !used.contains(c))
            .expect("palette large enough")
    }

    fn legitimate(
        &self,
        states: &[u32],
        g: &ConflictGraph,
        alive: &dyn Fn(ProcessId) -> bool,
    ) -> bool {
        // Every edge with at least one live endpoint must be bichromatic: a
        // live process can always escape a conflict (δ+1 colors), even one
        // with a frozen crashed neighbor.
        g.edges()
            .iter()
            .all(|e| (!alive(e.lo) && !alive(e.hi)) || states[e.lo.index()] != states[e.hi.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn enabled_iff_conflicting() {
        let g = topology::path(3);
        let proto = ColoringProtocol::default();
        let view = vec![0, 0, 1];
        assert!(proto.enabled(p(0), &view, &g));
        assert!(proto.enabled(p(1), &view, &g));
        assert!(!proto.enabled(p(2), &view, &g));
    }

    #[test]
    fn target_picks_smallest_free_color() {
        let g = topology::star(4);
        let proto = ColoringProtocol::default();
        let view = vec![0, 0, 1, 2];
        assert_eq!(proto.target(p(0), &view, &g), 3);
        let view = vec![0, 1, 1, 2];
        assert_eq!(proto.target(p(0), &view, &g), 0);
    }

    #[test]
    fn sequential_central_daemon_converges() {
        // Pure protocol check (no daemon): repeatedly step any enabled
        // process; must reach legitimacy.
        let g = topology::grid(3, 3);
        let proto = ColoringProtocol::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut states = proto.random_config(&g, &mut rng);
        let alive = |_: ProcessId| true;
        let mut steps = 0;
        while !proto.legitimate(&states, &g, &alive) {
            let next = g
                .processes()
                .find(|&q| proto.enabled(q, &states, &g))
                .expect("illegitimate ⇒ someone enabled");
            states[next.index()] = proto.target(next, &states, &g);
            steps += 1;
            assert!(steps < 10_000, "coloring failed to converge");
        }
        ekbd_graph::coloring::validate(&g, &states).unwrap();
    }

    #[test]
    fn legitimacy_ignores_dead_dead_edges() {
        // Path 0-1-2 with states [0, 0, 1]: the 0-1 edge conflicts.
        let g = topology::path(3);
        let proto = ColoringProtocol::default();
        let states = vec![0, 0, 1];
        // Everyone alive: illegitimate.
        assert!(!proto.legitimate(&states, &g, &|_| true));
        // p0 alive, p1 dead: a live process still touches the conflicting
        // edge, so it remains illegitimate (p0 can recolor away).
        assert!(!proto.legitimate(&states, &g, &|q| q != p(1)));
        // Only p2 alive: the 0-0 conflict is between two dead processes and
        // is ignored; the 1-2 edge is bichromatic — legitimate.
        assert!(proto.legitimate(&states, &g, &|q| q == p(2)));
    }
}
