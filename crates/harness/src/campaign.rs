//! Parallel multi-run campaigns: fan a seed × topology × fault-plan matrix
//! across worker threads and merge the per-run reports deterministically.
//!
//! Each job is an independent [`Scenario`] run — its own simulator, its own
//! RNG streams — so runs parallelize embarrassingly. Workers pull jobs from
//! a shared atomic cursor; results are deposited into per-job slots and
//! merged **in job order**, never completion order, so the merged report of
//! a parallel campaign is byte-identical to the serial one (enforced by the
//! golden-trace test suite).

use crate::report::RunReport;
use crate::scenario::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which dining algorithm a campaign job runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CampaignAlgorithm {
    /// Algorithm 1 normally; the crash-recovery-hardened variant
    /// automatically when the scenario schedules recoveries or state
    /// corruption (the same rule the CLI applies).
    #[default]
    Auto,
    /// The paper's Algorithm 1.
    Algorithm1,
    /// [`RecoverableDining`](ekbd_dining::RecoverableDining).
    Recoverable,
}

impl CampaignAlgorithm {
    fn recoverable_for(self, scenario: &Scenario) -> bool {
        match self {
            CampaignAlgorithm::Algorithm1 => false,
            CampaignAlgorithm::Recoverable => true,
            CampaignAlgorithm::Auto => {
                !scenario.faults.recoveries.is_empty()
                    || !scenario.faults.corruptions.is_empty()
                    || !scenario.membership.is_inert()
            }
        }
    }
}

/// One unit of campaign work: a labelled scenario plus algorithm choice.
#[derive(Clone, Debug)]
pub struct CampaignJob {
    /// Display label (topology/fault-plan identity; the seed is tracked
    /// separately).
    pub label: String,
    /// The scenario to run.
    pub scenario: Scenario,
    /// The algorithm to run it with.
    pub algorithm: CampaignAlgorithm,
}

/// One finished campaign run.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    /// The job's label.
    pub label: String,
    /// The seed the run used.
    pub seed: u64,
    /// The full per-run report.
    pub report: RunReport,
    /// Wall-clock time of this run (excluded from [`CampaignReport::merged`]).
    pub wall: Duration,
}

/// All results of a campaign, in job order.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-job results, in the order the jobs were added (not completion
    /// order).
    pub runs: Vec<CampaignRun>,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl CampaignReport {
    /// Deterministic merged digest: one line per run, in job order, from
    /// seed-pure quantities only (no wall-clock times). A parallel campaign
    /// over the same jobs produces the byte-identical string as a serial
    /// one.
    pub fn merged(&self) -> String {
        let mut out = String::new();
        let mut sessions = 0usize;
        let mut events = 0u64;
        let mut msgs = 0u64;
        let mut all_wait_free = true;
        for r in &self.runs {
            let progress = r.report.progress();
            let wait_free = progress.wait_free();
            all_wait_free &= wait_free;
            sessions += r.report.total_eat_sessions();
            events += r.report.events_processed;
            msgs += r.report.total_messages;
            out.push_str(&format!(
                "{} seed={} sessions={} events={} msgs={} dropped={} dup={} \
                 wait_free={} mistakes={} max_overtakes={} high_water={}",
                r.label,
                r.seed,
                r.report.total_eat_sessions(),
                r.report.events_processed,
                r.report.total_messages,
                r.report.messages_dropped,
                r.report.messages_duplicated,
                wait_free,
                r.report.exclusion().total(),
                r.report.fairness().max_overtakes(),
                r.report.max_channel_high_water,
            ));
            // Membership columns appear only for churned runs, so the
            // digests of fixed-population campaigns are byte-stable across
            // this feature.
            if !r.report.joins.is_empty() || !r.report.departures.is_empty() {
                let admitted = r
                    .report
                    .admissions()
                    .iter()
                    .filter(|a| a.first_eat.is_some())
                    .count();
                out.push_str(&format!(
                    " joins={} leaves={} admitted={}",
                    r.report.joins.len(),
                    r.report.departures.len(),
                    admitted,
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "TOTAL runs={} sessions={} events={} msgs={} wait_free={}\n",
            self.runs.len(),
            sessions,
            events,
            msgs,
            all_wait_free,
        ));
        out
    }

    /// Sum of simulator events processed across all runs.
    pub fn total_events(&self) -> u64 {
        self.runs.iter().map(|r| r.report.events_processed).sum()
    }

    /// Sum of completed eat sessions across all runs.
    pub fn total_sessions(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.report.total_eat_sessions())
            .sum()
    }
}

/// A batch of scenario runs executed across `std::thread::scope` workers.
///
/// ```
/// use ekbd_harness::{Campaign, Scenario, Workload};
/// use ekbd_graph::topology;
/// use ekbd_sim::Time;
///
/// let base = Scenario::new(topology::ring(4))
///     .workload(Workload { sessions: 2, think: (1, 10), eat: (1, 5) })
///     .horizon(Time(5_000));
/// let report = Campaign::new().seeds("ring-4", &base, 0..4).run();
/// assert_eq!(report.runs.len(), 4);
/// assert!(report.merged().contains("TOTAL runs=4"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Campaign {
    jobs: Vec<CampaignJob>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Adds one job with the default (auto) algorithm choice.
    pub fn job(self, label: impl Into<String>, scenario: Scenario) -> Self {
        self.job_with(label, scenario, CampaignAlgorithm::Auto)
    }

    /// Adds one job with an explicit algorithm choice.
    pub fn job_with(
        mut self,
        label: impl Into<String>,
        scenario: Scenario,
        algorithm: CampaignAlgorithm,
    ) -> Self {
        self.jobs.push(CampaignJob {
            label: label.into(),
            scenario,
            algorithm,
        });
        self
    }

    /// Fans `base` across `seeds`: one job per seed, sharing `label`.
    /// Combine with repeated calls (different topologies or fault plans) to
    /// build a full seed × topology × fault-plan matrix.
    pub fn seeds(
        mut self,
        label: impl Into<String>,
        base: &Scenario,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Self {
        let label = label.into();
        for seed in seeds {
            self.jobs.push(CampaignJob {
                label: label.clone(),
                scenario: base.clone().seed(seed),
                algorithm: CampaignAlgorithm::Auto,
            });
        }
        self
    }

    /// Fans `base` across `seeds` with a *per-seed* churn plan: each job
    /// reseeds the scenario and re-derives its membership schedule from
    /// that seed (see [`Scenario::churn`]), so a churn-rate sweep explores
    /// a different join/leave interleaving per seed.
    pub fn churn_seeds(
        mut self,
        label: impl Into<String>,
        base: &Scenario,
        period: u64,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Self {
        let label = label.into();
        for seed in seeds {
            self.jobs.push(CampaignJob {
                label: label.clone(),
                scenario: base.clone().seed(seed).churn(period),
                algorithm: CampaignAlgorithm::Auto,
            });
        }
        self
    }

    /// Number of jobs queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job on one worker per available CPU (at most one per job).
    pub fn run(&self) -> CampaignReport {
        self.run_with_workers(default_workers())
    }

    /// Runs every job on the calling thread, in job order.
    pub fn run_serial(&self) -> CampaignReport {
        self.run_with_workers(1)
    }

    /// Runs every job across exactly `workers` threads (clamped to
    /// `[1, jobs]`). Results land in job order regardless of which worker
    /// finished first, so the merged report is worker-count-independent.
    pub fn run_with_workers(&self, workers: usize) -> CampaignReport {
        let started = Instant::now();
        let workers = workers.clamp(1, self.jobs.len().max(1));
        let slots: Vec<Mutex<Option<CampaignRun>>> =
            self.jobs.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = self.jobs.get(i) else {
                        break;
                    };
                    let t0 = Instant::now();
                    let report = run_job(job);
                    *slots[i].lock().expect("campaign slot poisoned") = Some(CampaignRun {
                        label: job.label.clone(),
                        seed: job.scenario.seed,
                        report,
                        wall: t0.elapsed(),
                    });
                });
            }
        });
        let runs = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("campaign slot poisoned")
                    .expect("worker pool drained every job")
            })
            .collect();
        CampaignReport {
            runs,
            wall: started.elapsed(),
            workers,
        }
    }
}

fn run_job(job: &CampaignJob) -> RunReport {
    if job.algorithm.recoverable_for(&job.scenario) {
        job.scenario.run_recoverable()
    } else {
        job.scenario.run_algorithm1()
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;
    use ekbd_graph::{topology, ProcessId};
    use ekbd_sim::Time;

    fn base(n: usize) -> Scenario {
        Scenario::new(topology::ring(n))
            .workload(Workload {
                sessions: 2,
                think: (1, 10),
                eat: (1, 5),
            })
            .horizon(Time(5_000))
    }

    #[test]
    fn parallel_merged_report_matches_serial_byte_for_byte() {
        let campaign =
            Campaign::new()
                .seeds("ring-4", &base(4), 0..4)
                .seeds("ring-5", &base(5), 10..12);
        let serial = campaign.run_serial();
        let parallel = campaign.run_with_workers(4);
        assert_eq!(serial.runs.len(), 6);
        assert_eq!(serial.merged(), parallel.merged());
        assert_eq!(serial.workers, 1);
    }

    #[test]
    fn runs_stay_in_job_order() {
        let report = Campaign::new().seeds("r", &base(4), [7, 3, 5]).run();
        let seeds: Vec<u64> = report.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![7, 3, 5], "job order, not completion order");
    }

    #[test]
    fn auto_algorithm_picks_recoverable_for_recovery_plans() {
        let scenario = base(4)
            .perfect_oracle()
            .crash(ProcessId(1), Time(100))
            .recover(ProcessId(1), Time(800));
        assert!(CampaignAlgorithm::Auto.recoverable_for(&scenario));
        assert!(!CampaignAlgorithm::Algorithm1.recoverable_for(&scenario));
        let report = Campaign::new().job("rec", scenario).run_serial();
        assert_eq!(report.runs[0].report.incarnations[1], 1);
    }

    #[test]
    fn churned_campaigns_pick_recoverable_and_tag_the_digest() {
        let scenario = base(8).churn(500);
        assert!(CampaignAlgorithm::Auto.recoverable_for(&scenario));
        let report = Campaign::new()
            .churn_seeds("churn", &base(8), 500, 0..2)
            .run_serial();
        assert_eq!(report.runs.len(), 2);
        let digest = report.merged();
        assert!(digest.contains("joins="), "churned digest: {digest}");
        // Different seeds re-derive different plans.
        assert_ne!(
            report.runs[0].report.joins, report.runs[1].report.joins,
            "per-seed churn plans should differ"
        );
        // Fixed-population digests keep the legacy column set.
        let plain = Campaign::new().seeds("plain", &base(4), 0..1).run_serial();
        assert!(!plain.merged().contains("joins="));
    }

    #[test]
    fn merged_digest_is_deterministic_across_repeat_runs() {
        let campaign = Campaign::new().seeds("ring-4", &base(4), 0..3);
        assert_eq!(campaign.run().merged(), campaign.run_serial().merged());
    }
}
