use ekbd_detector::{
    DetectorEvent, DetectorModule, DetectorOutput, HeartbeatDetector, ProbeDetector,
    ScriptedOracle, SuspicionView,
};
use ekbd_graph::ProcessId;
use std::collections::BTreeSet;

/// A closed sum of the workspace's detector implementations, so hosts and
/// simulators stay non-generic in the detector dimension.
#[derive(Clone, Debug)]
pub enum AnyDetector {
    /// A deterministic scripted oracle (silent, perfect, or adversarial).
    Scripted(ScriptedOracle),
    /// The heartbeat + adaptive timeout implementation.
    Heartbeat(HeartbeatDetector),
    /// The pull-based probe/echo implementation.
    Probe(ProbeDetector),
}

impl SuspicionView for AnyDetector {
    fn suspects(&self, q: ProcessId) -> bool {
        match self {
            AnyDetector::Scripted(d) => d.suspects(q),
            AnyDetector::Heartbeat(d) => d.suspects(q),
            AnyDetector::Probe(d) => d.suspects(q),
        }
    }
}

impl DetectorModule for AnyDetector {
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput) {
        match self {
            AnyDetector::Scripted(d) => d.handle(ev, out),
            AnyDetector::Heartbeat(d) => d.handle(ev, out),
            AnyDetector::Probe(d) => d.handle(ev, out),
        }
    }

    fn suspect_set(&self) -> BTreeSet<ProcessId> {
        match self {
            AnyDetector::Scripted(d) => d.suspect_set(),
            AnyDetector::Heartbeat(d) => d.suspect_set(),
            AnyDetector::Probe(d) => d.suspect_set(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_sim::Time;

    #[test]
    fn delegation_round_trip() {
        let mut d = AnyDetector::Scripted(ScriptedOracle::perfect([(ProcessId(1), Time(5))]));
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        assert!(!d.suspects(ProcessId(1)));
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(5),
                tag: 0,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(d.suspects(ProcessId(1)));
        assert_eq!(d.suspect_set().len(), 1);
    }
}
