//! Streaming scenario metrics: the scale tier's O(processes)-memory
//! counterpart to [`RunReport`](crate::RunReport).
//!
//! The dense pipeline stores every observation and analyzes afterwards —
//! perfect for the paper-scale experiments, hopeless at 10⁵ processes where
//! the event stream dwarfs memory. This module consumes the same
//! [`HostObs`] stream *online* through the simulator's
//! [`StreamSink`](ekbd_sim::StreamSink) hook and keeps only aggregates:
//!
//! * hungry→eat latencies in a [`LatencyHistogram`] (exact nearest-rank
//!   quantiles below the fine-bin cap, log₂ bins above);
//! * scheduling mistakes counted pairwise online: when `p` starts eating,
//!   every neighbor currently eating (and still live) is one overlapping
//!   interval pair — the count matches
//!   [`ExclusionReport::total`](ekbd_metrics::ExclusionReport::total)
//!   exactly, because two eating intervals overlap iff the later one opens
//!   while the earlier is still open;
//! * detector convergence from the *last* suspicion verdict per
//!   (observer, target) pair — all
//!   [`detector_convergence`](crate::RunReport::detector_convergence)
//!   needs;
//! * per-process completed-session counts, starvation witnesses, and a
//!   seeded reservoir of session excerpts for spot-checking.
//!
//! Intra-tick ordering is the one subtlety: interval analyses treat
//! touching intervals (`q` stops at the instant `p` starts) as disjoint,
//! so the aggregator buffers each tick's transitions and applies stops
//! before starts. Everything else is order-insensitive within a tick.
//!
//! Streaming runs are restricted to the crash-stop fault model (no
//! recoveries, corruptions, or membership changes): those make the dense
//! pipeline rewrite history ([`sanitize_interrupted`] trims a crashed
//! life's open intervals), which an online aggregator cannot do. Under
//! crash-stop the sanitizer is a no-op and the two pipelines agree.
//!
//! [`sanitize_interrupted`]: crate::RunReport::events

use crate::host::{DinerHost, HostCmd, HostObs, HostWorkload};
use crate::scenario::Scenario;
use ekbd_dining::{DiningObs, DiningProcess};
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_sim::{EatExcerpt, LatencyHistogram, Reservoir, SimConfig, Simulator, StreamSink, Time};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Excerpts kept per run (deterministic reservoir sample).
const EXCERPT_CAP: usize = 16;

/// Aggregated results of a streaming run — the headline numbers of a
/// [`RunReport`](crate::RunReport) without the raw material.
#[derive(Clone, Debug)]
pub struct StreamingRunReport {
    /// Process count.
    pub n: usize,
    /// The run horizon.
    pub horizon: Time,
    /// Scheduling mistakes: overlapping live-neighbor eating-interval
    /// pairs, as [`ExclusionReport::total`](ekbd_metrics::ExclusionReport::total)
    /// counts them.
    pub mistakes: u64,
    /// Hungry→eat latency distribution over completed sessions.
    pub latency: LatencyHistogram,
    /// Completed hungry sessions per process.
    pub eats: Vec<u32>,
    /// Correct processes with an unfinished hungry session at the horizon.
    pub starving: Vec<ProcessId>,
    /// Measured ◇P₁ convergence time (see
    /// [`detector_convergence`](crate::RunReport::detector_convergence)).
    pub convergence: Time,
    /// Dining-layer messages sent (all processes).
    pub dining_sends: u64,
    /// Deterministically sampled session excerpts.
    pub excerpts: Vec<EatExcerpt>,
}

impl StreamingRunReport {
    /// Whether every correct hungry process was scheduled (Theorem 2).
    pub fn wait_free(&self) -> bool {
        self.starving.is_empty()
    }

    /// Total completed eat-slots across all processes.
    pub fn total_sessions(&self) -> u64 {
        self.eats.iter().map(|&e| e as u64).sum()
    }
}

/// The live aggregator behind a streaming run. Owns O(n + edges) state:
/// per-process open-interval markers plus one last-verdict entry per
/// reporting (observer, target) pair.
struct StreamingReport {
    graph: ConflictGraph,
    horizon: Time,
    /// Per-process permanent-crash instant (crash-stop: any scheduled
    /// crash within the horizon), mirroring
    /// [`crash_time`](crate::RunReport::crash_time).
    cut: Vec<Option<Time>>,
    crashes: Vec<(ProcessId, Time)>,
    // Current tick and its buffered eating transitions.
    cur: Time,
    tick_stops: Vec<ProcessId>,
    tick_hungry: Vec<ProcessId>,
    tick_starts: Vec<ProcessId>,
    // Open intervals.
    hungry_since: Vec<Option<Time>>,
    eating_since: Vec<Option<Time>>,
    // Aggregates.
    eats: Vec<u32>,
    mistakes: u64,
    latency: LatencyHistogram,
    excerpts: Reservoir<EatExcerpt>,
    last_verdict: BTreeMap<(ProcessId, ProcessId), (Time, bool)>,
    dining_sends: u64,
}

impl StreamingReport {
    fn new(scenario: &Scenario) -> Self {
        let n = scenario.graph.len();
        let cut = (0..n)
            .map(|i| {
                scenario
                    .crashes
                    .iter()
                    .filter(|&&(q, t)| q.index() == i && t <= scenario.horizon)
                    .map(|&(_, t)| t)
                    .max()
            })
            .collect();
        StreamingReport {
            graph: scenario.graph.clone(),
            horizon: scenario.horizon,
            cut,
            crashes: scenario.crashes.clone(),
            cur: Time::ZERO,
            tick_stops: Vec::new(),
            tick_hungry: Vec::new(),
            tick_starts: Vec::new(),
            hungry_since: vec![None; n],
            eating_since: vec![None; n],
            eats: vec![0; n],
            mistakes: 0,
            latency: LatencyHistogram::new(),
            excerpts: Reservoir::new(scenario.seed ^ 0x0b5e_ec5e, EXCERPT_CAP),
            last_verdict: BTreeMap::new(),
            dining_sends: 0,
        }
    }

    fn is_correct(&self, p: ProcessId) -> bool {
        self.cut[p.index()].is_none()
    }

    /// Applies the buffered tick: stops close intervals before hungers
    /// open sessions and starts open intervals, reproducing the half-open
    /// interval arithmetic of the dense analyses.
    fn flush(&mut self) {
        let t = self.cur;
        for p in std::mem::take(&mut self.tick_stops) {
            self.eating_since[p.index()] = None;
        }
        for p in std::mem::take(&mut self.tick_hungry) {
            debug_assert!(self.hungry_since[p.index()].is_none(), "nested hungry");
            self.hungry_since[p.index()] = Some(t);
        }
        for p in std::mem::take(&mut self.tick_starts) {
            let i = p.index();
            if let Some(h) = self.hungry_since[i].take() {
                let lat = t.since(h);
                self.latency.record(lat);
                self.eats[i] += 1;
                let key = t.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
                self.excerpts.offer(
                    key,
                    EatExcerpt {
                        tick: t.0,
                        process: i as u32,
                        latency: lat,
                    },
                );
            }
            // p's eating interval [t, end) is non-empty iff t < horizon (a
            // live process cannot observe past its own cut). Each neighbor
            // still eating — and not already cut down — contributes one
            // overlapping interval pair; the pair where the neighbor starts
            // later is counted at *that* start, so each pair counts once.
            if t < self.horizon {
                for &q in self.graph.neighbors(p) {
                    if self.eating_since[q.index()].is_some()
                        && self.cut[q.index()].is_none_or(|c| t < c)
                    {
                        self.mistakes += 1;
                    }
                }
            }
            self.eating_since[i] = Some(t);
        }
    }

    fn record(&mut self, time: Time, process: ProcessId, obs: HostObs) {
        if time > self.cur {
            self.flush();
            self.cur = time;
        }
        match obs {
            HostObs::Sched(DiningObs::BecameHungry) => self.tick_hungry.push(process),
            HostObs::Sched(DiningObs::StartedEating) => self.tick_starts.push(process),
            HostObs::Sched(DiningObs::StoppedEating) => self.tick_stops.push(process),
            HostObs::Sched(_) => {}
            HostObs::Suspect { target } => {
                self.last_verdict.insert((process, target), (time, true));
            }
            HostObs::Unsuspect { target } => {
                self.last_verdict.insert((process, target), (time, false));
            }
            HostObs::DiningSend { .. } => self.dining_sends += 1,
        }
    }

    /// Mirrors [`detector_convergence`](crate::RunReport::detector_convergence)
    /// from the per-pair last verdicts.
    fn convergence(&self) -> Time {
        let mut conv = Time::ZERO;
        for (&(observer, target), &(t, suspected)) in &self.last_verdict {
            if !self.is_correct(observer) {
                continue;
            }
            if self.is_correct(target) {
                conv = conv.max(if suspected { self.horizon } else { t });
            } else {
                conv = conv.max(if suspected { t } else { self.horizon });
            }
        }
        for &(q, t) in &self.crashes {
            if t > self.horizon || self.is_correct(q) {
                continue;
            }
            for &i in self.graph.neighbors(q) {
                if self.is_correct(i) && !self.last_verdict.contains_key(&(i, q)) {
                    conv = self.horizon;
                }
            }
        }
        conv
    }

    fn finish(mut self) -> StreamingRunReport {
        self.flush();
        let starving = (0..self.graph.len())
            .map(ProcessId::from)
            .filter(|&p| self.hungry_since[p.index()].is_some() && self.is_correct(p))
            .collect();
        let convergence = self.convergence();
        StreamingRunReport {
            n: self.graph.len(),
            horizon: self.horizon,
            mistakes: self.mistakes,
            latency: self.latency,
            eats: self.eats,
            starving,
            convergence,
            dining_sends: self.dining_sends,
            excerpts: self.excerpts.items().cloned().collect(),
        }
    }
}

/// [`StreamSink`] adapter sharing the aggregator with the caller, so the
/// results survive the simulator that owned the boxed sink.
struct SharedSink(Rc<RefCell<StreamingReport>>);

impl StreamSink<HostObs> for SharedSink {
    fn record(&mut self, time: Time, process: ProcessId, obs: HostObs) {
        self.0.borrow_mut().record(time, process, obs);
    }
}

impl Scenario {
    /// Runs the scenario with Algorithm 1 under streaming observation: no
    /// dense event log is kept, memory stays O(processes + edges), and the
    /// result carries the aggregate metrics only. On any crash-stop
    /// scenario this produces *exactly* the dense pipeline's latency
    /// quantiles, mistake count, and convergence time (gated by
    /// `tests/streaming_obs.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the scenario schedules recoveries, corruptions, or
    /// membership changes — those need the dense pipeline's post-hoc event
    /// sanitization.
    pub fn run_algorithm1_streaming(&self) -> StreamingRunReport {
        assert!(
            self.recoveries().is_empty() && self.corruptions().is_empty(),
            "streaming runs are crash-stop only (recovery rewrites history)"
        );
        assert!(
            self.membership.is_inert(),
            "streaming runs require a fixed population"
        );
        let cfg = SimConfig::default()
            .n(self.graph.len())
            .seed(self.seed)
            .delay(self.delay.clone())
            .faults(self.faults.clone())
            .engine(self.engine);
        let workload = HostWorkload {
            sessions: self.workload.sessions,
            think: self.workload.think,
            eat: self.workload.eat,
        };
        let mut sim = Simulator::new(cfg, |p, _| {
            let alg = DiningProcess::from_graph(&self.graph, &self.colors, p);
            let host = DinerHost::new(alg, self.detector_for(p), workload)
                .with_audit_period(self.audit_period);
            match self.link {
                Some(link_cfg) => host.with_link(link_cfg),
                None => host,
            }
        });
        for &(p, t) in &self.crashes {
            sim.schedule_crash(p, t);
        }
        for &(p, t) in &self.manual_hunger {
            sim.schedule_external(p, t, HostCmd::BecomeHungry);
        }
        let shared = Rc::new(RefCell::new(StreamingReport::new(self)));
        sim.set_streaming(Box::new(SharedSink(Rc::clone(&shared))));
        sim.run_until(self.horizon);
        drop(sim);
        Rc::try_unwrap(shared)
            .ok()
            .expect("the simulator's sink handle was dropped with it")
            .into_inner()
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;
    use ekbd_graph::topology;

    #[test]
    fn streaming_counts_sessions_on_a_ring() {
        let r = Scenario::new(topology::ring(6))
            .seed(3)
            .horizon(Time(50_000))
            .run_algorithm1_streaming();
        assert!(r.wait_free());
        assert_eq!(r.mistakes, 0, "fault-free run must be mistake-free");
        assert_eq!(r.total_sessions(), 6 * 5);
        assert_eq!(r.latency.count(), 30);
        assert!(!r.excerpts.is_empty());
        assert!(r.dining_sends > 0);
    }

    #[test]
    fn streaming_matches_dense_latency_count() {
        let s = Scenario::new(topology::grid(3, 3))
            .seed(9)
            .workload(Workload {
                sessions: 4,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(50_000));
        let dense = s.run_algorithm1();
        let streaming = s.run_algorithm1_streaming();
        let p = dense.progress();
        assert_eq!(streaming.total_sessions(), p.total_sessions() as u64);
        let summary = p.latency_summary();
        assert_eq!(streaming.latency.quantile(0.5), summary.p50);
        assert_eq!(streaming.latency.max(), summary.max);
    }

    #[test]
    #[should_panic(expected = "crash-stop only")]
    fn recovery_scenarios_are_rejected() {
        let s = Scenario::new(topology::ring(4))
            .crash(ProcessId(0), Time(100))
            .recover(ProcessId(0), Time(500));
        let _ = s.run_algorithm1_streaming();
    }
}
