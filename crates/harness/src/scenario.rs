use crate::detector::AnyDetector;
use crate::host::{DinerHost, HostCmd, HostWorkload};
use crate::report::RunReport;
use ekbd_detector::{
    HeartbeatConfig, HeartbeatDetector, ProbeConfig, ProbeDetector, ScriptedOracle,
};
use ekbd_dining::{DiningAlgorithm, DiningProcess, RecoverableDining};
use ekbd_graph::coloring::{self, Color};
use ekbd_graph::{ConflictGraph, Membership, ProcessId};
use ekbd_journal::StorageFaultPlan;
use ekbd_link::LinkConfig;
use ekbd_sim::{
    DelayModel, EngineKind, FaultPlan, MembershipEvent, MembershipPlan, SimConfig, Simulator, Time,
};

/// Which failure detector each process runs.
#[derive(Clone, Debug)]
pub enum OracleSpec {
    /// Never suspects anyone. A legal ◇P₁ history only for crash-free runs.
    Silent,
    /// Suspects exactly the crashed, from their crash instants (detector
    /// `P`). The reference point of experiment E8.
    Perfect,
    /// Worst-case-but-legal ◇P₁: false suspicions of every neighbor in
    /// on/off bursts until `converge_at`, then exact.
    Adversarial {
        /// When the oracle converges.
        converge_at: Time,
        /// Length of each on/off suspicion burst.
        burst: u64,
    },
    /// A real heartbeat + adaptive timeout detector; convergence emerges
    /// from the delay model rather than being scripted.
    Heartbeat(HeartbeatConfig),
    /// A real pull-based probe/echo detector.
    Probe(ProbeConfig),
}

/// The workload every process runs (see
/// [`HostWorkload`](crate::HostWorkload); this is the same data at scenario
/// scope).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Hungry sessions per process.
    pub sessions: u32,
    /// Thinking-delay range.
    pub think: (u64, u64),
    /// Eating-duration range.
    pub eat: (u64, u64),
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            sessions: 5,
            think: (1, 50),
            eat: (1, 20),
        }
    }
}

/// A declarative dining experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The conflict graph.
    pub graph: ConflictGraph,
    /// A proper coloring (defaults to greedy).
    pub colors: Vec<Color>,
    /// RNG seed.
    pub seed: u64,
    /// Message-delay model.
    pub delay: DelayModel,
    /// The oracle specification.
    pub oracle: OracleSpec,
    /// The automatic workload.
    pub workload: Workload,
    /// Crash schedule.
    pub crashes: Vec<(ProcessId, Time)>,
    /// Manually injected hunger, in addition to the automatic workload.
    pub manual_hunger: Vec<(ProcessId, Time)>,
    /// How long to run.
    pub horizon: Time,
    /// Channel-fault schedule (default: none — reliable FIFO channels).
    pub faults: FaultPlan,
    /// Reliable link layer wrapping dining traffic (default: off). Required
    /// for the theorems to survive a non-inert fault plan.
    pub link: Option<LinkConfig>,
    /// Simulator kernel engine (observably identical either way; see
    /// [`EngineKind`]).
    pub engine: EngineKind,
    /// Whether to record the kernel trace into
    /// [`RunReport::kernel_trace`](crate::RunReport::kernel_trace)
    /// (default: off — tracing clones every payload's routing record).
    pub record_trace: bool,
    /// Whether [`run_recoverable`](Self::run_recoverable) attaches an
    /// in-memory stable-storage journal to every process (default: off —
    /// the PR-2 blank-restart behavior).
    pub journal: bool,
    /// Stable-storage fault schedule (default: inert). A non-inert plan
    /// implies journaling.
    pub storage_faults: StorageFaultPlan,
    /// Audit-and-repair period for recoverable algorithms (default:
    /// derived from the graph's max degree via
    /// [`crate::derived_audit_period`]).
    pub audit_period: u64,
    /// Audit strike threshold for recoverable algorithms (default:
    /// [`ekbd_dining::DEFAULT_STRIKES`]).
    pub audit_strikes: u8,
    /// Dynamic-membership schedule (default: inert — a fixed population).
    /// A non-inert plan requires a membership-capable algorithm
    /// ([`supports_membership`](ekbd_dining::DiningAlgorithm::supports_membership)),
    /// i.e. [`run_recoverable`](Self::run_recoverable).
    pub membership: MembershipPlan,
}

impl Scenario {
    /// Creates a scenario over `graph` with defaults: greedy coloring, seed
    /// 0, uniform delays 1–8, silent oracle, default workload, no crashes,
    /// horizon 100 000.
    pub fn new(graph: ConflictGraph) -> Self {
        let colors = coloring::greedy(&graph);
        let audit_period = crate::host::derived_audit_period(graph.max_degree());
        Scenario {
            graph,
            colors,
            seed: 0,
            delay: DelayModel::default(),
            oracle: OracleSpec::Silent,
            workload: Workload::default(),
            crashes: Vec::new(),
            manual_hunger: Vec::new(),
            horizon: Time(100_000),
            faults: FaultPlan::default(),
            link: None,
            engine: EngineKind::default(),
            record_trace: false,
            journal: false,
            storage_faults: StorageFaultPlan::default(),
            audit_period,
            audit_strikes: ekbd_dining::DEFAULT_STRIKES,
            membership: MembershipPlan::new(),
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the coloring (must be proper).
    ///
    /// # Panics
    ///
    /// Panics if the coloring is not proper for the scenario's graph.
    pub fn colors(mut self, colors: Vec<Color>) -> Self {
        coloring::validate(&self.graph, &colors).expect("scenario coloring must be proper");
        self.colors = colors;
        self
    }

    /// Sets the delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Uses the perfect oracle.
    pub fn perfect_oracle(mut self) -> Self {
        self.oracle = OracleSpec::Perfect;
        self
    }

    /// Uses the adversarial scripted oracle.
    pub fn adversarial_oracle(mut self, converge_at: Time, burst: u64) -> Self {
        self.oracle = OracleSpec::Adversarial { converge_at, burst };
        self
    }

    /// Uses the heartbeat detector.
    pub fn heartbeat_oracle(mut self, cfg: HeartbeatConfig) -> Self {
        self.oracle = OracleSpec::Heartbeat(cfg);
        self
    }

    /// Uses the pull-based probe/echo detector.
    pub fn probe_oracle(mut self, cfg: ProbeConfig) -> Self {
        self.oracle = OracleSpec::Probe(cfg);
        self
    }

    /// Sets the workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Schedules a crash.
    pub fn crash(mut self, p: ProcessId, at: Time) -> Self {
        self.crashes.push((p, at));
        self
    }

    /// Schedules a crash-recovery restart of `p` at `at` with blank state
    /// (crash-recovery fault model; requires an algorithm with
    /// [`supports_recovery`](ekbd_dining::DiningAlgorithm::supports_recovery),
    /// e.g. [`ekbd_dining::RecoverableDining`]).
    pub fn recover(mut self, p: ProcessId, at: Time) -> Self {
        self.faults = self.faults.clone().recover(p, at);
        self
    }

    /// Schedules a restart of `p` at `at` that reboots with adversarially
    /// corrupted dining state instead of blank state.
    pub fn recover_corrupted(mut self, p: ProcessId, at: Time) -> Self {
        self.faults = self.faults.clone().recover_corrupted(p, at);
        self
    }

    /// Schedules a transient fault flipping fork/token/request bits of the
    /// (live) process `p` at `at`.
    pub fn corrupt_state(mut self, p: ProcessId, at: Time) -> Self {
        self.faults = self.faults.clone().corrupt_state(p, at);
        self
    }

    /// The scheduled recovery instants, as `(process, time)` pairs.
    pub fn recoveries(&self) -> Vec<(ProcessId, Time)> {
        self.faults
            .recoveries
            .iter()
            .map(|r| (r.process, r.at))
            .collect()
    }

    /// The scheduled live-state corruption instants.
    pub fn corruptions(&self) -> Vec<(ProcessId, Time)> {
        self.faults
            .corruptions
            .iter()
            .map(|c| (c.process, c.at))
            .collect()
    }

    /// Schedules an extra manual hungry session.
    pub fn hunger(mut self, p: ProcessId, at: Time) -> Self {
        self.manual_hunger.push((p, at));
        self
    }

    /// Sets the run horizon.
    pub fn horizon(mut self, t: Time) -> Self {
        self.horizon = t;
        self
    }

    /// Injects channel faults (loss, duplication, reordering, partitions).
    ///
    /// With a non-inert plan the paper's theorems are only expected to hold
    /// when [`reliable_link`](Self::reliable_link) is also enabled.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Routes dining traffic through the `ekbd-link` reliable link layer.
    pub fn reliable_link(mut self, cfg: LinkConfig) -> Self {
        self.link = Some(cfg);
        self
    }

    /// Selects the simulator kernel engine (defaults to
    /// [`EngineKind::Indexed`]; `Legacy` keeps the pre-optimization kernel
    /// for A/B benchmarking).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Enables kernel-trace recording; the trace comes back in
    /// [`RunReport::kernel_trace`](crate::RunReport::kernel_trace). Used by
    /// the golden-trace determinism suite to compare engines event by
    /// event.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Attaches an in-memory stable-storage journal to every recoverable
    /// process: restarts replay the journal and attempt the cheap
    /// `JournalResume` fast path before falling back to the rejoin
    /// handshake.
    pub fn journal(mut self, on: bool) -> Self {
        self.journal = on;
        self
    }

    /// Injects stable-storage faults (torn writes, bit rot, stale
    /// snapshots, dropped syncs). Implies [`journal`](Self::journal).
    pub fn storage_faults(mut self, plan: StorageFaultPlan) -> Self {
        self.storage_faults = plan;
        self
    }

    /// Overrides the audit-and-repair period for recoverable algorithms.
    pub fn audit_period(mut self, period: u64) -> Self {
        self.audit_period = period.max(1);
        self
    }

    /// Overrides the audit strike threshold (consecutive bad observations
    /// before a repair fires) for recoverable algorithms.
    pub fn audit_strikes(mut self, strikes: u8) -> Self {
        self.audit_strikes = strikes.max(1);
        self
    }

    /// Schedules dynamic membership and recomputes the coloring *online*:
    /// initially-present processes are colored greedily over their induced
    /// subgraph, then each joiner (in join order) takes the least color
    /// absent from its co-present neighborhood — existing colors never
    /// change, so in-flight sessions keep their priorities. Replaces any
    /// coloring set earlier; note that the resulting colors are only
    /// guaranteed proper on the *co-present* induced subgraphs, not on the
    /// full graph (two neighbors that never coexist may share a color).
    ///
    /// # Panics
    ///
    /// Panics if the plan does not validate against the graph's population
    /// (see [`MembershipPlan::validate`]).
    pub fn membership(mut self, plan: MembershipPlan) -> Self {
        plan.validate(self.graph.len())
            .expect("membership plan must fit the scenario population");
        self.colors = membership_colors(&self.graph, &plan);
        self.membership = plan;
        self
    }

    /// Convenience: seeded churn at roughly one membership event every
    /// `period` ticks ([`MembershipPlan::seeded_churn`]), derived from the
    /// scenario's *current* seed and horizon — set those first.
    pub fn churn(self, period: u64) -> Self {
        let plan = MembershipPlan::seeded_churn(self.graph.len(), period, self.horizon, self.seed);
        self.membership(plan)
    }

    /// Builds the detector for process `p` per the oracle spec.
    pub(crate) fn detector_for(&self, p: ProcessId) -> AnyDetector {
        let neighbors = self.graph.neighbors(p);
        let neighbor_crashes: Vec<(ProcessId, Time)> = self
            .crashes
            .iter()
            .copied()
            .filter(|&(q, _)| neighbors.contains(&q))
            .collect();
        let neighbor_recoveries: Vec<(ProcessId, Time)> = self
            .recoveries()
            .into_iter()
            .filter(|&(q, _)| neighbors.contains(&q))
            .collect();
        match &self.oracle {
            OracleSpec::Silent => AnyDetector::Scripted(ScriptedOracle::silent()),
            OracleSpec::Perfect if !neighbor_recoveries.is_empty() => AnyDetector::Scripted(
                ScriptedOracle::perfect_with_recoveries(neighbor_crashes, neighbor_recoveries),
            ),
            OracleSpec::Perfect => AnyDetector::Scripted(ScriptedOracle::perfect(neighbor_crashes)),
            OracleSpec::Adversarial { converge_at, burst } => AnyDetector::Scripted(
                ScriptedOracle::adversarial(neighbors, *converge_at, *burst, &neighbor_crashes),
            ),
            OracleSpec::Heartbeat(cfg) => {
                AnyDetector::Heartbeat(HeartbeatDetector::new(*cfg, neighbors.iter().copied()))
            }
            OracleSpec::Probe(cfg) => {
                AnyDetector::Probe(ProbeDetector::new(*cfg, neighbors.iter().copied()))
            }
        }
    }

    /// Runs the scenario with a custom dining-algorithm factory.
    pub fn run_with<A>(&self, mut factory: impl FnMut(&Scenario, ProcessId) -> A) -> RunReport
    where
        A: DiningAlgorithm,
    {
        let cfg = SimConfig::default()
            .n(self.graph.len())
            .seed(self.seed)
            .delay(self.delay.clone())
            .faults(self.faults.clone())
            .engine(self.engine)
            .record_trace(self.record_trace);
        let workload = HostWorkload {
            sessions: self.workload.sessions,
            think: self.workload.think,
            eat: self.workload.eat,
        };
        let mut sim = Simulator::new(cfg, |p, _| {
            let alg = if self.membership.is_inert() {
                factory(self, p)
            } else {
                let view = self.construction_view(p);
                let alg = factory(&view, p);
                assert!(
                    alg.supports_membership(),
                    "a membership plan requires a membership-capable algorithm \
                     (e.g. RecoverableDining; use run_recoverable)"
                );
                alg
            };
            let host = DinerHost::new(alg, self.detector_for(p), workload)
                .with_audit_period(self.audit_period);
            match self.link {
                Some(link_cfg) => host.with_link(link_cfg),
                None => host,
            }
        });
        for &(p, t) in &self.crashes {
            sim.schedule_crash(p, t);
        }
        for &(p, t) in &self.manual_hunger {
            sim.schedule_external(p, t, HostCmd::BecomeHungry);
        }
        self.schedule_membership(&mut sim);
        if self.engine == EngineKind::Indexed {
            // Workload-shaped estimate: 5 scheduling observations per eat
            // session plus ~3 dining sends per session-edge, with 20% slack
            // for suspicion churn. An overrun just resumes normal growth.
            let n = self.graph.len();
            let deg_sum: usize = (0..n)
                .map(|i| self.graph.neighbors(ProcessId::from(i)).len())
                .sum();
            let est = self.workload.sessions as usize * (5 * n + 3 * deg_sum) * 6 / 5;
            sim.reserve_observations(est);
        }
        sim.run_until(self.horizon);
        RunReport::collect(self, &mut sim)
    }

    /// The scenario a process is *constructed* from under the membership
    /// plan: the conflict graph minus the edges `p` must not start with.
    /// Initially-absent neighbors are introduced when they join (via
    /// [`HostCmd::PeerJoined`] notices), and a neighbor that departs
    /// before a joiner `p` ever boots never shares an edge with it at all.
    /// Filtering must happen *before* construction rather than by pruning
    /// after it: online recoloring lets a joiner legitimately reuse the
    /// color of a neighbor that left first, so a never-co-present pair may
    /// share a color and must not meet a proper-coloring construction
    /// check.
    fn construction_view(&self, p: ProcessId) -> Scenario {
        let my_join = self.membership.join_time(p);
        let pairs: Vec<(usize, usize)> = self
            .graph
            .edges()
            .iter()
            .filter(|e| match e.other(p) {
                None => true,
                Some(q) => {
                    let q_joins_later = self.membership.join_time(q).is_some();
                    let q_gone_before_my_boot = my_join
                        .zip(self.membership.departure_time(q))
                        .is_some_and(|(j, d)| d <= j);
                    !q_joins_later && !q_gone_before_my_boot
                }
            })
            .map(|e| (e.lo.index(), e.hi.index()))
            .collect();
        let mut view = self.clone();
        view.graph = ConflictGraph::from_pairs(self.graph.len(), &pairs);
        view
    }

    /// When a membership notice scheduled for `q` at `at` can actually be
    /// absorbed. A neighbor that is *crashed* at the change instant would
    /// silently miss the notice and — once recovered — wait forever on a
    /// departed peer (a composite crash × churn stall the chaos gate
    /// found); modeling a recovering process re-syncing membership, the
    /// notice is deferred to one tick after the recovery that ends the
    /// down interval covering `at`. `None` means `q` is down at `at` for
    /// good and the notice would never be read.
    fn notice_time(&self, q: ProcessId, at: Time) -> Option<Time> {
        let mut crashes: Vec<Time> = self
            .crashes
            .iter()
            .filter(|(p, _)| *p == q)
            .map(|&(_, t)| t)
            .collect();
        crashes.sort();
        let mut recoveries: Vec<Time> = self
            .recoveries()
            .iter()
            .filter(|(p, _)| *p == q)
            .map(|&(_, t)| t)
            .collect();
        recoveries.sort();
        for (k, &c) in crashes.iter().enumerate() {
            match recoveries.get(k) {
                Some(&r) => {
                    if (c..r).contains(&at) {
                        return Some(Time(r.0 + 1));
                    }
                }
                None => {
                    if at >= c {
                        return None;
                    }
                }
            }
        }
        Some(at)
    }

    /// Schedules the membership plan: presence flips on the simulator plus
    /// [`HostCmd::PeerJoined`]/[`HostCmd::PeerLeft`] notices to each
    /// co-present neighbor at the change instant. A joiner learns of
    /// neighbors that joined before (or with) it one tick after its own
    /// boot, so the notice cannot race the `Join` event and be dropped
    /// while it is still absent. Notices to a crashed neighbor are
    /// deferred until it recovers (see [`Self::notice_time`]).
    fn schedule_membership<A: DiningAlgorithm>(&self, sim: &mut Simulator<DinerHost<A>>) {
        if self.membership.is_inert() {
            return;
        }
        let plan = &self.membership;
        for (i, absent) in plan.initially_absent(self.graph.len()).iter().enumerate() {
            if *absent {
                sim.set_initially_absent(ProcessId::from(i));
            }
        }
        let co_present = |q: ProcessId, at: Time| {
            plan.join_time(q).is_none_or(|t| t < at)
                && plan.departure_time(q).is_none_or(|t| t > at)
        };
        for ev in plan.events() {
            match *ev {
                MembershipEvent::Join { process, at } => {
                    sim.schedule_join(process, at);
                    for &q in self.graph.neighbors(process) {
                        if co_present(q, at) {
                            if let Some(when) = self.notice_time(q, at) {
                                let cmd = HostCmd::PeerJoined {
                                    peer: process,
                                    color: self.colors[process.index()],
                                };
                                sim.schedule_external(q, when, cmd);
                            }
                        }
                        let joined_by_now = plan.join_time(q).is_some_and(|t| t <= at)
                            && plan.departure_time(q).is_none_or(|t| t > at);
                        if joined_by_now {
                            if let Some(when) = self.notice_time(process, Time(at.0 + 1)) {
                                let cmd = HostCmd::PeerJoined {
                                    peer: q,
                                    color: self.colors[q.index()],
                                };
                                sim.schedule_external(process, when, cmd);
                            }
                        }
                    }
                }
                MembershipEvent::Leave {
                    process,
                    at,
                    graceful,
                } => {
                    sim.schedule_leave(process, at, graceful);
                    for &q in self.graph.neighbors(process) {
                        if co_present(q, at) {
                            if let Some(when) = self.notice_time(q, at) {
                                let cmd = HostCmd::PeerLeft {
                                    peer: process,
                                    graceful,
                                };
                                sim.schedule_external(q, when, cmd);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs the scenario with the paper's Algorithm 1.
    pub fn run_algorithm1(&self) -> RunReport {
        self.run_with(|s, p| DiningProcess::from_graph(&s.graph, &s.colors, p))
    }

    /// Runs the scenario with Algorithm 1 hardened for the crash-recovery
    /// fault model ([`RecoverableDining`]): required whenever the scenario
    /// schedules [`recover`](Self::recover) /
    /// [`corrupt_state`](Self::corrupt_state) faults.
    pub fn run_recoverable(&self) -> RunReport {
        let journal_on = self.journal || !self.storage_faults.is_inert();
        // The stores are created up front and kept (cloned handles share
        // the backing store) so the finished run can capture each
        // process's retained records for the post-mortem replay.
        let handles: Vec<ekbd_journal::JournalHandle> = if journal_on {
            (0..self.graph.len())
                .map(|i| self.storage_faults.store_for(ProcessId::from(i)))
                .collect()
        } else {
            Vec::new()
        };
        let mut report = self.run_with(|s, p| {
            let alg =
                RecoverableDining::from_graph(&s.graph, &s.colors, p).with_strikes(s.audit_strikes);
            if journal_on {
                alg.with_journal(handles[p.index()].clone())
            } else {
                alg
            }
        });
        report.journals = handles.iter().map(|h| h.dump()).collect();
        report
    }
}

/// The effective coloring of a run under `plan`: greedy over the
/// initially-present induced subgraph, then each joiner — in time order,
/// leaves applied first at an instant so a `replace` pair never constrains
/// itself — takes the least color absent among its co-present neighbors.
/// Present nodes are never recolored, which is what keeps in-flight session
/// priorities stable; the proptest suite in `ekbd-graph` checks that every
/// such sequence stays proper on the co-present subgraph.
fn membership_colors(graph: &ConflictGraph, plan: &MembershipPlan) -> Vec<Color> {
    let n = graph.len();
    let initial: Vec<bool> = plan.initially_absent(n).iter().map(|a| !a).collect();
    let mut m = Membership::new(graph.clone(), &initial);
    let mut events: Vec<MembershipEvent> = plan.events().to_vec();
    // Stable: leaves before joins at the same instant.
    events.sort_by_key(|e| (e.at(), matches!(e, MembershipEvent::Join { .. })));
    for ev in events {
        match ev {
            MembershipEvent::Join { process, .. } => {
                m.join(process).expect("validated plan cannot double-join");
            }
            MembershipEvent::Leave { process, .. } => {
                m.leave(process)
                    .expect("validated plan cannot double-leave");
            }
        }
    }
    m.colors().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;

    #[test]
    fn builder_defaults_and_overrides() {
        let s = Scenario::new(topology::ring(4))
            .seed(9)
            .horizon(Time(1_000))
            .crash(ProcessId(1), Time(10))
            .hunger(ProcessId(0), Time(5));
        assert_eq!(s.seed, 9);
        assert_eq!(s.horizon, Time(1_000));
        assert_eq!(s.crashes, vec![(ProcessId(1), Time(10))]);
        assert_eq!(s.manual_hunger, vec![(ProcessId(0), Time(5))]);
        coloring::validate(&s.graph, &s.colors).unwrap();
    }

    #[test]
    fn audit_period_defaults_from_max_degree() {
        use crate::host::{derived_audit_period, AUDIT_PERIOD};
        // Pin the formula: 10·(δ+3), clamped to [30, 240].
        assert_eq!(derived_audit_period(0), 30);
        assert_eq!(derived_audit_period(1), 40);
        assert_eq!(derived_audit_period(2), AUDIT_PERIOD, "rings keep 50");
        assert_eq!(derived_audit_period(4), 70);
        assert_eq!(derived_audit_period(5), 80);
        assert_eq!(derived_audit_period(21), 240);
        assert_eq!(derived_audit_period(1_000), 240, "hub clamp");

        // Scenario::new picks it up from the graph; rings stay at the
        // historical constant, denser graphs stretch their audit window.
        assert_eq!(Scenario::new(topology::ring(8)).audit_period, AUDIT_PERIOD);
        assert_eq!(Scenario::new(topology::clique(6)).audit_period, 80);
        // An explicit override still wins.
        assert_eq!(
            Scenario::new(topology::clique(6))
                .audit_period(25)
                .audit_period,
            25
        );
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn rejects_improper_coloring() {
        let _ = Scenario::new(topology::ring(4)).colors(vec![0, 0, 0, 0]);
    }

    #[test]
    fn detector_for_scopes_crashes_to_neighbors() {
        let s = Scenario::new(topology::path(3))
            .perfect_oracle()
            .crash(ProcessId(2), Time(10));
        // p0 is not a neighbor of p2: its perfect oracle never suspects.
        let d0 = s.detector_for(ProcessId(0));
        let d1 = s.detector_for(ProcessId(1));
        use ekbd_detector::{DetectorEvent, DetectorModule, DetectorOutput};
        let drive = |d: &mut AnyDetector| {
            d.handle(
                DetectorEvent::Timer {
                    now: Time(100),
                    tag: 0,
                },
                &mut DetectorOutput::new(),
            );
        };
        let (mut d0, mut d1) = (d0, d1);
        drive(&mut d0);
        drive(&mut d1);
        assert!(d0.suspect_set().is_empty());
        assert_eq!(d1.suspect_set(), [ProcessId(2)].into_iter().collect());
    }
}
