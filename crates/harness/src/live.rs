use crate::host::{DinerHost, HostCmd, HostObs};
use crate::report::RunReport;
use crate::scenario::Scenario;
use ekbd_dining::DiningAlgorithm;
use ekbd_graph::ProcessId;
use ekbd_sim::{Observation, SimConfig, Simulator, Time};

/// A scenario being executed step by step under external control.
///
/// [`Scenario::run_with`] drives a run to its horizon in one call; a
/// `LiveRun` instead hands control back after every simulator event, so a
/// driver can react to observations (e.g. execute a protocol step when a
/// diner starts eating) and inject workload mid-flight. This is how the
/// `ekbd-stabilize` crate schedules self-stabilizing protocols through the
/// daemon.
pub struct LiveRun<A: DiningAlgorithm> {
    scenario: Scenario,
    sim: Simulator<DinerHost<A>>,
    cursor: usize,
}

impl<A: DiningAlgorithm> LiveRun<A> {
    /// Starts a live run; crashes and manual hunger from the scenario are
    /// pre-scheduled exactly as in [`Scenario::run_with`].
    pub fn new(scenario: Scenario, mut factory: impl FnMut(&Scenario, ProcessId) -> A) -> Self {
        let cfg = SimConfig::default()
            .n(scenario.graph.len())
            .seed(scenario.seed)
            .delay(scenario.delay.clone())
            .faults(scenario.faults.clone())
            .engine(scenario.engine);
        let workload = crate::host::HostWorkload {
            sessions: scenario.workload.sessions,
            think: scenario.workload.think,
            eat: scenario.workload.eat,
        };
        let mut sim = Simulator::new(cfg, |p, _| {
            let host = DinerHost::new(factory(&scenario, p), scenario.detector_for(p), workload)
                .with_audit_period(scenario.audit_period);
            match scenario.link {
                Some(link_cfg) => host.with_link(link_cfg),
                None => host,
            }
        });
        for &(p, t) in &scenario.crashes {
            sim.schedule_crash(p, t);
        }
        for &(p, t) in &scenario.manual_hunger {
            sim.schedule_external(p, t, HostCmd::BecomeHungry);
        }
        LiveRun {
            scenario,
            sim,
            cursor: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The scenario being executed.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Whether `p` has crashed by now.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.sim.is_crashed(p)
    }

    /// The current incarnation of `p` (0 until its first restart).
    pub fn incarnation(&self, p: ProcessId) -> u64 {
        self.sim.incarnation(p)
    }

    /// The dining algorithm hosted at `p` (for invariant assertions: fork
    /// uniqueness, token placement, doorway state).
    pub fn algorithm(&self, p: ProcessId) -> &A {
        self.sim.node(p).algorithm()
    }

    /// The largest in-transit high-water mark over all channels so far.
    pub fn max_channel_high_water(&self) -> usize {
        self.sim.max_channel_high_water()
    }

    /// Processes one simulator event if any remains at or before the
    /// horizon; returns `false` when the run is over.
    pub fn step(&mut self) -> bool {
        match self.sim.peek_next_time() {
            Some(t) if t <= self.scenario.horizon => self.sim.step().is_some(),
            _ => false,
        }
    }

    /// Observations emitted since the last call.
    pub fn new_observations(&mut self) -> &[Observation<HostObs>] {
        let all = self.sim.observations();
        let fresh = &all[self.cursor.min(all.len())..];
        self.cursor = all.len();
        fresh
    }

    /// Advances the clock to `t` (clamped to the horizon), processing any
    /// events due on the way. Lets a driver reach a wall-clock point (e.g.
    /// a scheduled fault) even when the event queue has drained.
    pub fn advance_to(&mut self, t: Time) {
        self.sim.run_until(t.min(self.scenario.horizon));
    }

    /// Injects a hunger command for `p` at `t` (must be in the future).
    pub fn inject_hunger(&mut self, p: ProcessId, t: Time) {
        self.sim.schedule_external(p, t, HostCmd::BecomeHungry);
    }

    /// Injects a stop-eating command for `p` at `t`.
    pub fn inject_stop(&mut self, p: ProcessId, t: Time) {
        self.sim.schedule_external(p, t, HostCmd::StopEating);
    }

    /// Drains any remaining events up to the horizon and produces the
    /// final report.
    pub fn finish(mut self) -> RunReport {
        self.sim.run_until(self.scenario.horizon);
        RunReport::collect(&self.scenario, &mut self.sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scenario, Workload};
    use ekbd_dining::{DiningObs, DiningProcess};
    use ekbd_graph::topology;

    #[test]
    fn stepwise_run_matches_batch_run() {
        let scenario = Scenario::new(topology::ring(4))
            .seed(21)
            .workload(Workload {
                sessions: 4,
                think: (1, 20),
                eat: (1, 10),
            })
            .horizon(Time(20_000));
        let batch = scenario.run_algorithm1();
        let mut live = LiveRun::new(scenario, |s, p| {
            DiningProcess::from_graph(&s.graph, &s.colors, p)
        });
        let mut seen = 0;
        while live.step() {
            seen += live.new_observations().len();
        }
        let report = live.finish();
        assert_eq!(report.events, batch.events);
        assert_eq!(
            seen,
            report.events.len() + report.suspicions.len() + report.dining_sends.len()
        );
    }

    #[test]
    fn injected_hunger_produces_a_session() {
        let scenario = Scenario::new(topology::path(2))
            .seed(1)
            .workload(Workload {
                sessions: 0,
                think: (1, 1),
                eat: (5, 5),
            })
            .horizon(Time(5_000));
        let mut live = LiveRun::new(scenario, |s, p| {
            DiningProcess::from_graph(&s.graph, &s.colors, p)
        });
        live.inject_hunger(ekbd_graph::ProcessId(0), Time(10));
        while live.step() {}
        let report = live.finish();
        assert_eq!(report.total_eat_sessions(), 1);
        assert!(report
            .events
            .iter()
            .any(|e| e.obs == DiningObs::StartedEating));
    }
}
