//! Running [`FaultSchedule`]s: scenario construction, the invariant
//! watchdog, and the run-classifying oracle the shrinker drives.
//!
//! This is the harness half of the chaos engine. `ekbd-chaos` owns the
//! schedule model (it is a leaf crate and cannot run anything);
//! [`Scenario::chaos`] compiles a schedule into a full scenario, and
//! [`run_chaos`] executes it *twice* — the second, byte-identical rerun
//! is itself an invariant — then classifies the outcome into a
//! [`RunClass`]:
//!
//! * [`RunClass::NonDeterministic`] — the rerun's event trace diverged;
//! * [`RunClass::ExclusionMistake`] — live neighbors overlapped eating
//!   after the stabilization point (detector convergence or the last
//!   scheduled disturbance plus a ten-audit grace window, whichever is
//!   later);
//! * [`RunClass::Stalled`] — a live process was still starving at the
//!   horizon (Theorem 2 violated);
//! * [`RunClass::WaitFree`] — none of the above.

use crate::report::RunReport;
use crate::scenario::{Scenario, Workload};
use crate::AUDIT_PERIOD;
use ekbd_chaos::{codec, shrink, FaultSchedule, RunClass, ScheduleError, ShrinkStats};
use ekbd_graph::ProcessId;
use ekbd_link::LinkConfig;
use ekbd_sim::Time;
use std::path::{Path, PathBuf};

/// The canonical chaos workload: enough sessions per process that every
/// disturbance window overlaps live hunger, short enough cycles that the
/// post-disturbance tail has plenty of admissions to judge.
pub const CHAOS_WORKLOAD: Workload = Workload {
    sessions: 8,
    think: (1, 30),
    eat: (1, 8),
};

/// Everything the watchdog concluded about one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The classification (see module docs for the precedence).
    pub class: RunClass,
    /// The stabilization point mistakes were judged after.
    pub stabilized_at: Time,
    /// Exclusion mistakes over the whole run (pre-stabilization
    /// mistakes are legal under ◇WX).
    pub mistakes_total: usize,
    /// Exclusion mistakes after the stabilization point.
    pub mistakes_after: usize,
    /// Live processes still starving at the horizon.
    pub starving: Vec<ProcessId>,
    /// Whether the rerun was byte-identical.
    pub deterministic: bool,
    /// The first run's full report.
    pub report: RunReport,
}

impl ChaosOutcome {
    /// True for every class except [`RunClass::WaitFree`].
    pub fn is_failure(&self) -> bool {
        self.class.is_failure()
    }
}

impl Scenario {
    /// Compile a validated [`FaultSchedule`] into a runnable scenario:
    /// perfect oracle, the canonical chaos workload, and every fault
    /// axis wired to its plan. The link layer is enabled exactly when
    /// the schedule injects channel faults (required for the theorems
    /// to survive them).
    pub fn chaos(schedule: &FaultSchedule) -> Result<Scenario, ScheduleError> {
        schedule.validate()?;
        let graph = schedule.build_topology()?;
        let parts = schedule.parts();
        // The audit period is pinned to the historical constant rather
        // than the degree-derived scenario default: committed `.chaos`
        // artifacts record an expected class, and that classification
        // must stay reproducible as defaults evolve.
        let mut s = Scenario::new(graph)
            .seed(schedule.seed)
            .horizon(schedule.horizon)
            .perfect_oracle()
            .workload(CHAOS_WORKLOAD)
            .audit_period(AUDIT_PERIOD)
            .faults(parts.faults)
            .storage_faults(parts.storage);
        for (p, t) in parts.crashes {
            s = s.crash(p, t);
        }
        if !parts.membership.is_inert() {
            s = s.membership(parts.membership);
        }
        if schedule.needs_link() {
            s = s.reliable_link(LinkConfig::default());
        }
        Ok(s)
    }
}

/// Run `schedule` (twice) and classify the outcome.
///
/// Errors only on invalid schedules; a failing *run* is a normal
/// [`ChaosOutcome`] with a failure class.
pub fn run_chaos(schedule: &FaultSchedule) -> Result<ChaosOutcome, ScheduleError> {
    let scenario = Scenario::chaos(schedule)?;
    let report = scenario.run_recoverable();
    let rerun = scenario.run_recoverable();
    let deterministic = format!("{:?}", report.events) == format!("{:?}", rerun.events);

    // Judge mistakes only after both the detector has converged and the
    // last scheduled disturbance has had ten audit periods to be
    // repaired; everything before is legal ◇WX turbulence.
    let grace = Time(schedule.last_disturbance().0 + 10 * AUDIT_PERIOD);
    let stabilized_at = report.detector_convergence().max(grace);
    let mistakes_total = report.exclusion().total();
    let mistakes_after = report.exclusion().after(stabilized_at);
    let starving = report.progress().starving();

    let class = if !deterministic {
        RunClass::NonDeterministic
    } else if mistakes_after > 0 {
        RunClass::ExclusionMistake
    } else if !starving.is_empty() {
        RunClass::Stalled
    } else {
        RunClass::WaitFree
    };

    Ok(ChaosOutcome {
        class,
        stabilized_at,
        mistakes_total,
        mistakes_after,
        starving,
        deterministic,
        report,
    })
}

/// The shrinker's oracle, shared by the CLI and the E18 gate: a
/// candidate "still fails" when it is a valid schedule AND reproduces
/// exactly `class`. Dropping events can orphan a recovery or a storage
/// fault; those candidates are invalid, not failing.
pub fn reproduces(schedule: &FaultSchedule, class: RunClass) -> bool {
    run_chaos(schedule).is_ok_and(|o| o.class == class)
}

/// Shrink a schedule known to fail with `class` to a locally-minimal
/// failing sub-schedule (see [`ekbd_chaos::shrink`]).
pub fn shrink_failing(schedule: &FaultSchedule, class: RunClass) -> (FaultSchedule, ShrinkStats) {
    shrink(schedule, |candidate| reproduces(candidate, class))
}

/// Persist a failing schedule as a replayable artifact under `dir`,
/// tagged with the class it reproduces, and print the exact replay
/// command next to the failure — the repro is one paste away.
pub fn emit_repro_artifact(
    schedule: &FaultSchedule,
    class: RunClass,
    dir: &Path,
) -> Result<PathBuf, ScheduleError> {
    let tagged = schedule.clone().expecting(class);
    let name = format!(
        "{}-seed{}-{}.chaos",
        schedule.topology,
        schedule.seed,
        class.as_str()
    );
    let path = dir.join(name);
    codec::write_artifact(&tagged, &path)?;
    eprintln!(
        "chaos invariant failure ({class}); reproduce with: {}",
        codec::replay_command(&path)
    );
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_chaos::{ChannelNoise, ChaosEvent, Intensity};

    #[test]
    fn empty_schedule_is_wait_free() {
        let schedule = FaultSchedule::new("ring-5", 3, Time(60_000));
        let outcome = run_chaos(&schedule).unwrap();
        assert_eq!(outcome.class, RunClass::WaitFree);
        assert!(outcome.deterministic);
        assert!(outcome.starving.is_empty());
        assert!(!outcome.is_failure());
    }

    #[test]
    fn generated_composite_schedule_runs_clean() {
        let schedule = FaultSchedule::generate("ring-8", 7, &Intensity::default_mix()).unwrap();
        assert!(schedule.axes().len() >= 2);
        let outcome = run_chaos(&schedule).unwrap();
        assert_eq!(outcome.class, RunClass::WaitFree, "{:?}", outcome.starving);
        assert_eq!(outcome.mistakes_after, 0);
    }

    #[test]
    fn never_healing_partition_classifies_as_stalled() {
        let schedule =
            FaultSchedule::new("ring-8", 11, Time(120_000)).event(ChaosEvent::Partition {
                side: vec![ProcessId(3)],
                start: Time(50),
                heal: Time(120_000),
            });
        let outcome = run_chaos(&schedule).unwrap();
        assert_eq!(outcome.class, RunClass::Stalled);
        assert!(outcome.is_failure());
    }

    #[test]
    #[ignore = "diagnosis probe; run explicitly"]
    fn crash_churn_probe() {
        // Which crash × churn pairings wedge? One pairing per run.
        for (name, events) in [
            (
                "join+crash",
                vec![
                    ChaosEvent::Join {
                        process: ProcessId(4),
                        at: Time(200),
                    },
                    ChaosEvent::Crash {
                        process: ProcessId(1),
                        at: Time(300),
                    },
                    ChaosEvent::Recover {
                        process: ProcessId(1),
                        at: Time(900),
                        corrupt: false,
                    },
                ],
            ),
            (
                "leave+crash",
                vec![
                    ChaosEvent::Leave {
                        process: ProcessId(4),
                        at: Time(400),
                        graceful: true,
                    },
                    ChaosEvent::Crash {
                        process: ProcessId(1),
                        at: Time(300),
                    },
                    ChaosEvent::Recover {
                        process: ProcessId(1),
                        at: Time(900),
                        corrupt: false,
                    },
                ],
            ),
            (
                "join-before-crash-of-neighbor",
                vec![
                    ChaosEvent::Join {
                        process: ProcessId(2),
                        at: Time(200),
                    },
                    ChaosEvent::Crash {
                        process: ProcessId(3),
                        at: Time(100),
                    },
                    ChaosEvent::Recover {
                        process: ProcessId(3),
                        at: Time(900),
                        corrupt: false,
                    },
                ],
            ),
            (
                "crash-only",
                vec![
                    ChaosEvent::Crash {
                        process: ProcessId(1),
                        at: Time(300),
                    },
                    ChaosEvent::Recover {
                        process: ProcessId(1),
                        at: Time(900),
                        corrupt: false,
                    },
                ],
            ),
            (
                "join-only",
                vec![ChaosEvent::Join {
                    process: ProcessId(4),
                    at: Time(200),
                }],
            ),
        ] {
            for seed in 0..8 {
                let mut s = FaultSchedule::new("ring-8", seed, Time(60_000));
                s.events = events.clone();
                let o = run_chaos(&s).unwrap();
                println!("{name}/{seed}: {} starving={:?}", o.class, o.starving);
            }
        }
    }

    #[test]
    #[ignore = "diagnosis probe; run explicitly"]
    fn shrink_real_failure() {
        let s = FaultSchedule::generate("ring-8", 9, &Intensity::default_mix()).unwrap();
        let o = run_chaos(&s).unwrap();
        println!("original: {} ({} events)", o.class, s.events.len());
        let (small, stats) = shrink_failing(&s, o.class);
        println!(
            "shrunk to {} events after {} tests:",
            stats.shrunk, stats.tests
        );
        for ev in &small.events {
            println!("    {ev:?}");
        }
        let o2 = run_chaos(&small).unwrap();
        println!("replay: {} starving={:?}", o2.class, o2.starving);
    }

    #[test]
    #[ignore = "calibration sweep for generator tuning; run explicitly"]
    fn calibration_sweep() {
        let mut failures = 0;
        for topo in ["ring-8", "clique-6", "grid-3x4", "gnp-12-0.3"] {
            for seed in 0..16 {
                let s = FaultSchedule::generate(topo, seed, &Intensity::default_mix()).unwrap();
                let o = run_chaos(&s).unwrap();
                if o.is_failure() {
                    failures += 1;
                    println!(
                        "{topo}/{seed}: {} starving={:?} axes={:?}",
                        o.class,
                        o.starving,
                        s.axes()
                    );
                    for ev in &s.events {
                        println!("    {ev:?}");
                    }
                }
            }
        }
        println!("failures: {failures}/64");
        assert_eq!(failures, 0);
    }

    #[test]
    fn invalid_schedule_is_an_error_not_a_failure() {
        let schedule = FaultSchedule::new("ring-8", 1, Time(10_000))
            .event(ChaosEvent::Noise(ChannelNoise::inert()))
            .event(ChaosEvent::Noise(ChannelNoise::inert()));
        assert!(run_chaos(&schedule).is_err());
        assert!(!reproduces(&schedule, RunClass::Stalled));
    }
}
