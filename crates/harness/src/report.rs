use crate::host::{DinerHost, HostObs};
use crate::scenario::Scenario;
use ekbd_dining::{
    DinerState, DiningAlgorithm, DiningObs, RecoveryStats, RestartEvent, RestartPath,
};
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_metrics::{
    ConcurrencyReport, ExclusionReport, FairnessReport, LinkSummary, ProgressReport,
    QuiescenceReport, SchedEvent,
};
use ekbd_sim::{Simulator, Time, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// Everything measured in one scenario run.
///
/// The raw material (scheduling events, suspicion history, channel stats)
/// is captured here; the per-claim analyses are produced on demand by
/// [`exclusion`](Self::exclusion), [`fairness`](Self::fairness),
/// [`progress`](Self::progress) and [`quiescence`](Self::quiescence).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The conflict graph of the run.
    pub graph: ConflictGraph,
    /// The run horizon.
    pub horizon: Time,
    /// The crash schedule that was applied.
    pub crashes: Vec<(ProcessId, Time)>,
    /// Scheduled membership joins: `(process, join time)`.
    pub joins: Vec<(ProcessId, Time)>,
    /// Scheduled membership departures: `(process, leave time, graceful)`.
    pub departures: Vec<(ProcessId, Time, bool)>,
    /// The recovery schedule (crash-recovery fault model): `(process,
    /// restart time)`.
    pub recoveries: Vec<(ProcessId, Time)>,
    /// The live-state corruption schedule.
    pub corruptions: Vec<(ProcessId, Time)>,
    /// Final incarnation per process (0 = never restarted).
    pub incarnations: Vec<u64>,
    /// Aggregated recovery-layer counters, when the algorithm keeps them.
    pub recovery: Option<RecoveryStats>,
    /// Per-process restart logs (empty vector for a process that never
    /// restarted or for crash-stop algorithms): which recovery path each
    /// restart took — journal replay or blank reboot.
    pub restart_logs: Vec<Vec<RestartEvent>>,
    /// Scheduling events (hungry/doorway/eat transitions). For processes
    /// that crash and later recover, the interrupted life's open intervals
    /// are closed at the crash instant and a hungry session the crash
    /// aborted is removed, so interval analyses see a well-formed stream.
    pub events: Vec<SchedEvent>,
    /// Suspicion history: `(when, observer, target, suspected)`.
    pub suspicions: Vec<(Time, ProcessId, ProcessId, bool)>,
    /// Final dining state per process.
    pub final_states: Vec<DinerState>,
    /// Protocol state size in bits per process (paper §7).
    pub state_bits: Vec<usize>,
    /// Largest number of simultaneously in-flight messages on any channel.
    /// **Includes detector traffic**; for the paper's ≤ 4 bound (dining
    /// messages only) use a scripted oracle, which sends nothing.
    pub max_channel_high_water: usize,
    /// Total messages sent (all layers).
    pub total_messages: u64,
    /// `(send_time, from, to)` for **all** messages (dining + detector)
    /// sent to crashed destinations, as counted by the network fabric.
    pub sends_to_crashed: Vec<(Time, ProcessId, ProcessId)>,
    /// `(send_time, from, to)` for every **dining-layer** message — the
    /// traffic the §7 quiescence claim covers (heartbeat monitoring is
    /// perpetual by nature and excluded).
    pub dining_sends: Vec<(Time, ProcessId, ProcessId)>,
    /// Simulator events processed.
    pub events_processed: u64,
    /// Messages destroyed in transit by the fault plan (loss + partitions).
    pub messages_dropped: u64,
    /// Extra copies injected by duplication faults.
    pub messages_duplicated: u64,
    /// Aggregated link-layer counters, when the scenario ran with
    /// [`reliable_link`](crate::Scenario::reliable_link).
    pub link: Option<LinkSummary>,
    /// The kernel trace, when the scenario ran with
    /// [`record_trace`](crate::Scenario::record_trace); empty otherwise.
    pub kernel_trace: Vec<TraceEvent>,
    /// Per-process journal contents at the end of the run (retained
    /// records, oldest first), captured by
    /// [`run_recoverable`](crate::Scenario::run_recoverable) when
    /// journaling was on; empty otherwise. Feeds [`replay`](Self::replay)
    /// and [`dump_journals`](Self::dump_journals).
    pub journals: Vec<Vec<Vec<u8>>>,
}

/// Membership class of a process over the whole run, attached to its
/// readmission records: latency medians should aggregate `Continuous`
/// processes only — a `Departed` process may never eat again for the
/// benign reason that it left, and a `Joined` one starts from a cold
/// handshake rather than a recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipTag {
    /// Present from time zero to the horizon (no membership events).
    Continuous,
    /// Joined the system mid-run and stayed.
    Joined,
    /// Left the system before the horizon (possibly after joining).
    Departed,
}

/// One scheduled recovery and how it went: when the process restarted,
/// when it was first scheduled to eat again, and which recovery path the
/// restart took (journal fast resume vs blank rejoin).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Readmission {
    /// The recovered process.
    pub process: ProcessId,
    /// The scheduled restart instant.
    pub restarted: Time,
    /// First eat-slot at or after the restart; `None` when the process
    /// never ate again before the horizon.
    pub first_eat: Option<Time>,
    /// The restart path taken, when the algorithm logs one (`None` for
    /// crash-stop algorithms or restarts past the horizon).
    pub path: Option<RestartPath>,
    /// The process's membership class; readmission-latency medians should
    /// cover [`MembershipTag::Continuous`] records only.
    pub membership: MembershipTag,
}

impl Readmission {
    /// Ticks from restart to the first renewed eat-slot, if any.
    pub fn time_to_readmission(&self) -> Option<u64> {
        self.first_eat.map(|e| e.0 - self.restarted.0)
    }
}

/// One scheduled membership join and when the joiner first reached the
/// critical section: the *join → first eat* admission latency of E17.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// The joining process.
    pub process: ProcessId,
    /// The scheduled join instant.
    pub joined: Time,
    /// First eat-slot at or after the join; `None` when the joiner never
    /// ate before the horizon (or departed again first).
    pub first_eat: Option<Time>,
}

impl Admission {
    /// Ticks from join to the first eat-slot, if any.
    pub fn time_to_first_eat(&self) -> Option<u64> {
        self.first_eat.map(|e| e.0 - self.joined.0)
    }
}

impl RunReport {
    /// Harvests a finished simulation.
    pub(crate) fn collect<A: DiningAlgorithm>(
        scenario: &Scenario,
        sim: &mut Simulator<DinerHost<A>>,
    ) -> Self {
        // Two passes: count each bucket first so the partition below never
        // reallocates (the observation stream is by far the largest input).
        let observations = sim.take_observations();
        let (mut n_sched, mut n_susp, mut n_sends) = (0usize, 0usize, 0usize);
        for o in &observations {
            match o.obs {
                HostObs::Sched(_) => n_sched += 1,
                HostObs::Suspect { .. } | HostObs::Unsuspect { .. } => n_susp += 1,
                HostObs::DiningSend { .. } => n_sends += 1,
            }
        }
        let mut events = Vec::with_capacity(n_sched);
        let mut suspicions = Vec::with_capacity(n_susp);
        let mut dining_sends = Vec::with_capacity(n_sends);
        for o in observations {
            match o.obs {
                HostObs::Sched(obs) => events.push(SchedEvent::new(o.time, o.process, obs)),
                HostObs::Suspect { target } => {
                    suspicions.push((o.time, o.process, target, true));
                }
                HostObs::Unsuspect { target } => {
                    suspicions.push((o.time, o.process, target, false));
                }
                HostObs::DiningSend { to } => {
                    dining_sends.push((o.time, o.process, to));
                }
            }
        }
        let n = scenario.graph.len();
        let recoveries = scenario.recoveries();
        let corruptions = scenario.corruptions();
        let mut joins = Vec::new();
        let mut departures = Vec::new();
        for ev in scenario.membership.events() {
            match *ev {
                ekbd_sim::MembershipEvent::Join { process, at } => joins.push((process, at)),
                ekbd_sim::MembershipEvent::Leave {
                    process,
                    at,
                    graceful,
                } => departures.push((process, at, graceful)),
            }
        }
        let events = sanitize_interrupted(events, &scenario.crashes, &recoveries, &departures);
        let final_states = (0..n)
            .map(|i| sim.node(ProcessId::from(i)).algorithm().state())
            .collect();
        let state_bits = (0..n)
            .map(|i| sim.node(ProcessId::from(i)).algorithm().state_bits())
            .collect();
        let incarnations = (0..n)
            .map(|i| sim.incarnation(ProcessId::from(i)))
            .collect();
        let mut recovery: Option<RecoveryStats> = None;
        for i in 0..n {
            if let Some(s) = sim.node(ProcessId::from(i)).algorithm().recovery_stats() {
                recovery
                    .get_or_insert_with(RecoveryStats::default)
                    .absorb(s);
            }
        }
        let restart_logs = (0..n)
            .map(|i| {
                sim.node(ProcessId::from(i))
                    .algorithm()
                    .restart_log()
                    .unwrap_or_default()
            })
            .collect();
        let link = scenario.link.map(|_| {
            let mut summary = LinkSummary::default();
            for i in 0..n {
                if let Some(s) = sim.node(ProcessId::from(i)).link_stats() {
                    summary.absorb(
                        s.payloads_sent,
                        s.data_sent,
                        s.retransmissions,
                        s.acks_sent,
                        s.duplicates_suppressed,
                        s.out_of_order_buffered,
                        s.delivered,
                        s.recoveries,
                        s.max_unacked,
                    );
                }
            }
            summary
        });
        RunReport {
            graph: scenario.graph.clone(),
            horizon: scenario.horizon,
            crashes: scenario.crashes.clone(),
            joins,
            departures,
            recoveries,
            corruptions,
            incarnations,
            recovery,
            restart_logs,
            events,
            suspicions,
            final_states,
            state_bits,
            max_channel_high_water: sim.max_channel_high_water(),
            total_messages: sim.total_messages(),
            sends_to_crashed: sim.sends_to_crashed().to_vec(),
            dining_sends,
            events_processed: sim.events_processed(),
            messages_dropped: sim.total_dropped(),
            messages_duplicated: sim.total_duplicated(),
            link,
            kernel_trace: sim.trace().to_vec(),
            journals: Vec::new(),
        }
    }

    /// Post-mortem reconstruction of the restart narrative from the
    /// captured per-process journals (see [`journals`](Self::journals)):
    /// the same analysis `ekbd replay` performs on a journal directory,
    /// so a live run and its dumped journals tell one story.
    pub fn replay(&self) -> Vec<ekbd_journal::ProcessReplay> {
        self.journals
            .iter()
            .enumerate()
            .map(|(i, records)| ekbd_journal::replay::replay_process(format!("p{i}"), records))
            .collect()
    }

    /// Writes each captured journal to `dir` as a framed segment file
    /// `journal-p<i>.ekj` — the `FileJournal` on-disk format, so
    /// `ekbd replay --dir` reconstructs simulated runs exactly as it does
    /// threaded ones. The retained set is written verbatim (not
    /// re-committed through a `FileJournal`, which would re-run compaction
    /// on an already-compacted history and lose records); processes whose
    /// journal retained nothing are skipped.
    pub fn dump_journals(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, records) in self.journals.iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            ekbd_journal::write_snapshot(&dir.join(format!("journal-p{i}.ekj")), records)?;
        }
        Ok(())
    }

    /// The instant from which `p` is *permanently* down, if any: its last
    /// crash within the horizon with no recovery scheduled at or after it.
    /// A process that crashes but recovers is correct again in the
    /// crash-recovery model (and is held to wait-freedom again).
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        let last_crash = self
            .crashes
            .iter()
            .filter(|&&(q, t)| q == p && t <= self.horizon)
            .map(|&(_, t)| t)
            .max()?;
        let recovered = self
            .recoveries
            .iter()
            .any(|&(q, t)| q == p && t >= last_crash && t <= self.horizon);
        (!recovered).then_some(last_crash)
    }

    /// The instant `p` permanently left the system (dynamic membership),
    /// if a departure was scheduled within the horizon.
    pub fn departure_time(&self, p: ProcessId) -> Option<Time> {
        self.departures
            .iter()
            .find(|&&(q, t, _)| q == p && t <= self.horizon)
            .map(|&(_, t, _)| t)
    }

    /// The instant `p` joined the system (dynamic membership), if a join
    /// was scheduled within the horizon.
    pub fn join_time(&self, p: ProcessId) -> Option<Time> {
        self.joins
            .iter()
            .find(|&&(q, t)| q == p && t <= self.horizon)
            .map(|&(_, t)| t)
    }

    /// The instant from which `p` is permanently out of the computation —
    /// its unrecovered crash ([`crash_time`](Self::crash_time)) or its
    /// membership departure, whichever comes first. Safety and liveness
    /// analyses excuse a process only from this point on; a joiner is held
    /// to every obligation from its join.
    pub fn cut_time(&self, p: ProcessId) -> Option<Time> {
        match (self.crash_time(p), self.departure_time(p)) {
            (Some(c), Some(d)) => Some(c.min(d)),
            (c, d) => c.or(d),
        }
    }

    /// The process's membership class over this run (see [`MembershipTag`]).
    pub fn membership_tag(&self, p: ProcessId) -> MembershipTag {
        if self.departure_time(p).is_some() {
            MembershipTag::Departed
        } else if self.join_time(p).is_some() {
            MembershipTag::Joined
        } else {
            MembershipTag::Continuous
        }
    }

    /// Whether `p` is correct in this run (never permanently crashed and
    /// never departed).
    pub fn is_correct(&self, p: ProcessId) -> bool {
        self.cut_time(p).is_none()
    }

    /// The last scheduled process fault (restart or corruption), if any.
    /// After this instant plus stabilization slack, every property the
    /// paper proves must hold again (experiment E15).
    pub fn last_fault_time(&self) -> Option<Time> {
        let r = self.recoveries.iter().map(|&(_, t)| t).max();
        let c = self.corruptions.iter().map(|&(_, t)| t).max();
        r.max(c)
    }

    /// Per scheduled recovery: when the process restarted, when it first
    /// ate again, and which recovery path the restart took. The difference
    /// of the two times is the *time to readmission*.
    pub fn readmissions(&self) -> Vec<Readmission> {
        // The k-th scheduled recovery of `p` (in time order) produced its
        // life with incarnation k+1; pair it with that restart-log entry.
        let mut nth: BTreeMap<ProcessId, u64> = BTreeMap::new();
        let mut schedule: Vec<(ProcessId, Time)> = self.recoveries.clone();
        schedule.sort_by_key(|&(_, t)| t);
        schedule
            .into_iter()
            .map(|(p, r)| {
                let inc = {
                    let c = nth.entry(p).or_insert(0);
                    *c += 1;
                    *c
                };
                let first_eat = self
                    .events
                    .iter()
                    .find(|e| e.process == p && e.obs == DiningObs::StartedEating && e.time >= r)
                    .map(|e| e.time);
                let path = self
                    .restart_logs
                    .get(p.index())
                    .and_then(|log| log.iter().find(|ev| ev.incarnation == inc))
                    .map(|ev| ev.path);
                Readmission {
                    process: p,
                    restarted: r,
                    first_eat,
                    path,
                    membership: self.membership_tag(p),
                }
            })
            .collect()
    }

    /// Per scheduled membership join: when the process joined and when it
    /// first ate. The difference is the E17 *join → first eat* latency.
    pub fn admissions(&self) -> Vec<Admission> {
        let mut schedule = self.joins.clone();
        schedule.sort_by_key(|&(_, t)| t);
        schedule
            .into_iter()
            .map(|(p, j)| {
                let first_eat = self
                    .events
                    .iter()
                    .find(|e| e.process == p && e.obs == DiningObs::StartedEating && e.time >= j)
                    .map(|e| e.time);
                Admission {
                    process: p,
                    joined: j,
                    first_eat,
                }
            })
            .collect()
    }

    /// Theorem 1 analysis (◇WX safety).
    pub fn exclusion(&self) -> ExclusionReport {
        ExclusionReport::analyze(
            &self.graph,
            &self.events,
            &|p| self.cut_time(p),
            self.horizon,
        )
    }

    /// Theorem 3 analysis (◇2-bounded waiting).
    pub fn fairness(&self) -> FairnessReport {
        FairnessReport::analyze(
            &self.graph,
            &self.events,
            &|p| self.cut_time(p),
            self.horizon,
        )
    }

    /// Theorem 2 analysis (wait-freedom).
    pub fn progress(&self) -> ProgressReport {
        ProgressReport::analyze(
            self.graph.len(),
            &self.events,
            &|p| self.cut_time(p),
            self.horizon,
        )
    }

    /// §7 quiescence analysis over the dining layer's traffic (the claim's
    /// scope; a heartbeat oracle's own monitoring traffic is perpetual).
    pub fn quiescence(&self) -> QuiescenceReport {
        let to_crashed: Vec<(Time, ProcessId, ProcessId)> = self
            .dining_sends
            .iter()
            .copied()
            .filter(|&(t, _, to)| self.cut_time(to).is_some_and(|c| c <= t))
            .collect();
        QuiescenceReport::analyze(&to_crashed, &self.crashes)
    }

    /// Scheduling-parallelism analysis (average/max simultaneous eaters).
    pub fn concurrency(&self) -> ConcurrencyReport {
        ConcurrencyReport::analyze(
            self.graph.len(),
            &self.events,
            &|p| self.cut_time(p),
            self.horizon,
        )
    }

    /// Eat-slots granted in total (completed hungry sessions).
    pub fn total_eat_sessions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.obs == DiningObs::StartedEating)
            .count()
    }

    /// The *measured* ◇P₁ convergence time of this run: the earliest time
    /// from which (a) no correct process suspects a correct neighbor
    /// (eventual strong accuracy) and (b) every crashed process is
    /// permanently suspected by each correct neighbor that ever reported on
    /// it (strong completeness). Returns the horizon when the run ended
    /// before convergence was visible.
    pub fn detector_convergence(&self) -> Time {
        let mut conv = Time::ZERO;
        // Group suspicion events per (observer, target).
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<(ProcessId, ProcessId), Vec<(Time, bool)>> = BTreeMap::new();
        for &(t, obs, target, s) in &self.suspicions {
            hist.entry((obs, target)).or_default().push((t, s));
        }
        for ((observer, target), h) in &hist {
            if !self.is_correct(*observer) {
                continue; // only correct observers constrain ◇P₁
            }
            let last = h.last().expect("non-empty history");
            if self.is_correct(*target) {
                // Accuracy: the last event must be a withdrawal; until then
                // the pair had a standing false positive.
                conv = conv.max(if last.1 { self.horizon } else { last.0 });
            } else {
                // Completeness: the last event must be a (permanent)
                // suspicion.
                conv = conv.max(if last.1 { last.0 } else { self.horizon });
            }
        }
        // A crashed neighbor never suspected at all: completeness not yet
        // visible — convergence did not happen within this run.
        for &(q, t) in &self.crashes {
            if t > self.horizon || self.is_correct(q) {
                continue; // a recovered process owes no completeness
            }
            for &i in self.graph.neighbors(q) {
                if self.is_correct(i) && !hist.contains_key(&(i, q)) {
                    conv = self.horizon;
                }
            }
        }
        conv
    }
}

/// Interval-open/close bookkeeping for one process during sanitization.
#[derive(Default)]
struct LifeState {
    next_cut: usize,
    hungry_open: Option<usize>,
    eating: bool,
    inside: bool,
}

fn apply_cut(
    s: &mut LifeState,
    p: ProcessId,
    t: Time,
    extra: &mut Vec<SchedEvent>,
    drop_idx: &mut BTreeSet<usize>,
) {
    if s.eating {
        extra.push(SchedEvent::new(t, p, DiningObs::StoppedEating));
        s.eating = false;
    }
    if s.inside {
        extra.push(SchedEvent::new(t, p, DiningObs::ExitedDoorway));
        s.inside = false;
    }
    if let Some(i) = s.hungry_open.take() {
        // The crash aborted this hungry session before it was scheduled:
        // it neither completed nor starved, so it leaves no trace.
        drop_idx.insert(i);
    }
}

/// Makes the event stream well-formed across crash-recovery and membership
/// boundaries: for each process that crashes and later restarts,
/// eating/doorway intervals open at the crash instant are closed there and
/// a hungry session the crash aborted is removed, and likewise at a
/// membership departure (a leaver's final life ends mid-interval). Without
/// this, interval analyses would see nested or dangling opens and would
/// hold a process accountable for a session it never got to finish.
fn sanitize_interrupted(
    events: Vec<SchedEvent>,
    crashes: &[(ProcessId, Time)],
    recoveries: &[(ProcessId, Time)],
    departures: &[(ProcessId, Time, bool)],
) -> Vec<SchedEvent> {
    if recoveries.is_empty() && departures.is_empty() {
        return events;
    }
    // Interruption instants per process: crash times followed by a restart,
    // plus membership departures (which are always final).
    let mut cuts: BTreeMap<ProcessId, Vec<Time>> = BTreeMap::new();
    for &(p, r) in recoveries {
        let cut = crashes
            .iter()
            .filter(|&&(q, t)| q == p && t <= r)
            .map(|&(_, t)| t)
            .max();
        if let Some(c) = cut {
            cuts.entry(p).or_default().push(c);
        }
    }
    for &(p, t, _) in departures {
        cuts.entry(p).or_default().push(t);
    }
    for v in cuts.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    let mut st: BTreeMap<ProcessId, LifeState> =
        cuts.keys().map(|&p| (p, LifeState::default())).collect();
    let mut extra = Vec::new();
    let mut drop_idx = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let Some(s) = st.get_mut(&e.process) else {
            continue;
        };
        let cl = &cuts[&e.process];
        while s.next_cut < cl.len() && cl[s.next_cut] <= e.time {
            let t = cl[s.next_cut];
            s.next_cut += 1;
            apply_cut(s, e.process, t, &mut extra, &mut drop_idx);
        }
        match e.obs {
            DiningObs::BecameHungry => s.hungry_open = Some(i),
            DiningObs::StartedEating => {
                s.hungry_open = None;
                s.eating = true;
            }
            DiningObs::StoppedEating => s.eating = false,
            DiningObs::EnteredDoorway => s.inside = true,
            DiningObs::ExitedDoorway => s.inside = false,
        }
    }
    for (&p, s) in st.iter_mut() {
        let cl = &cuts[&p];
        while s.next_cut < cl.len() {
            let t = cl[s.next_cut];
            s.next_cut += 1;
            apply_cut(s, p, t, &mut extra, &mut drop_idx);
        }
    }
    let mut out: Vec<SchedEvent> = events
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !drop_idx.contains(i))
        .map(|(_, e)| e)
        .collect();
    out.extend(extra);
    // Stable by time: synthesized closers land after same-instant events.
    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use crate::{OracleSpec, Scenario, Workload};
    use ekbd_graph::{topology, ProcessId};
    use ekbd_sim::{DelayModel, Time};

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn crash_free_ring_run_satisfies_everything() {
        let report = Scenario::new(topology::ring(5))
            .seed(3)
            .workload(Workload {
                sessions: 8,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(50_000))
            .run_algorithm1();
        let progress = report.progress();
        assert!(progress.wait_free(), "starving: {:?}", progress.starving());
        assert_eq!(progress.total_sessions(), 5 * 8);
        assert_eq!(
            report.exclusion().total(),
            0,
            "silent oracle ⇒ no mistakes ever"
        );
        assert!(report.fairness().max_overtakes() <= 2);
        assert!(report.max_channel_high_water <= 4, "paper §7 channel bound");
        assert_eq!(report.detector_convergence(), Time::ZERO);
        assert!(report
            .final_states
            .iter()
            .all(|s| *s == ekbd_dining::DinerState::Thinking));
    }

    #[test]
    fn crash_with_perfect_oracle_keeps_progress() {
        let report = Scenario::new(topology::ring(5))
            .seed(11)
            .perfect_oracle()
            .crash(p(2), Time(200))
            .workload(Workload {
                sessions: 8,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(50_000))
            .run_algorithm1();
        assert!(report.progress().wait_free());
        assert_eq!(
            report.exclusion().total(),
            0,
            "perfect oracle ⇒ no mistakes"
        );
        // Quiescence: finitely many messages to the crashed process.
        let q = report.quiescence();
        assert!(q.total() < 20);
        assert!(q.quiescent_by(report.horizon));
    }

    #[test]
    fn adversarial_oracle_mistakes_stop_after_convergence() {
        let report = Scenario::new(topology::clique(4))
            .seed(7)
            .adversarial_oracle(Time(3_000), 40)
            .workload(Workload {
                sessions: 12,
                think: (1, 20),
                eat: (1, 15),
            })
            .horizon(Time(80_000))
            .run_algorithm1();
        assert!(report.progress().wait_free());
        let conv = report.detector_convergence();
        assert!(conv <= Time(3_000));
        assert_eq!(
            report.exclusion().after(Time(3_000)),
            0,
            "Theorem 1: no mistakes after ◇P₁ converges"
        );
        assert!(
            report.fairness().max_overtakes_after(Time(3_000)) <= 2,
            "Theorem 3: ◇2-BW in the suffix"
        );
    }

    #[test]
    fn same_seed_same_report() {
        let make = || {
            Scenario::new(topology::grid(3, 3))
                .seed(99)
                .adversarial_oracle(Time(1_000), 25)
                .crash(p(4), Time(700))
                .horizon(Time(30_000))
                .run_algorithm1()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.events, b.events);
        assert_eq!(a.suspicions, b.suspicions);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn heartbeat_oracle_runs_and_detects() {
        let hb = ekbd_detector::HeartbeatConfig {
            period: 10,
            initial_timeout: 50,
            timeout_increment: 25,
        };
        let report = Scenario::new(topology::ring(4))
            .seed(5)
            .heartbeat_oracle(hb)
            .delay(DelayModel::Gst {
                gst: Time(400),
                pre_max: 120,
                delta: 6,
            })
            .crash(p(1), Time(600))
            .workload(Workload {
                sessions: 6,
                think: (1, 40),
                eat: (1, 10),
            })
            .horizon(Time(60_000))
            .run_algorithm1();
        assert!(report.progress().wait_free());
        let conv = report.detector_convergence();
        assert!(conv < report.horizon, "heartbeat ◇P₁ must converge");
        assert_eq!(report.exclusion().after(conv), 0);
        // The crashed process is suspected by both ring neighbors.
        let suspected_by: Vec<_> = report
            .suspicions
            .iter()
            .filter(|&&(_, _, t, s)| t == p(1) && s)
            .map(|&(_, o, _, _)| o)
            .collect();
        assert!(suspected_by.contains(&p(0)) && suspected_by.contains(&p(2)));
    }

    #[test]
    fn recovered_process_rejoins_and_eats_again() {
        let report = Scenario::new(topology::ring(5))
            .seed(13)
            .perfect_oracle()
            .crash(p(2), Time(300))
            .recover(p(2), Time(2_000))
            .workload(Workload {
                sessions: 8,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(60_000))
            .run_recoverable();
        assert!(report.is_correct(p(2)), "recovered ⇒ correct again");
        assert_eq!(report.incarnations, vec![0, 0, 1, 0, 0]);
        assert!(
            report.progress().wait_free(),
            "starving: {:?}",
            report.progress().starving()
        );
        let ra = report.readmissions();
        assert_eq!(ra.len(), 1);
        assert!(
            ra[0].first_eat.is_some(),
            "recovered process eats again: {ra:?}"
        );
        assert!(
            matches!(
                ra[0].path,
                Some(ekbd_dining::RestartPath::Blank {
                    reason: ekbd_dining::BlankReason::Disabled
                })
            ),
            "no journal configured ⇒ blank path: {ra:?}"
        );
        let stats = report.recovery.expect("recoverable algorithm keeps stats");
        assert!(stats.resyncs >= 2, "both edges resynced: {stats:?}");
        assert_eq!(
            report.exclusion().total(),
            0,
            "perfect oracle, blank reboot"
        );
    }

    #[test]
    fn corrupted_reboot_and_live_corruption_stabilize() {
        let report = Scenario::new(topology::clique(4))
            .seed(29)
            .perfect_oracle()
            .crash(p(1), Time(400))
            .recover_corrupted(p(1), Time(1_500))
            .corrupt_state(p(3), Time(2_500))
            .workload(Workload {
                sessions: 10,
                think: (1, 25),
                eat: (1, 12),
            })
            .horizon(Time(80_000))
            .run_recoverable();
        assert!(report.progress().wait_free());
        let last = report.last_fault_time().expect("faults were scheduled");
        assert_eq!(last, Time(2_500));
        // After the last fault plus repair slack (a few audit rounds), the
        // schedule is mistake-free and fair again.
        let stab = Time(last.0 + 10 * crate::AUDIT_PERIOD);
        assert_eq!(report.exclusion().after(stab), 0);
        assert!(report.fairness().max_overtakes_after(stab) <= 2);
        assert!(report.readmissions()[0].first_eat.is_some());
    }

    #[test]
    fn recovery_runs_are_deterministic() {
        let make = || {
            Scenario::new(topology::grid(3, 3))
                .seed(5)
                .perfect_oracle()
                .crash(p(4), Time(300))
                .recover_corrupted(p(4), Time(1_200))
                .corrupt_state(p(0), Time(900))
                .horizon(Time(40_000))
                .run_recoverable()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.events, b.events);
        assert_eq!(a.suspicions, b.suspicions);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn joiner_boots_mid_run_syncs_and_eats() {
        let report = Scenario::new(topology::ring(5))
            .seed(17)
            .membership(ekbd_sim::MembershipPlan::new().join(p(2), Time(500)))
            .workload(Workload {
                sessions: 8,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(60_000))
            .run_recoverable();
        assert_eq!(report.incarnations[2], 1, "joiners boot at incarnation 1");
        assert!(
            report.progress().wait_free(),
            "starving: {:?}",
            report.progress().starving()
        );
        assert_eq!(report.exclusion().total(), 0, "churn must not break ◇WX");
        let adm = report.admissions();
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].joined, Time(500));
        assert!(adm[0].first_eat.is_some(), "joiner must eat: {adm:?}");
        assert_eq!(report.membership_tag(p(2)), crate::MembershipTag::Joined);
        assert!(report.is_correct(p(2)), "a joiner that stays is correct");
    }

    #[test]
    fn graceful_leaver_drains_and_survivors_keep_running() {
        let report = Scenario::new(topology::ring(5))
            .seed(23)
            .membership(ekbd_sim::MembershipPlan::new().leave(p(1), Time(700)))
            .workload(Workload {
                sessions: 8,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(60_000))
            .run_recoverable();
        assert_eq!(report.cut_time(p(1)), Some(Time(700)));
        assert!(!report.is_correct(p(1)), "departed ⇒ excused, not correct");
        assert_eq!(report.membership_tag(p(1)), crate::MembershipTag::Departed);
        assert!(
            report.progress().wait_free(),
            "survivors starve: {:?}",
            report.progress().starving()
        );
        assert_eq!(report.exclusion().total(), 0);
    }

    #[test]
    fn crash_stop_departure_cannot_starve_survivors() {
        // p1 leaves without draining; whatever fork it held is reminted by
        // the survivors' audit path after the strike policy.
        let report = Scenario::new(topology::clique(4))
            .seed(31)
            .membership(ekbd_sim::MembershipPlan::new().crash_leave(p(1), Time(600)))
            .workload(Workload {
                sessions: 10,
                think: (1, 25),
                eat: (1, 12),
            })
            .horizon(Time(80_000))
            .run_recoverable();
        assert!(
            report.progress().wait_free(),
            "starving: {:?}",
            report.progress().starving()
        );
        assert_eq!(report.exclusion().total(), 0);
        assert_eq!(report.membership_tag(p(1)), crate::MembershipTag::Departed);
    }

    #[test]
    fn replace_swaps_an_id_without_disturbing_survivors() {
        let report = Scenario::new(topology::ring(6))
            .seed(41)
            .membership(ekbd_sim::MembershipPlan::new().replace(p(1), p(4), Time(800)))
            .workload(Workload {
                sessions: 6,
                think: (1, 30),
                eat: (1, 10),
            })
            .horizon(Time(60_000))
            .run_recoverable();
        assert_eq!(report.membership_tag(p(1)), crate::MembershipTag::Departed);
        assert_eq!(report.membership_tag(p(4)), crate::MembershipTag::Joined);
        assert_eq!(report.incarnations[4], 1);
        assert!(
            report.progress().wait_free(),
            "starving: {:?}",
            report.progress().starving()
        );
        assert_eq!(report.exclusion().total(), 0);
        assert!(report.admissions()[0].first_eat.is_some());
    }

    #[test]
    fn seeded_churn_runs_are_deterministic_and_safe() {
        let make = || {
            Scenario::new(topology::grid(3, 4))
                .seed(7)
                .horizon(Time(40_000))
                .churn(800)
                .workload(Workload {
                    sessions: 6,
                    think: (1, 30),
                    eat: (1, 10),
                })
                .run_recoverable()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.events, b.events);
        assert_eq!(a.suspicions, b.suspicions);
        assert_eq!(a.total_messages, b.total_messages);
        assert!(
            !a.joins.is_empty() && !a.departures.is_empty(),
            "churn plan must move in both directions"
        );
        assert_eq!(a.exclusion().total(), 0, "churn must not break ◇WX");
        let starving = a.progress().starving();
        for q in a.graph.processes() {
            if a.join_time(q).is_none() && a.departure_time(q).is_none() {
                assert!(
                    !starving.contains(&q),
                    "continuously-present {q} starves under churn"
                );
            }
        }
    }

    #[test]
    fn membership_recolors_online_and_keeps_survivor_colors() {
        let with_join = Scenario::new(topology::ring(5))
            .membership(ekbd_sim::MembershipPlan::new().join(p(2), Time(500)));
        // Initially-present nodes keep the colors of the induced subgraph;
        // the joiner takes the least color absent from its neighborhood.
        for q in [0usize, 1, 3, 4] {
            assert!(with_join.colors[q] <= 1, "induced ring-path is 2-colorable");
        }
        assert_ne!(with_join.colors[2], with_join.colors[1]);
        assert_ne!(with_join.colors[2], with_join.colors[3]);
    }

    #[test]
    fn oracle_spec_debug_shapes() {
        // Exercise the enum's surface (cheap coverage of derives).
        let s = format!(
            "{:?}",
            OracleSpec::Adversarial {
                converge_at: Time(5),
                burst: 2
            }
        );
        assert!(s.contains("Adversarial"));
    }
}
