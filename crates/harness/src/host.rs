use crate::detector::AnyDetector;
use ekbd_detector::{DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput};
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningObs};
use ekbd_graph::ProcessId;
use ekbd_link::{
    decode_timer_tag, link_timer_tag, LinkActions, LinkConfig, LinkEndpoint, LinkMsg, LinkStats,
    LINK_TAG_BASE,
};
use ekbd_sim::{Context, Node, NodeEvent};
use rand::Rng;

/// Wire envelope multiplexing dining-layer, link-layer, and detector-layer
/// traffic over one simulated channel per neighbor pair.
#[derive(Clone, Debug)]
pub enum Envelope<M> {
    /// Dining-algorithm message, sent bare (reliable-channel mode).
    Dining(M),
    /// Dining-algorithm message wrapped by the reliable link layer
    /// (sequence numbers + acks + retransmission), used when the host runs
    /// with [`LinkConfig`] over faulty channels. Detector heartbeats are
    /// *not* wrapped: ◇P is loss-tolerant by design (a lost heartbeat is
    /// indistinguishable from a slow one, and the adaptive timeout absorbs
    /// it), and wrapping perpetual monitoring traffic would defeat
    /// link-layer quiescence.
    Link(LinkMsg<M>),
    /// Failure-detector message (heartbeats).
    Detector(DetectorMsg),
}

/// Externally injected workload commands (the environment actions of
/// Algorithm 1: Action 1 and the finite-eating rule behind Action 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostCmd {
    /// Become hungry now (legal only while thinking).
    BecomeHungry,
    /// Finish eating now (legal only while eating).
    StopEating,
    /// Neighbor `peer` joined the system with priority `color`: grow the
    /// conflict edge (dynamic membership). Delivered to the co-present
    /// neighbors of a joiner at its join instant.
    PeerJoined {
        /// The joining neighbor.
        peer: ProcessId,
        /// The joiner's assigned color (its static priority).
        color: u32,
    },
    /// Neighbor `peer` left the system permanently (dynamic membership).
    PeerLeft {
        /// The departed neighbor.
        peer: ProcessId,
        /// Whether the departure drained gracefully. A graceful leave tears
        /// the edge down completely; a crash-stop leave marks it departed
        /// so the audit path can reclaim whatever the peer held.
        graceful: bool,
    },
}

/// Observations emitted by a [`DinerHost`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostObs {
    /// A scheduling-relevant dining transition.
    Sched(DiningObs),
    /// The local detector started suspecting `target`.
    Suspect {
        /// The newly suspected process.
        target: ProcessId,
    },
    /// The local detector stopped suspecting `target`.
    Unsuspect {
        /// The no-longer-suspected process.
        target: ProcessId,
    },
    /// The dining layer sent a message to `to`. Used to check the §7
    /// quiescence claim for exactly the traffic it covers (the oracle's
    /// own heartbeats are perpetual by nature — crash monitoring cannot
    /// quiesce).
    DiningSend {
        /// The destination.
        to: ProcessId,
    },
}

/// Automatic workload driven by the host itself.
///
/// With `sessions > 0` the host becomes hungry `sessions` times, thinking
/// for a uniform `think` delay between sessions and eating for a uniform
/// `eat` duration once scheduled (correct processes always eat finitely,
/// §2). With `sessions == 0` the host only reacts to [`HostCmd`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostWorkload {
    /// Number of auto-generated hungry sessions.
    pub sessions: u32,
    /// Uniform range (inclusive) of thinking delays before each session.
    pub think: (u64, u64),
    /// Uniform range (inclusive) of eating durations.
    pub eat: (u64, u64),
}

impl HostWorkload {
    /// A workload that never gets hungry by itself.
    pub fn manual() -> Self {
        HostWorkload {
            sessions: 0,
            think: (1, 1),
            eat: (1, 1),
        }
    }
}

/// Detector timer tags live below this; host timer tags above. Link-layer
/// retransmission timers live at [`LINK_TAG_BASE`] (`1 << 41`) and above,
/// encoded by [`ekbd_link::link_timer_tag`].
const HOST_TAG_BASE: u64 = 1 << 40;
const EAT_TAG: u64 = HOST_TAG_BASE;
const HUNGER_TAG: u64 = HOST_TAG_BASE + 1;
/// Audit timers are stamped with the incarnation that armed them
/// (`AUDIT_TAG_BASE + incarnation`), so a pre-crash audit chain whose tick
/// survives the crash in the event queue dies silently instead of doubling
/// the audit frequency of the recovered process.
const AUDIT_TAG_BASE: u64 = HOST_TAG_BASE + 2;

/// Default period of the recovery layer's audit-and-repair timer, in
/// virtual time units. Only armed for algorithms with
/// [`supports_recovery`](DiningAlgorithm::supports_recovery); override
/// per host with [`DinerHost::with_audit_period`].
pub const AUDIT_PERIOD: u64 = 50;

/// Degree-derived audit-and-repair period: the default a
/// [`Scenario`](crate::Scenario) uses when the operator does not pick one.
///
/// An audit pass exchanges one probe round with every neighbor, so its
/// useful cadence scales with the densest neighborhood: a high-degree
/// process needs a longer window for all replies to land (the probe
/// round-trip is bounded by twice the max message delay, default 8, per
/// neighbor wave), while auditing a sparse graph more often is nearly
/// free. `10·(δ+3)` gives each neighbor wave a generous round-trip
/// budget plus three waves of slack; the clamp keeps pathological graphs
/// (isolated nodes, hubs with hundreds of edges) inside the regime E15's
/// sensitivity sweep validated. At δ = 2 — every ring, the topology the
/// fixed [`AUDIT_PERIOD`] was tuned on — the formula reproduces exactly
/// the historical constant 50.
pub fn derived_audit_period(max_degree: usize) -> u64 {
    (10 * (max_degree as u64 + 3)).clamp(30, 240)
}

/// A simulated process hosting a dining algorithm and a failure detector.
///
/// The host owns all the plumbing the paper leaves implicit: delivering
/// detector output changes to the dining layer (so oracle-guarded actions
/// re-fire), finite eating, recurring appetite, and the emission of
/// [`HostObs`] for the metrics layer — derived by *diffing* the algorithm's
/// visible state around each call, so no algorithm can misreport itself.
pub struct DinerHost<A: DiningAlgorithm> {
    alg: A,
    det: AnyDetector,
    workload: HostWorkload,
    sessions_left: u32,
    /// Reliable link layer wrapping dining traffic; `None` sends bare
    /// [`Envelope::Dining`] frames (the seed behavior, correct over
    /// reliable channels).
    link: Option<LinkEndpoint<A::Msg>>,
    /// This process's incarnation as last told by the simulator (0 until
    /// the first restart). Stamps the audit timer chain.
    inc: u64,
    /// Audit-and-repair period ([`AUDIT_PERIOD`] unless overridden).
    audit_period: u64,
    /// Pooled detector-effect buffers, reused across events.
    det_out: DetectorOutput,
    /// Host-side mirror of the detector's suspect set, maintained across
    /// events so suspicion diffs need no per-event snapshot of the set.
    suspects_mirror: std::collections::BTreeSet<ProcessId>,
    /// Pooled dining-send buffer, reused across algorithm steps.
    sends_buf: Vec<(ProcessId, A::Msg)>,
}

impl<A: DiningAlgorithm> DinerHost<A> {
    /// Creates a host around `alg` and `det`.
    pub fn new(alg: A, det: AnyDetector, workload: HostWorkload) -> Self {
        let sessions_left = workload.sessions;
        DinerHost {
            alg,
            det,
            workload,
            sessions_left,
            link: None,
            inc: 0,
            audit_period: AUDIT_PERIOD,
            det_out: DetectorOutput::new(),
            suspects_mirror: std::collections::BTreeSet::new(),
            sends_buf: Vec::new(),
        }
    }

    /// Routes all dining traffic through a reliable link layer — required
    /// for correctness whenever the scenario injects channel faults.
    pub fn with_link(mut self, cfg: LinkConfig) -> Self {
        let id = self.alg.id();
        self.link = Some(LinkEndpoint::new(id, cfg));
        self
    }

    /// Overrides the audit-and-repair period (minimum 1 tick). Shorter
    /// periods repair corruption and retry lost rejoins sooner at the cost
    /// of proportionally more audit traffic; E15's sensitivity sub-table
    /// quantifies the trade-off.
    pub fn with_audit_period(mut self, period: u64) -> Self {
        self.audit_period = period.max(1);
        self
    }

    /// The hosted algorithm (for state assertions).
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// The hosted detector.
    pub fn detector(&self) -> &AnyDetector {
        &self.det
    }

    /// The link layer's counters, if the host runs one.
    pub fn link_stats(&self) -> Option<LinkStats> {
        self.link.as_ref().map(|l| l.stats())
    }

    /// Transmits frames and arms timers requested by the link layer, and
    /// feeds released payloads to the dining algorithm in order.
    fn absorb_link_actions(
        &mut self,
        actions: LinkActions<A::Msg>,
        ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>,
    ) {
        for (to, frame) in actions.sends {
            ctx.send(to, Envelope::Link(frame));
        }
        for (peer, delay, epoch) in actions.timers {
            ctx.set_timer(delay, link_timer_tag(peer, epoch));
        }
        for (from, msg) in actions.delivered {
            self.drive(DiningInput::Message { from, msg }, ctx);
        }
    }

    /// Feeds one event to the detector and applies its output: wraps sends,
    /// forwards timers, reports suspicion changes (diffed against the
    /// host's persistent mirror of the suspect set, so the steady state
    /// snapshots nothing), and — if the suspect set changed — lets the
    /// dining layer re-evaluate its oracle-guarded actions.
    fn detector_event(
        &mut self,
        ev: DetectorEvent,
        ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>,
    ) {
        let mut out = std::mem::take(&mut self.det_out);
        out.changed = false;
        self.det.handle(ev, &mut out);
        for (to, msg) in out.sends.drain(..) {
            ctx.send(to, Envelope::Detector(msg));
        }
        for (delay, tag) in out.timers.drain(..) {
            debug_assert!(tag < HOST_TAG_BASE, "detector tag collides with host tags");
            ctx.set_timer(delay, tag);
        }
        let changed = out.changed;
        self.det_out = out;
        if changed {
            let after = self.det.suspect_set();
            let before = std::mem::take(&mut self.suspects_mirror);
            for &q in after.difference(&before) {
                ctx.observe(HostObs::Suspect { target: q });
                // Quiescence (§7 S3): stop retransmitting to the suspect.
                if let Some(link) = self.link.as_mut() {
                    link.on_suspect(q);
                }
            }
            for &q in before.difference(&after) {
                ctx.observe(HostObs::Unsuspect { target: q });
                // False alarm: re-send everything still outstanding so a
                // live neighbor is made whole (wait-freedom).
                if self.link.is_some() {
                    let actions = self.link.as_mut().unwrap().on_unsuspect(q);
                    self.absorb_link_actions(actions, ctx);
                }
            }
            self.suspects_mirror = after;
            self.drive(DiningInput::SuspicionChange, ctx);
        }
    }

    /// Transmits dining-layer sends, via the link layer when present.
    fn send_dining(
        &mut self,
        sends: &mut Vec<(ProcessId, A::Msg)>,
        ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>,
    ) {
        for (to, msg) in sends.drain(..) {
            ctx.observe(HostObs::DiningSend { to });
            match self.link.as_mut() {
                Some(link) => {
                    let actions = link.send(to, msg);
                    debug_assert!(actions.delivered.is_empty(), "send cannot deliver");
                    self.absorb_link_actions(actions, ctx);
                }
                None => ctx.send(to, Envelope::Dining(msg)),
            }
        }
    }

    /// Feeds one input to the dining algorithm, forwards its sends, diffs
    /// its visible state into observations, and manages the eat/think
    /// timers of the workload.
    fn drive(
        &mut self,
        input: DiningInput<A::Msg>,
        ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>,
    ) {
        self.step_alg(ctx, |alg, det, sends| alg.handle(input, det, sends));
    }

    /// Runs one algorithm step `f` (a `handle`, `audit` or
    /// `inject_corruption` call), forwards its sends, and diffs its visible
    /// state into observations.
    fn step_alg(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>,
        f: impl FnOnce(&mut A, &AnyDetector, &mut Vec<(ProcessId, A::Msg)>),
    ) {
        // Journaling algorithms stamp committed records with the commit
        // time; feed them the simulation clock before the step runs.
        self.alg.note_now(ctx.now().0);
        let state_before = self.alg.state();
        let inside_before = self.alg.inside_doorway();
        let mut sends = std::mem::take(&mut self.sends_buf);
        f(&mut self.alg, &self.det, &mut sends);
        self.send_dining(&mut sends, ctx);
        self.sends_buf = sends;
        let state_after = self.alg.state();
        let inside_after = self.alg.inside_doorway();

        // One `handle` call can traverse several phases (e.g. thinking →
        // hungry → doorway → eating when every neighbor is suspected), so
        // decompose the endpoint diff into the full transition sequence.
        debug_assert!(
            !matches!(
                (state_before, state_after),
                (DinerState::Eating, DinerState::Hungry)
                    | (DinerState::Hungry, DinerState::Thinking)
            ),
            "illegal dining transition {state_before} → {state_after}"
        );
        if state_before == DinerState::Thinking && state_after != DinerState::Thinking {
            ctx.observe(HostObs::Sched(DiningObs::BecameHungry));
        }
        if !inside_before && inside_after {
            ctx.observe(HostObs::Sched(DiningObs::EnteredDoorway));
        }
        if state_before != DinerState::Eating && state_after == DinerState::Eating {
            ctx.observe(HostObs::Sched(DiningObs::StartedEating));
            let (lo, hi) = self.workload.eat;
            let dur = ctx.rng().gen_range(lo..=hi.max(lo));
            ctx.set_timer(dur, EAT_TAG);
        }
        if state_before == DinerState::Eating && state_after == DinerState::Thinking {
            ctx.observe(HostObs::Sched(DiningObs::StoppedEating));
            self.schedule_appetite(ctx);
        }
        if inside_before && !inside_after {
            ctx.observe(HostObs::Sched(DiningObs::ExitedDoorway));
        }
    }

    /// Arms the next auto-hunger timer, if sessions remain.
    fn schedule_appetite(&mut self, ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>) {
        if self.sessions_left == 0 {
            return;
        }
        self.sessions_left -= 1;
        let (lo, hi) = self.workload.think;
        let delay = ctx.rng().gen_range(lo..=hi.max(lo));
        ctx.set_timer(delay, HUNGER_TAG);
    }

    /// Arms the periodic audit timer for the current incarnation, for
    /// algorithms that implement the recovery protocol.
    fn arm_audit(&mut self, ctx: &mut Context<'_, Envelope<A::Msg>, HostObs>) {
        if self.alg.supports_recovery() {
            ctx.set_timer(self.audit_period, AUDIT_TAG_BASE + self.inc);
        }
    }
}

impl<A: DiningAlgorithm> Node for DinerHost<A> {
    type Msg = Envelope<A::Msg>;
    type Ext = HostCmd;
    type Obs = HostObs;

    fn handle(
        &mut self,
        ev: NodeEvent<Self::Msg, HostCmd>,
        ctx: &mut Context<'_, Self::Msg, HostObs>,
    ) {
        match ev {
            NodeEvent::Start => {
                self.detector_event(DetectorEvent::Start { now: ctx.now() }, ctx);
                self.schedule_appetite(ctx);
                self.arm_audit(ctx);
            }
            NodeEvent::Timer { tag } if tag < HOST_TAG_BASE => {
                self.detector_event(
                    DetectorEvent::Timer {
                        now: ctx.now(),
                        tag,
                    },
                    ctx,
                );
            }
            NodeEvent::Timer { tag: EAT_TAG } => {
                // Correct processes eat only finitely long (§2).
                if self.alg.state() == DinerState::Eating {
                    self.drive(DiningInput::DoneEating, ctx);
                }
            }
            NodeEvent::Timer { tag: HUNGER_TAG } => {
                if self.alg.state() == DinerState::Thinking {
                    self.drive(DiningInput::Hungry, ctx);
                } else {
                    // Still busy (only possible with interleaved manual
                    // commands): retry shortly rather than drop the session.
                    ctx.set_timer(1, HUNGER_TAG);
                }
            }
            NodeEvent::Timer { tag } if tag >= LINK_TAG_BASE => {
                let (peer, epoch) = decode_timer_tag(tag);
                if let Some(link) = self.link.as_mut() {
                    let actions = link.on_timer(peer, epoch);
                    self.absorb_link_actions(actions, ctx);
                }
            }
            NodeEvent::Timer { tag } if tag >= AUDIT_TAG_BASE => {
                // A tick from a previous incarnation's chain is stale noise;
                // only the current chain audits and re-arms.
                if tag == AUDIT_TAG_BASE + self.inc {
                    self.step_alg(ctx, |alg, det, sends| alg.audit(det, sends));
                    ctx.set_timer(self.audit_period, tag);
                }
            }
            NodeEvent::Timer { tag } => debug_assert!(false, "unknown timer tag {tag}"),
            NodeEvent::Message {
                from,
                msg: Envelope::Link(frame),
            } => {
                debug_assert!(self.link.is_some(), "link frame without a link layer");
                if let Some(link) = self.link.as_mut() {
                    let actions = link.on_message(from, frame);
                    self.absorb_link_actions(actions, ctx);
                }
            }
            NodeEvent::Message {
                from,
                msg: Envelope::Detector(m),
            } => {
                self.detector_event(
                    DetectorEvent::Message {
                        now: ctx.now(),
                        from,
                        msg: m,
                    },
                    ctx,
                );
            }
            NodeEvent::Message {
                from,
                msg: Envelope::Dining(m),
            } => {
                self.drive(DiningInput::Message { from, msg: m }, ctx);
            }
            NodeEvent::External(HostCmd::BecomeHungry) => {
                if self.alg.state() == DinerState::Thinking {
                    self.drive(DiningInput::Hungry, ctx);
                }
            }
            NodeEvent::External(HostCmd::StopEating) => {
                if self.alg.state() == DinerState::Eating {
                    self.drive(DiningInput::DoneEating, ctx);
                }
            }
            NodeEvent::External(HostCmd::PeerJoined { peer, color }) => {
                debug_assert!(
                    self.alg.supports_membership(),
                    "membership notice for a fixed-graph algorithm"
                );
                self.step_alg(ctx, |alg, det, sends| alg.add_peer(peer, color, det, sends));
            }
            NodeEvent::External(HostCmd::PeerLeft { peer, graceful }) => {
                debug_assert!(
                    self.alg.supports_membership(),
                    "membership notice for a fixed-graph algorithm"
                );
                self.step_alg(ctx, |alg, det, sends| {
                    if graceful {
                        alg.remove_peer(peer, det, sends);
                    } else {
                        alg.peer_departed(peer, det, sends);
                    }
                });
            }
            NodeEvent::Recover {
                incarnation,
                corruption,
            } => {
                debug_assert!(
                    self.alg.supports_recovery(),
                    "recovery scheduled for a crash-stop algorithm"
                );
                self.inc = incarnation;
                // Order matters: the link layer resets its sequence state
                // first so the rejoin handshake below rides clean channels,
                // then the algorithm rebuilds itself, then the detector
                // opens a new epoch and refutes the neighbors' suspicions
                // of the pre-crash life.
                if let Some(link) = self.link.as_mut() {
                    link.on_restart(incarnation);
                }
                let mut sends = std::mem::take(&mut self.sends_buf);
                self.alg.note_now(ctx.now().0);
                self.alg
                    .restart(incarnation, corruption, &self.det, &mut sends);
                self.send_dining(&mut sends, ctx);
                self.sends_buf = sends;
                self.detector_event(
                    DetectorEvent::Recovered {
                        now: ctx.now(),
                        epoch: incarnation,
                    },
                    ctx,
                );
                // The new life gets a fresh workload allocation and its own
                // incarnation-stamped audit chain.
                self.sessions_left = self.workload.sessions;
                self.schedule_appetite(ctx);
                self.arm_audit(ctx);
            }
            NodeEvent::Corrupt { entropy } => {
                self.step_alg(ctx, |alg, det, sends| {
                    alg.inject_corruption(entropy, det, sends)
                });
            }
            NodeEvent::Join { incarnation } => {
                debug_assert!(
                    self.alg.supports_membership(),
                    "join scheduled for a fixed-graph algorithm"
                );
                self.inc = incarnation;
                // Same ordering as a crash-recovery restart: clean link
                // channels first, then the algorithm introduces itself via
                // the rejoin handshake, then the detector boots (its first
                // life — a joiner has no pre-crash suspicions to refute).
                if let Some(link) = self.link.as_mut() {
                    link.on_restart(incarnation);
                }
                let mut sends = std::mem::take(&mut self.sends_buf);
                self.alg.note_now(ctx.now().0);
                self.alg.join(incarnation, &self.det, &mut sends);
                self.send_dining(&mut sends, ctx);
                self.sends_buf = sends;
                self.detector_event(DetectorEvent::Start { now: ctx.now() }, ctx);
                self.sessions_left = self.workload.sessions;
                self.schedule_appetite(ctx);
                self.arm_audit(ctx);
            }
            NodeEvent::Leave => {
                // The last event this node will ever handle: discharge held
                // resources so no survivor starves waiting on us. No timers
                // are re-armed — the simulator delivers nothing after this.
                self.step_alg(ctx, |alg, _det, sends| alg.retire(sends));
            }
        }
    }
}
