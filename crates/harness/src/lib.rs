//! Scenario runner: wires a dining algorithm, a failure detector, the
//! discrete-event simulator, and the metrics checkers into one declarative
//! experiment.
//!
//! The moving parts:
//!
//! * [`DinerHost`] — a [`Node`](ekbd_sim::Node) hosting one
//!   [`DiningAlgorithm`] next to one [`AnyDetector`], multiplexing their
//!   traffic, driving the workload (think → hungry → eat → think cycles),
//!   and emitting observations for the metrics layer;
//! * [`Scenario`] — topology + coloring + seed + delay model + oracle +
//!   workload + crash schedule + horizon, with a builder API;
//! * [`RunReport`] — everything measured in a run, with accessors producing
//!   the `ekbd-metrics` reports for each of the paper's claims.
//!
//! # Example
//!
//! ```
//! use ekbd_harness::{Scenario, Workload};
//! use ekbd_graph::topology;
//! use ekbd_sim::Time;
//!
//! // Five diners on a ring, one crash, adversarial oracle until t=2000.
//! let report = Scenario::new(topology::ring(5))
//!     .seed(42)
//!     .adversarial_oracle(Time(2_000), 50)
//!     .workload(Workload { sessions: 10, think: (5, 50), eat: (5, 20) })
//!     .crash(ekbd_graph::ProcessId(2), Time(500))
//!     .horizon(Time(60_000))
//!     .run_algorithm1();
//!
//! // Theorem 2 (wait-freedom): no correct process starves.
//! assert!(report.progress().wait_free());
//! // Theorem 1 (◇WX): no mistakes after the detector converged.
//! let convergence = report.detector_convergence();
//! assert_eq!(report.exclusion().after(convergence), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod chaos;
mod detector;
mod host;
mod live;
mod report;
mod scenario;
mod streaming;

pub use campaign::{Campaign, CampaignAlgorithm, CampaignJob, CampaignReport, CampaignRun};
pub use chaos::{
    emit_repro_artifact, reproduces, run_chaos, shrink_failing, ChaosOutcome, CHAOS_WORKLOAD,
};
pub use detector::AnyDetector;
pub use host::{
    derived_audit_period, DinerHost, Envelope, HostCmd, HostObs, HostWorkload, AUDIT_PERIOD,
};
pub use live::LiveRun;
pub use report::{Admission, MembershipTag, Readmission, RunReport};
pub use scenario::{OracleSpec, Scenario, Workload};
pub use streaming::StreamingRunReport;
