//! Sender-side channel fault injection for the threaded runtime.
//!
//! A lighter mirror of the simulator's [`ekbd_sim::FaultPlan`]: crossbeam
//! channels deliver reliably and in order, so every injectable fault is
//! decided at the sender — drop the frame (loss), send it twice
//! (duplication), or hold it back one slot so the next frame to the same
//! destination overtakes it (reorder). Partitions stay simulator-only;
//! the threaded runtime exists to demonstrate runtime-independence, not
//! to re-measure the experiments.
//!
//! Fault decisions are drawn from a per-process seeded stream, so the
//! *decisions* are reproducible even though thread interleaving is not.

use crossbeam_channel::Sender;
use ekbd_graph::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Decorrelates the fault stream from any other use of the same seed
/// (the same constant the simulator uses for its fault stream).
const FAULT_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Uniform channel faults applied to every payload frame a process sends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelFaults {
    /// Probability a frame is dropped instead of sent.
    pub loss: f64,
    /// Probability a sent frame is transmitted twice.
    pub dup: f64,
    /// Probability a sent frame is held back and overtaken by the next
    /// frame to the same destination (pairwise swap; like loss, only
    /// safe under the link layer's retransmission).
    pub reorder: f64,
    /// Seed of the per-process fault streams.
    pub seed: u64,
}

impl Default for ChannelFaults {
    fn default() -> Self {
        ChannelFaults {
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            seed: 0,
        }
    }
}

impl ChannelFaults {
    /// Loss-only faults.
    pub fn lossy(loss: f64, seed: u64) -> Self {
        ChannelFaults {
            loss,
            seed,
            ..ChannelFaults::default()
        }
    }

    /// Sets the duplication probability.
    pub fn duplication(mut self, dup: f64) -> Self {
        self.dup = dup;
        self
    }

    /// Sets the reorder probability.
    pub fn reorder(mut self, reorder: f64) -> Self {
        self.reorder = reorder;
        self
    }

    /// Whether this configuration faults nothing (the default).
    pub fn is_inert(&self) -> bool {
        self.loss <= 0.0 && self.dup <= 0.0 && self.reorder <= 0.0
    }
}

/// Deterministic entropy for process-state faults (restart corruption and
/// live bit flips): the threaded mirror of the simulator's per-event fault
/// entropy, with an explicit `nonce` (incarnation or injection counter)
/// standing in for virtual time, which the threaded runtime does not have.
pub fn state_entropy(seed: u64, p: ProcessId, nonce: u64) -> u64 {
    let mut z = seed
        ^ (p.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ nonce.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A process's outgoing channels, wrapped with fault injection.
///
/// Control traffic (hungry/crash/shutdown commands) bypasses the faults
/// via [`send_reliable`](Self::send_reliable); payload traffic (dining,
/// link, detector frames) goes through [`send`](Self::send), which rolls
/// the loss and duplication dice per frame.
pub(crate) struct LossyLinks<T: Clone> {
    txs: HashMap<ProcessId, Sender<T>>,
    faults: ChannelFaults,
    rng: StdRng,
    /// One held-back frame per destination: a frame stashed here is
    /// emitted *after* the next frame to the same destination, swapping
    /// the pair's order.
    held: HashMap<ProcessId, T>,
}

impl<T: Clone> LossyLinks<T> {
    /// Wraps `txs` for the process at `index` in the system.
    pub fn new(txs: HashMap<ProcessId, Sender<T>>, faults: ChannelFaults, index: usize) -> Self {
        let stream = faults.seed ^ FAULT_STREAM_SALT.wrapping_mul(index as u64 + 1);
        LossyLinks {
            txs,
            faults,
            rng: StdRng::seed_from_u64(stream),
            held: HashMap::new(),
        }
    }

    /// Sends `msg` to `to`, subject to loss, duplication, and pairwise
    /// reordering. A send to a crashed (exited) neighbor fails silently —
    /// exactly the crash model. A held-back frame with no successor is
    /// never flushed, which is indistinguishable from loss and equally
    /// covered by the link layer's retransmission.
    pub fn send(&mut self, to: ProcessId, msg: T) {
        if self.faults.loss > 0.0 && self.rng.gen_bool(self.faults.loss.clamp(0.0, 1.0)) {
            return;
        }
        let dup = self.faults.dup > 0.0 && self.rng.gen_bool(self.faults.dup.clamp(0.0, 1.0));
        let hold = self.faults.reorder > 0.0
            && !self.held.contains_key(&to)
            && self.rng.gen_bool(self.faults.reorder.clamp(0.0, 1.0));
        if hold {
            self.held.insert(to, msg);
            return;
        }
        let overtaken = self.held.remove(&to);
        if let Some(tx) = self.txs.get(&to) {
            let _ = tx.send(msg.clone());
            if dup {
                let _ = tx.send(msg);
            }
            if let Some(earlier) = overtaken {
                let _ = tx.send(earlier);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    fn links(faults: ChannelFaults) -> (LossyLinks<u32>, crossbeam_channel::Receiver<u32>) {
        let (tx, rx) = unbounded();
        let txs = [(ProcessId(1), tx)].into_iter().collect();
        (LossyLinks::new(txs, faults, 0), rx)
    }

    #[test]
    fn default_is_inert_and_delivers_everything_once() {
        assert!(ChannelFaults::default().is_inert());
        let (mut l, rx) = links(ChannelFaults::default());
        for i in 0..100 {
            l.send(ProcessId(1), i);
        }
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn loss_drops_and_dup_doubles() {
        let (mut l, rx) = links(ChannelFaults::lossy(0.5, 42).duplication(0.5));
        for i in 0..200 {
            l.send(ProcessId(1), i);
        }
        let got: Vec<u32> = rx.try_iter().collect();
        assert!(got.len() < 200, "half the frames should be lost");
        let dups = got.len() - got.iter().collect::<std::collections::BTreeSet<_>>().len();
        assert!(dups > 0, "some frames should arrive twice");
    }

    #[test]
    fn state_entropy_is_deterministic_and_spread() {
        let a = state_entropy(1, ProcessId(0), 1);
        assert_eq!(a, state_entropy(1, ProcessId(0), 1));
        assert_ne!(a, state_entropy(2, ProcessId(0), 1));
        assert_ne!(a, state_entropy(1, ProcessId(1), 1));
        assert_ne!(a, state_entropy(1, ProcessId(0), 2));
    }

    #[test]
    fn fault_decisions_are_seed_deterministic() {
        let run = |seed| {
            let (mut l, rx) = links(ChannelFaults::lossy(0.3, seed).duplication(0.2));
            for i in 0..100 {
                l.send(ProcessId(1), i);
            }
            rx.try_iter().collect::<Vec<u32>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn certain_reorder_swaps_adjacent_pairs() {
        assert!(!ChannelFaults::default().reorder(0.5).is_inert());
        let (mut l, rx) = links(ChannelFaults::default().reorder(1.0));
        for i in 0..6 {
            l.send(ProcessId(1), i);
        }
        // Every frame is held until the next one overtakes it.
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 0, 3, 2, 5, 4]);
    }

    #[test]
    fn reorder_decisions_are_seed_deterministic() {
        let run = |seed| {
            let (mut l, rx) = links(
                ChannelFaults::lossy(0.2, seed)
                    .duplication(0.1)
                    .reorder(0.4),
            );
            for i in 0..200 {
                l.send(ProcessId(1), i);
            }
            rx.try_iter().collect::<Vec<u32>>()
        };
        let once = run(11);
        assert_eq!(once, run(11));
        assert_ne!(once, run(12));
        // Some pair actually arrived out of order.
        assert!(
            once.windows(2).any(|w| w[0] > w[1]),
            "reorder at p=0.4 over 200 frames must swap at least one pair"
        );
    }
}
