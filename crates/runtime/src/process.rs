use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use ekbd_detector::{DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, HeartbeatDetector};
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg, DiningObs};
use ekbd_graph::ProcessId;
use ekbd_metrics::SchedEvent;
use ekbd_sim::Time;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Messages delivered to a process thread.
pub(crate) enum ThreadMsg {
    /// Dining-layer traffic.
    Dining(ProcessId, DiningMsg),
    /// Detector-layer traffic.
    Detector(ProcessId, DetectorMsg),
    /// Workload: become hungry.
    Hungry,
    /// Fault injection: crash now (the thread exits without cleanup).
    Crash,
    /// Orderly end of the experiment.
    Shutdown,
}

pub(crate) struct ProcessThread<A: DiningAlgorithm<Msg = DiningMsg>> {
    pub id: ProcessId,
    pub alg: A,
    pub det: HeartbeatDetector,
    pub rx: Receiver<ThreadMsg>,
    pub txs: HashMap<ProcessId, Sender<ThreadMsg>>,
    pub epoch: Instant,
    pub events: Arc<Mutex<Vec<SchedEvent>>>,
    /// Fixed eating duration in milliseconds.
    pub eat_ms: u64,
}

impl<A: DiningAlgorithm<Msg = DiningMsg>> ProcessThread<A> {
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_millis() as u64)
    }

    fn record(&self, obs: DiningObs) {
        let e = SchedEvent::new(self.now(), self.id, obs);
        self.events.lock().push(e);
    }

    fn apply_detector_output(&mut self, out: DetectorOutput, timers: &mut Vec<(Instant, u64)>) {
        for (to, msg) in out.sends {
            // A send to a crashed (exited) neighbor fails; that is exactly
            // the crash model — ignore the error.
            if let Some(tx) = self.txs.get(&to) {
                let _ = tx.send(ThreadMsg::Detector(self.id, msg));
            }
        }
        for (delay_ms, tag) in out.timers {
            timers.push((
                Instant::now() + std::time::Duration::from_millis(delay_ms),
                tag,
            ));
        }
        if out.changed {
            self.drive(DiningInput::SuspicionChange, timers);
        }
    }

    /// Feeds the dining algorithm, mirroring the simulator host's diffing.
    fn drive(&mut self, input: DiningInput<DiningMsg>, timers: &mut Vec<(Instant, u64)>) {
        let before = self.alg.state();
        let mut sends = Vec::new();
        self.alg.handle(input, &self.det, &mut sends);
        for (to, msg) in sends {
            if let Some(tx) = self.txs.get(&to) {
                let _ = tx.send(ThreadMsg::Dining(self.id, msg));
            }
        }
        let after = self.alg.state();
        if before == DinerState::Thinking && after != DinerState::Thinking {
            self.record(DiningObs::BecameHungry);
        }
        if before != DinerState::Eating && after == DinerState::Eating {
            self.record(DiningObs::StartedEating);
            timers.push((
                Instant::now() + std::time::Duration::from_millis(self.eat_ms),
                EAT_TAG,
            ));
        }
        if before == DinerState::Eating && after == DinerState::Thinking {
            self.record(DiningObs::StoppedEating);
        }
    }

    /// The thread body: an event loop over channel messages and timer
    /// deadlines until shutdown or crash.
    pub fn run(mut self) {
        let mut timers: Vec<(Instant, u64)> = Vec::new();
        let mut out = DetectorOutput::new();
        self.det
            .handle(DetectorEvent::Start { now: self.now() }, &mut out);
        self.apply_detector_output(out, &mut timers);

        loop {
            // Fire every due timer.
            let now_i = Instant::now();
            let mut due: Vec<u64> = Vec::new();
            timers.retain(|&(at, tag)| {
                if at <= now_i {
                    due.push(tag);
                    false
                } else {
                    true
                }
            });
            for tag in due {
                if tag == EAT_TAG {
                    if self.alg.state() == DinerState::Eating {
                        self.drive(DiningInput::DoneEating, &mut timers);
                    }
                } else {
                    let mut out = DetectorOutput::new();
                    let now = self.now();
                    self.det.handle(DetectorEvent::Timer { now, tag }, &mut out);
                    self.apply_detector_output(out, &mut timers);
                }
            }

            let deadline = timers
                .iter()
                .map(|&(at, _)| at)
                .min()
                .unwrap_or_else(|| Instant::now() + std::time::Duration::from_millis(50));
            match self.rx.recv_deadline(deadline) {
                Ok(ThreadMsg::Dining(from, msg)) => {
                    self.drive(DiningInput::Message { from, msg }, &mut timers);
                }
                Ok(ThreadMsg::Detector(from, msg)) => {
                    let mut out = DetectorOutput::new();
                    let now = self.now();
                    self.det
                        .handle(DetectorEvent::Message { now, from, msg }, &mut out);
                    self.apply_detector_output(out, &mut timers);
                }
                Ok(ThreadMsg::Hungry) => {
                    if self.alg.state() == DinerState::Thinking {
                        self.drive(DiningInput::Hungry, &mut timers);
                    }
                }
                Ok(ThreadMsg::Crash) | Ok(ThreadMsg::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// Tag for the host-level eating timer; the heartbeat detector uses tag 1,
/// so any value ≥ 2 is free.
const EAT_TAG: u64 = u64::MAX;
