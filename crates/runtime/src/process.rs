use crate::faults::LossyLinks;
use crossbeam_channel::{Receiver, RecvTimeoutError};
use ekbd_detector::{
    DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, HeartbeatDetector,
};
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningMsg, DiningObs};
use ekbd_graph::ProcessId;
use ekbd_link::{
    decode_timer_tag, link_timer_tag, LinkActions, LinkEndpoint, LinkMsg, LINK_TAG_BASE,
};
use ekbd_metrics::{LinkSummary, SchedEvent};
use ekbd_sim::Time;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Messages delivered to a process thread.
#[derive(Clone)]
pub(crate) enum ThreadMsg {
    /// Dining-layer traffic, sent bare (reliable-channel mode).
    Dining(ProcessId, DiningMsg),
    /// Dining-layer traffic wrapped by the reliable link layer. As on the
    /// simulator, detector heartbeats are *not* wrapped: ◇P is
    /// loss-tolerant by design, and wrapping perpetual monitoring traffic
    /// would defeat link-layer quiescence.
    Link(ProcessId, LinkMsg<DiningMsg>),
    /// Detector-layer traffic.
    Detector(ProcessId, DetectorMsg),
    /// Workload: become hungry.
    Hungry,
    /// Fault injection: crash now (the thread exits without cleanup).
    Crash,
    /// Orderly end of the experiment.
    Shutdown,
}

pub(crate) struct ProcessThread<A: DiningAlgorithm<Msg = DiningMsg>> {
    pub id: ProcessId,
    pub alg: A,
    pub det: HeartbeatDetector,
    pub rx: Receiver<ThreadMsg>,
    pub links: LossyLinks<ThreadMsg>,
    /// Reliable link layer wrapping dining traffic; `None` sends bare
    /// `ThreadMsg::Dining` frames (correct over un-faulted channels).
    pub link: Option<LinkEndpoint<DiningMsg>>,
    /// Last suspect set seen, for diffing into link pause/resume calls.
    pub suspects: BTreeSet<ProcessId>,
    pub epoch: Instant,
    pub events: Arc<Mutex<Vec<SchedEvent>>>,
    /// System-wide link counters, folded into at thread exit.
    pub link_stats: Arc<Mutex<LinkSummary>>,
    /// Fixed eating duration in milliseconds.
    pub eat_ms: u64,
}

impl<A: DiningAlgorithm<Msg = DiningMsg>> ProcessThread<A> {
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_millis() as u64)
    }

    fn record(&self, obs: DiningObs) {
        let e = SchedEvent::new(self.now(), self.id, obs);
        self.events.lock().push(e);
    }

    /// Transmits frames and arms timers requested by the link layer, and
    /// feeds released payloads to the dining algorithm in order.
    fn absorb_link_actions(
        &mut self,
        actions: LinkActions<DiningMsg>,
        timers: &mut Vec<(Instant, u64)>,
    ) {
        for (to, frame) in actions.sends {
            self.links.send(to, ThreadMsg::Link(self.id, frame));
        }
        for (peer, delay_ms, epoch) in actions.timers {
            timers.push((
                Instant::now() + std::time::Duration::from_millis(delay_ms),
                link_timer_tag(peer, epoch),
            ));
        }
        for (from, msg) in actions.delivered {
            self.drive(DiningInput::Message { from, msg }, timers);
        }
    }

    fn apply_detector_output(&mut self, out: DetectorOutput, timers: &mut Vec<(Instant, u64)>) {
        for (to, msg) in out.sends {
            // A send to a crashed (exited) neighbor fails; that is exactly
            // the crash model — ignore the error.
            self.links.send(to, ThreadMsg::Detector(self.id, msg));
        }
        for (delay_ms, tag) in out.timers {
            timers.push((
                Instant::now() + std::time::Duration::from_millis(delay_ms),
                tag,
            ));
        }
        if out.changed {
            let now_suspects = self.det.suspect_set();
            if let Some(link) = self.link.as_mut() {
                for &q in now_suspects.difference(&self.suspects) {
                    link.on_suspect(q);
                }
                let resumed: Vec<LinkActions<DiningMsg>> = self
                    .suspects
                    .difference(&now_suspects)
                    .map(|&q| link.on_unsuspect(q))
                    .collect();
                self.suspects = now_suspects;
                for actions in resumed {
                    self.absorb_link_actions(actions, timers);
                }
            } else {
                self.suspects = now_suspects;
            }
            self.drive(DiningInput::SuspicionChange, timers);
        }
    }

    /// Feeds the dining algorithm, mirroring the simulator host's diffing.
    fn drive(&mut self, input: DiningInput<DiningMsg>, timers: &mut Vec<(Instant, u64)>) {
        let before = self.alg.state();
        let mut sends = Vec::new();
        self.alg.handle(input, &self.det, &mut sends);
        for (to, msg) in sends {
            match self.link.as_mut() {
                Some(link) => {
                    let actions = link.send(to, msg);
                    debug_assert!(actions.delivered.is_empty());
                    self.absorb_link_actions(actions, timers);
                }
                None => self.links.send(to, ThreadMsg::Dining(self.id, msg)),
            }
        }
        let after = self.alg.state();
        if before == DinerState::Thinking && after != DinerState::Thinking {
            self.record(DiningObs::BecameHungry);
        }
        if before != DinerState::Eating && after == DinerState::Eating {
            self.record(DiningObs::StartedEating);
            timers.push((
                Instant::now() + std::time::Duration::from_millis(self.eat_ms),
                EAT_TAG,
            ));
        }
        if before == DinerState::Eating && after == DinerState::Thinking {
            self.record(DiningObs::StoppedEating);
        }
    }

    /// The thread body: runs the event loop, then folds this process's
    /// link counters into the system-wide summary.
    pub fn run(mut self) {
        self.event_loop();
        if let Some(link) = &self.link {
            let s = link.stats();
            self.link_stats.lock().absorb(
                s.payloads_sent,
                s.data_sent,
                s.retransmissions,
                s.acks_sent,
                s.duplicates_suppressed,
                s.out_of_order_buffered,
                s.delivered,
                s.recoveries,
                s.max_unacked,
            );
        }
    }

    /// An event loop over channel messages and timer deadlines until
    /// shutdown or crash.
    fn event_loop(&mut self) {
        let mut timers: Vec<(Instant, u64)> = Vec::new();
        let mut out = DetectorOutput::new();
        self.det
            .handle(DetectorEvent::Start { now: self.now() }, &mut out);
        self.apply_detector_output(out, &mut timers);

        loop {
            // Fire every due timer.
            let now_i = Instant::now();
            let mut due: Vec<u64> = Vec::new();
            timers.retain(|&(at, tag)| {
                if at <= now_i {
                    due.push(tag);
                    false
                } else {
                    true
                }
            });
            for tag in due {
                if tag == EAT_TAG {
                    if self.alg.state() == DinerState::Eating {
                        self.drive(DiningInput::DoneEating, &mut timers);
                    }
                } else if tag >= LINK_TAG_BASE {
                    let (peer, epoch) = decode_timer_tag(tag);
                    if let Some(link) = self.link.as_mut() {
                        let actions = link.on_timer(peer, epoch);
                        self.absorb_link_actions(actions, &mut timers);
                    }
                } else {
                    let mut out = DetectorOutput::new();
                    let now = self.now();
                    self.det.handle(DetectorEvent::Timer { now, tag }, &mut out);
                    self.apply_detector_output(out, &mut timers);
                }
            }

            let deadline = timers
                .iter()
                .map(|&(at, _)| at)
                .min()
                .unwrap_or_else(|| Instant::now() + std::time::Duration::from_millis(50));
            match self.rx.recv_deadline(deadline) {
                Ok(ThreadMsg::Dining(from, msg)) => {
                    self.drive(DiningInput::Message { from, msg }, &mut timers);
                }
                Ok(ThreadMsg::Link(from, frame)) => {
                    if let Some(link) = self.link.as_mut() {
                        let actions = link.on_message(from, frame);
                        self.absorb_link_actions(actions, &mut timers);
                    }
                }
                Ok(ThreadMsg::Detector(from, msg)) => {
                    let mut out = DetectorOutput::new();
                    let now = self.now();
                    self.det
                        .handle(DetectorEvent::Message { now, from, msg }, &mut out);
                    self.apply_detector_output(out, &mut timers);
                }
                Ok(ThreadMsg::Hungry) => {
                    if self.alg.state() == DinerState::Thinking {
                        self.drive(DiningInput::Hungry, &mut timers);
                    }
                }
                Ok(ThreadMsg::Crash) | Ok(ThreadMsg::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// Tag for the host-level eating timer; the heartbeat detector uses tag 1
/// and link timers sit in `[LINK_TAG_BASE, u64::MAX)`, so the maximum is
/// free (checked before the link range in the dispatch above).
const EAT_TAG: u64 = u64::MAX;
