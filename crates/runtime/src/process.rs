use crate::faults::{state_entropy, LossyLinks};
use crate::system::RestartNotice;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use ekbd_detector::{
    DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, HeartbeatDetector,
};
use ekbd_dining::{DinerState, DiningAlgorithm, DiningInput, DiningObs};
use ekbd_graph::ProcessId;
use ekbd_link::{
    decode_timer_tag, link_timer_tag, LinkActions, LinkEndpoint, LinkMsg, LINK_TAG_BASE,
};
use ekbd_metrics::{LinkSummary, SchedEvent};
use ekbd_sim::Time;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Messages delivered to a process thread.
#[derive(Clone)]
pub(crate) enum ThreadMsg<M> {
    /// Dining-layer traffic, sent bare (reliable-channel mode).
    Dining(ProcessId, M),
    /// Dining-layer traffic wrapped by the reliable link layer. As on the
    /// simulator, detector heartbeats are *not* wrapped: ◇P is
    /// loss-tolerant by design, and wrapping perpetual monitoring traffic
    /// would defeat link-layer quiescence.
    Link(ProcessId, LinkMsg<M>),
    /// Detector-layer traffic.
    Detector(ProcessId, DetectorMsg),
    /// Workload: become hungry.
    Hungry,
    /// Fault injection: crash now. Crash-stop algorithms exit the thread;
    /// recoverable algorithms park and drop all traffic until `Recover`.
    Crash,
    /// Fault injection: restart a crashed recoverable process, blank or
    /// (when `corrupt`) with deterministically scrambled state.
    Recover {
        /// Reboot with adversarially corrupted dining state.
        corrupt: bool,
    },
    /// Fault injection: flip state bits of this (live) process.
    Corrupt {
        /// Seeded entropy word for the corruption.
        entropy: u64,
    },
    /// Membership: this (absent) process joins the system now with a
    /// fresh incarnation. Ignored unless the process is absent.
    Join,
    /// Membership: this process leaves the system permanently. A graceful
    /// leaver drains first (discharging held forks and deferred acks); a
    /// crash-stop leaver just parks, leaving reclamation to the
    /// survivors' audit.
    Leave {
        /// Drain before departing.
        graceful: bool,
    },
    /// Membership: neighbor `peer` (with priority `color`) joined — grow
    /// the conflict edge with canonical fork placement.
    PeerJoined {
        /// The joining neighbor.
        peer: ProcessId,
        /// Its (δ+1)-recoloring priority.
        color: u32,
    },
    /// Membership: neighbor `peer` left — tear the edge down (graceful)
    /// or mark it departed for audit reclamation (crash-stop).
    PeerLeft {
        /// The departing neighbor.
        peer: ProcessId,
        /// Whether it drained before leaving.
        graceful: bool,
    },
    /// Orderly end of the experiment.
    Shutdown,
}

pub(crate) struct ProcessThread<A: DiningAlgorithm> {
    pub id: ProcessId,
    pub alg: A,
    pub det: HeartbeatDetector,
    pub rx: Receiver<ThreadMsg<A::Msg>>,
    pub links: LossyLinks<ThreadMsg<A::Msg>>,
    /// Reliable link layer wrapping dining traffic; `None` sends bare
    /// `ThreadMsg::Dining` frames (correct over un-faulted channels).
    pub link: Option<LinkEndpoint<A::Msg>>,
    /// Last suspect set seen, for diffing into link pause/resume calls.
    pub suspects: BTreeSet<ProcessId>,
    pub epoch: Instant,
    pub events: Arc<Mutex<Vec<SchedEvent>>>,
    /// Live event taps (see [`ThreadedDining::tap_events`]); a tap whose
    /// receiver was dropped is pruned on the next event.
    ///
    /// [`ThreadedDining::tap_events`]: crate::ThreadedDining::tap_events
    pub tap: Arc<Mutex<Vec<Sender<SchedEvent>>>>,
    /// Shared restart-notice log (see
    /// [`ThreadedDining::restart_paths`]).
    ///
    /// [`ThreadedDining::restart_paths`]: crate::ThreadedDining::restart_paths
    pub restart_log: Arc<Mutex<Vec<RestartNotice>>>,
    /// System-wide link counters, folded into at thread exit.
    pub link_stats: Arc<Mutex<LinkSummary>>,
    /// Fixed eating duration in milliseconds.
    pub eat_ms: u64,
    /// Period of the recovery audit timer in milliseconds (only armed for
    /// algorithms with `supports_recovery`).
    pub audit_ms: u64,
    /// Seed of the state-fault entropy stream (restart corruption).
    pub entropy_seed: u64,
    /// Crashed-but-recoverable: parked, dropping all traffic.
    pub crashed: bool,
    /// Not (or no longer) a member: parked, dropping all traffic, until a
    /// `Join` boots it (initially-absent spawn) or forever (departed).
    pub absent: bool,
    /// Restart counter — the "one counter in stable storage".
    pub inc: u64,
}

impl<A: DiningAlgorithm> ProcessThread<A> {
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_millis() as u64)
    }

    fn record(&self, obs: DiningObs) {
        let e = SchedEvent::new(self.now(), self.id, obs);
        self.events.lock().push(e);
        self.tap.lock().retain(|tx| tx.send(e).is_ok());
    }

    /// Transmits frames and arms timers requested by the link layer, and
    /// feeds released payloads to the dining algorithm in order.
    fn absorb_link_actions(
        &mut self,
        actions: LinkActions<A::Msg>,
        timers: &mut Vec<(Instant, u64)>,
    ) {
        for (to, frame) in actions.sends {
            self.links.send(to, ThreadMsg::Link(self.id, frame));
        }
        for (peer, delay_ms, epoch) in actions.timers {
            timers.push((
                Instant::now() + std::time::Duration::from_millis(delay_ms),
                link_timer_tag(peer, epoch),
            ));
        }
        for (from, msg) in actions.delivered {
            self.drive(DiningInput::Message { from, msg }, timers);
        }
    }

    fn apply_detector_output(&mut self, out: DetectorOutput, timers: &mut Vec<(Instant, u64)>) {
        for (to, msg) in out.sends {
            // A send to a crashed (exited) neighbor fails; that is exactly
            // the crash model — ignore the error.
            self.links.send(to, ThreadMsg::Detector(self.id, msg));
        }
        for (delay_ms, tag) in out.timers {
            timers.push((
                Instant::now() + std::time::Duration::from_millis(delay_ms),
                tag,
            ));
        }
        if out.changed {
            let now_suspects = self.det.suspect_set();
            if let Some(link) = self.link.as_mut() {
                for &q in now_suspects.difference(&self.suspects) {
                    link.on_suspect(q);
                }
                let resumed: Vec<LinkActions<A::Msg>> = self
                    .suspects
                    .difference(&now_suspects)
                    .map(|&q| link.on_unsuspect(q))
                    .collect();
                self.suspects = now_suspects;
                for actions in resumed {
                    self.absorb_link_actions(actions, timers);
                }
            } else {
                self.suspects = now_suspects;
            }
            self.drive(DiningInput::SuspicionChange, timers);
        }
    }

    /// Transmits dining-layer sends, via the link layer when present.
    fn send_dining(&mut self, sends: Vec<(ProcessId, A::Msg)>, timers: &mut Vec<(Instant, u64)>) {
        for (to, msg) in sends {
            match self.link.as_mut() {
                Some(link) => {
                    let actions = link.send(to, msg);
                    debug_assert!(actions.delivered.is_empty());
                    self.absorb_link_actions(actions, timers);
                }
                None => self.links.send(to, ThreadMsg::Dining(self.id, msg)),
            }
        }
    }

    /// Feeds the dining algorithm, mirroring the simulator host's diffing.
    fn drive(&mut self, input: DiningInput<A::Msg>, timers: &mut Vec<(Instant, u64)>) {
        self.step_alg(timers, |alg, det, sends| alg.handle(input, det, sends));
    }

    /// Runs one algorithm step (a `handle`, `audit` or `inject_corruption`
    /// call), forwards its sends, and diffs its visible state.
    fn step_alg(
        &mut self,
        timers: &mut Vec<(Instant, u64)>,
        f: impl FnOnce(&mut A, &HeartbeatDetector, &mut Vec<(ProcessId, A::Msg)>),
    ) {
        let now = self.now().0;
        self.alg.note_now(now);
        let before = self.alg.state();
        let mut sends = Vec::new();
        f(&mut self.alg, &self.det, &mut sends);
        let after = self.alg.state();
        // Record the transition BEFORE transmitting its sends: the shared
        // epoch makes cross-thread timestamps comparable, so stamping the
        // released fork's StoppedEating only after the send could let the
        // receiver stamp its StartedEating first (this thread preempted
        // in between) and fabricate a ◇WX overlap that never happened.
        if before == DinerState::Thinking && after != DinerState::Thinking {
            self.record(DiningObs::BecameHungry);
        }
        if before != DinerState::Eating && after == DinerState::Eating {
            self.record(DiningObs::StartedEating);
            timers.push((
                Instant::now() + std::time::Duration::from_millis(self.eat_ms),
                EAT_TAG,
            ));
        }
        if before == DinerState::Eating && after == DinerState::Thinking {
            self.record(DiningObs::StoppedEating);
        }
        self.send_dining(sends, timers);
    }

    /// Restarts the crashed process: link layer first (clean channels for
    /// the rejoin traffic), then the algorithm, then a new detector epoch
    /// refuting the neighbors' suspicions of the pre-crash life.
    fn restart(&mut self, corrupt: bool, timers: &mut Vec<(Instant, u64)>) {
        self.crashed = false;
        self.inc += 1;
        timers.clear();
        let corruption = corrupt.then(|| state_entropy(self.entropy_seed, self.id, self.inc));
        if let Some(link) = self.link.as_mut() {
            link.on_restart(self.inc);
        }
        let mut sends = Vec::new();
        self.alg.note_now(self.now().0);
        self.alg
            .restart(self.inc, corruption, &self.det, &mut sends);
        // Publish which recovery path this incarnation took (queried via
        // the generic trait hook, so crash-stop algorithms publish
        // nothing) before transmitting: an observer that sees the rejoin
        // traffic's effects must already see the notice.
        if let Some(log) = self.alg.restart_log() {
            if let Some(event) = log.into_iter().last() {
                self.restart_log.lock().push(RestartNotice {
                    process: self.id,
                    at_ms: self.now().0,
                    event,
                });
            }
        }
        self.send_dining(sends, timers);
        let mut out = DetectorOutput::new();
        self.det.handle(
            DetectorEvent::Recovered {
                now: self.now(),
                epoch: self.inc,
            },
            &mut out,
        );
        self.apply_detector_output(out, timers);
        self.arm_audit(timers);
    }

    /// Boots an absent process into the system: fresh incarnation, clean
    /// link channels, the algorithm's `join` (introduction traffic toward
    /// any pre-wired edges), and a first detector life. Conflict edges to
    /// co-present neighbors arrive as `PeerJoined` notices queued right
    /// behind the `Join` on this thread's FIFO channel.
    fn boot(&mut self, timers: &mut Vec<(Instant, u64)>) {
        self.absent = false;
        self.crashed = false;
        self.inc += 1;
        timers.clear();
        if let Some(link) = self.link.as_mut() {
            link.on_restart(self.inc);
        }
        let mut sends = Vec::new();
        self.alg.note_now(self.now().0);
        self.alg.join(self.inc, &self.det, &mut sends);
        self.send_dining(sends, timers);
        // Same detector life-change as a restart: the neighbors suspected
        // the absent process (rightly — no heartbeats), and only an
        // epoch-stamped Alive refutes a standing suspicion.
        let mut out = DetectorOutput::new();
        self.det.handle(
            DetectorEvent::Recovered {
                now: self.now(),
                epoch: self.inc,
            },
            &mut out,
        );
        self.apply_detector_output(out, timers);
        self.arm_audit(timers);
    }

    fn arm_audit(&self, timers: &mut Vec<(Instant, u64)>) {
        if self.alg.supports_recovery() {
            timers.push((
                Instant::now() + std::time::Duration::from_millis(self.audit_ms),
                AUDIT_TAG,
            ));
        }
    }

    /// The thread body: runs the event loop, then folds this process's
    /// link counters into the system-wide summary.
    pub fn run(mut self) {
        self.event_loop();
        if let Some(link) = &self.link {
            let s = link.stats();
            self.link_stats.lock().absorb(
                s.payloads_sent,
                s.data_sent,
                s.retransmissions,
                s.acks_sent,
                s.duplicates_suppressed,
                s.out_of_order_buffered,
                s.delivered,
                s.recoveries,
                s.max_unacked,
            );
        }
    }

    /// An event loop over channel messages and timer deadlines until
    /// shutdown or (unrecoverable) crash.
    fn event_loop(&mut self) {
        let mut timers: Vec<(Instant, u64)> = Vec::new();
        // An initially-absent process stays dark — no heartbeats, no audit
        // — until its Join boots it.
        if !self.absent {
            let mut out = DetectorOutput::new();
            self.det
                .handle(DetectorEvent::Start { now: self.now() }, &mut out);
            self.apply_detector_output(out, &mut timers);
            self.arm_audit(&mut timers);
        }

        loop {
            // Fire every due timer (none are armed while crashed).
            let now_i = Instant::now();
            let mut due: Vec<u64> = Vec::new();
            timers.retain(|&(at, tag)| {
                if at <= now_i {
                    due.push(tag);
                    false
                } else {
                    true
                }
            });
            for tag in due {
                if tag == EAT_TAG {
                    if self.alg.state() == DinerState::Eating {
                        self.drive(DiningInput::DoneEating, &mut timers);
                    }
                } else if tag == AUDIT_TAG {
                    self.step_alg(&mut timers, |alg, det, sends| alg.audit(det, sends));
                    self.arm_audit(&mut timers);
                } else if tag >= LINK_TAG_BASE {
                    let (peer, epoch) = decode_timer_tag(tag);
                    if let Some(link) = self.link.as_mut() {
                        let actions = link.on_timer(peer, epoch);
                        self.absorb_link_actions(actions, &mut timers);
                    }
                } else {
                    let mut out = DetectorOutput::new();
                    let now = self.now();
                    self.det.handle(DetectorEvent::Timer { now, tag }, &mut out);
                    self.apply_detector_output(out, &mut timers);
                }
            }

            let deadline = timers
                .iter()
                .map(|&(at, _)| at)
                .min()
                .unwrap_or_else(|| Instant::now() + std::time::Duration::from_millis(50));
            match self.rx.recv_deadline(deadline) {
                // A crashed (parked) recoverable process drops everything
                // except a restart or the end of the experiment; an absent
                // one additionally accepts a membership Join.
                Ok(ThreadMsg::Recover { corrupt }) => {
                    if self.crashed && !self.absent {
                        self.restart(corrupt, &mut timers);
                    }
                }
                Ok(ThreadMsg::Join) => {
                    if self.absent {
                        self.boot(&mut timers);
                    }
                }
                Ok(ThreadMsg::Leave { graceful }) => {
                    if !self.absent {
                        if graceful && !self.crashed {
                            self.step_alg(&mut timers, |alg, _det, sends| alg.retire(sends));
                        }
                        self.absent = true;
                        timers.clear();
                    }
                }
                Ok(ThreadMsg::Shutdown) => return,
                Ok(_) if self.crashed || self.absent => {}
                Ok(ThreadMsg::Dining(from, msg)) => {
                    self.drive(DiningInput::Message { from, msg }, &mut timers);
                }
                Ok(ThreadMsg::Link(from, frame)) => {
                    if let Some(link) = self.link.as_mut() {
                        let actions = link.on_message(from, frame);
                        self.absorb_link_actions(actions, &mut timers);
                    }
                }
                Ok(ThreadMsg::Detector(from, msg)) => {
                    let mut out = DetectorOutput::new();
                    let now = self.now();
                    self.det
                        .handle(DetectorEvent::Message { now, from, msg }, &mut out);
                    self.apply_detector_output(out, &mut timers);
                }
                Ok(ThreadMsg::Hungry) => {
                    if self.alg.state() == DinerState::Thinking {
                        self.drive(DiningInput::Hungry, &mut timers);
                    }
                }
                Ok(ThreadMsg::PeerJoined { peer, color }) => {
                    self.step_alg(&mut timers, |alg, det, sends| {
                        alg.add_peer(peer, color, det, sends)
                    });
                }
                Ok(ThreadMsg::PeerLeft { peer, graceful }) => {
                    self.step_alg(&mut timers, |alg, det, sends| {
                        if graceful {
                            alg.remove_peer(peer, det, sends)
                        } else {
                            alg.peer_departed(peer, det, sends)
                        }
                    });
                }
                Ok(ThreadMsg::Corrupt { entropy }) => {
                    self.step_alg(&mut timers, |alg, det, sends| {
                        alg.inject_corruption(entropy, det, sends)
                    });
                }
                Ok(ThreadMsg::Crash) => {
                    if self.alg.supports_recovery() {
                        // Park: volatile state is conceptually lost (it is
                        // rebuilt from scratch on Recover); drop all
                        // traffic and send nothing meanwhile.
                        self.crashed = true;
                        timers.clear();
                    } else {
                        return; // crash-stop: the thread exits for good
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// Tag for the host-level eating timer; the recovery audit timer sits just
/// below it, the heartbeat detector uses tag 1, and link timers sit in
/// `[LINK_TAG_BASE, AUDIT_TAG)` — checked in that order in the dispatch
/// above.
const EAT_TAG: u64 = u64::MAX;
const AUDIT_TAG: u64 = u64::MAX - 1;
