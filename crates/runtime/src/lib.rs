//! Threaded real-time runtime for the dining state machines.
//!
//! The dining layer ([`DiningAlgorithm`](ekbd_dining::DiningAlgorithm)) and
//! the detector layer ([`DetectorModule`](ekbd_detector::DetectorModule))
//! are pure state machines, so the same code that runs on the
//! discrete-event simulator runs here on OS threads: one thread per
//! process, crossbeam channels as the reliable FIFO links, wall-clock
//! milliseconds as the time base, and a live
//! [`HeartbeatDetector`](ekbd_detector::HeartbeatDetector) as ◇P₁.
//!
//! Channels can be made adversarial with [`ChannelFaults`] — a lighter
//! mirror of the simulator's fault plan that drops or duplicates payload
//! frames at the sender — and dining traffic can then be wrapped by the
//! [`ekbd_link`] reliable link layer (`RuntimeConfig::link`), the same
//! sans-io state machine the simulator hosts.
//!
//! Crashes are real: under the crash-stop algorithm a crashed process's
//! thread exits, its channel receivers drop, and from then on it neither
//! sends nor receives — exactly the paper's crash-fault model. Under the
//! crash-recovery variant ([`ThreadedDining::spawn_recoverable`]) the
//! thread instead parks with all volatile state discarded, and can later
//! be restarted — blank or with deterministically corrupted state — via
//! [`ThreadedDining::recover`] / [`ThreadedDining::recover_corrupted`];
//! live state faults are injected with [`ThreadedDining::corrupt_state`]
//! and repaired by the periodic audit (`RuntimeConfig::audit_ms`).
//!
//! This crate exists to demonstrate runtime-independence and to host the
//! wall-clock benchmarks; the measured experiments live on the simulator,
//! where runs are deterministic and replayable.
//!
//! # Example
//!
//! ```
//! use ekbd_runtime::{ThreadedDining, RuntimeConfig};
//! use ekbd_graph::{topology, ProcessId};
//!
//! let sys = ThreadedDining::spawn(topology::ring(3), RuntimeConfig::default());
//! for i in 0..3 {
//!     sys.make_hungry(ProcessId(i));
//! }
//! let events = sys.shutdown_after(std::time::Duration::from_millis(300));
//! // Everyone ate at least once.
//! let eaters: std::collections::BTreeSet<_> = events.iter()
//!     .filter(|e| e.obs == ekbd_dining::DiningObs::StartedEating)
//!     .map(|e| e.process)
//!     .collect();
//! assert_eq!(eaters.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod process;
mod system;

pub use faults::ChannelFaults;
pub use system::{RestartNotice, RuntimeConfig, RuntimeRun, ThreadedDining};
