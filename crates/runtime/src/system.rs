use crate::faults::{state_entropy, ChannelFaults, LossyLinks};
use crate::process::{ProcessThread, ThreadMsg};
use crossbeam_channel::{unbounded, Receiver, Sender};
use ekbd_detector::{HeartbeatConfig, HeartbeatDetector};
use ekbd_dining::{
    DiningAlgorithm, DiningMsg, DiningProcess, RecoverableDining, RecoveryMsg, RestartEvent,
};
use ekbd_graph::coloring::{self, Color};
use ekbd_graph::{ConflictGraph, Membership, ProcessId};
use ekbd_journal::{FileJournal, JournalHandle};
use ekbd_link::{LinkConfig, LinkEndpoint};
use ekbd_metrics::{LinkSummary, SchedEvent};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the threaded runtime.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Heartbeat detector settings, in milliseconds.
    pub heartbeat: HeartbeatConfig,
    /// Eating duration in milliseconds.
    pub eat_ms: u64,
    /// Period of the recovery audit-and-repair timer in milliseconds
    /// (only armed by algorithms that support recovery).
    pub audit_ms: u64,
    /// Sender-side channel faults on payload traffic (default: inert).
    pub faults: ChannelFaults,
    /// Reliable link layer wrapping dining traffic (default: off).
    /// Required for dining correctness whenever `faults` is non-inert;
    /// timer durations are in milliseconds here.
    pub link: Option<LinkConfig>,
    /// Directory for per-process stable-storage journals (default: off).
    /// When set, [`spawn_recoverable`](ThreadedDining::spawn_recoverable)
    /// attaches a file-backed journal `journal-p<i>.ekj` per process, and
    /// restarts replay it to attempt the `JournalResume` fast path. The
    /// directory must exist.
    pub journal_dir: Option<PathBuf>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            heartbeat: HeartbeatConfig {
                period: 10,
                initial_timeout: 100,
                timeout_increment: 50,
            },
            eat_ms: 5,
            audit_ms: 25,
            faults: ChannelFaults::default(),
            link: None,
            journal_dir: None,
        }
    }
}

/// Decorrelates system-side live-corruption nonces from the in-thread
/// restart nonces (which are small incarnation numbers).
const CORRUPT_NONCE_BASE: u64 = 1 << 32;

/// One restart a recoverable process completed, published live by its
/// thread: which recovery path the new incarnation took, stamped with the
/// runtime's shared wall-clock epoch. The net session layer reads these to
/// tag a reconnect as journal-resumed vs rejoined.
#[derive(Clone, Debug)]
pub struct RestartNotice {
    /// The restarted process.
    pub process: ProcessId,
    /// Milliseconds since the system epoch when the restart ran.
    pub at_ms: u64,
    /// The incarnation and recovery path taken.
    pub event: RestartEvent,
}

/// A dining system running live: one OS thread per philosopher, crossbeam
/// channels as FIFO links, wall-clock heartbeats as ◇P₁.
///
/// The message-type parameter `M` follows the hosted algorithm:
/// [`spawn`](Self::spawn) runs the crash-stop
/// [`DiningProcess`](ekbd_dining::DiningProcess) (`M = DiningMsg`),
/// [`spawn_recoverable`](ThreadedDining::spawn_recoverable) runs the
/// crash-recovery [`RecoverableDining`](ekbd_dining::RecoverableDining)
/// (`M = RecoveryMsg`).
pub struct ThreadedDining<M: Clone + Send + 'static = DiningMsg> {
    txs: Vec<Sender<ThreadMsg<M>>>,
    handles: Vec<JoinHandle<()>>,
    events: Arc<Mutex<Vec<SchedEvent>>>,
    /// Live event taps: every recorded [`SchedEvent`] is streamed to each
    /// installed subscriber (in addition to the `events` vector).
    tap: Arc<Mutex<Vec<Sender<SchedEvent>>>>,
    /// Restart notices published by recoverable process threads.
    restart_log: Arc<Mutex<Vec<RestartNotice>>>,
    link_stats: Arc<Mutex<LinkSummary>>,
    epoch: Instant,
    entropy_seed: u64,
    corrupt_nonce: AtomicU64,
    graph: ConflictGraph,
    colors: Vec<Color>,
    /// Membership ledger: which processes are currently in the system.
    /// Fixed-population spawns start (and stay) all-true.
    present: Mutex<Vec<bool>>,
}

impl<M: Clone + Send + 'static> ThreadedDining<M> {
    /// Spawns one thread per process over `graph`, hosting the algorithm
    /// produced by `factory` (given the graph, a greedy coloring, and the
    /// process id).
    fn spawn_with<A>(
        graph: ConflictGraph,
        config: RuntimeConfig,
        mut factory: impl FnMut(&ConflictGraph, &[Color], ProcessId) -> A,
    ) -> Self
    where
        A: DiningAlgorithm<Msg = M> + Send + 'static,
    {
        let colors = coloring::greedy(&graph);
        let present = vec![true; graph.len()];
        Self::spawn_colored(graph, config, colors, present, &mut factory)
    }

    /// [`spawn_with`](Self::spawn_with) under an explicit coloring and
    /// initial membership: processes with `present[i] == false` park dark
    /// (no heartbeats, no traffic) until [`join`](ThreadedDining::join).
    fn spawn_colored<A>(
        graph: ConflictGraph,
        config: RuntimeConfig,
        colors: Vec<Color>,
        present: Vec<bool>,
        mut factory: impl FnMut(&ConflictGraph, &[Color], ProcessId) -> A,
    ) -> Self
    where
        A: DiningAlgorithm<Msg = M> + Send + 'static,
    {
        let epoch = Instant::now();
        let events: Arc<Mutex<Vec<SchedEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let tap: Arc<Mutex<Vec<Sender<SchedEvent>>>> = Arc::new(Mutex::new(Vec::new()));
        let restart_log: Arc<Mutex<Vec<RestartNotice>>> = Arc::new(Mutex::new(Vec::new()));
        let link_stats: Arc<Mutex<LinkSummary>> = Arc::new(Mutex::new(LinkSummary::default()));
        let channels: Vec<_> = (0..graph.len())
            .map(|_| unbounded::<ThreadMsg<M>>())
            .collect();
        let txs: Vec<Sender<ThreadMsg<M>>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let mut handles = Vec::with_capacity(graph.len());
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let id = ProcessId::from(i);
            let neighbor_txs: HashMap<ProcessId, Sender<ThreadMsg<M>>> = graph
                .neighbors(id)
                .iter()
                .map(|&q| (q, txs[q.index()].clone()))
                .collect();
            let thread = ProcessThread {
                id,
                alg: factory(&graph, &colors, id),
                det: HeartbeatDetector::new(config.heartbeat, graph.neighbors(id).iter().copied()),
                rx,
                links: LossyLinks::new(neighbor_txs, config.faults, i),
                link: config.link.map(|cfg| LinkEndpoint::new(id, cfg)),
                suspects: BTreeSet::new(),
                epoch,
                events: Arc::clone(&events),
                tap: Arc::clone(&tap),
                restart_log: Arc::clone(&restart_log),
                link_stats: Arc::clone(&link_stats),
                eat_ms: config.eat_ms.max(1),
                audit_ms: config.audit_ms.max(1),
                entropy_seed: config.faults.seed,
                crashed: false,
                absent: !present[i],
                inc: 0,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("diner-{i}"))
                    .spawn(move || thread.run())
                    .expect("spawn diner thread"),
            );
        }
        ThreadedDining {
            txs,
            handles,
            events,
            tap,
            restart_log,
            link_stats,
            epoch,
            entropy_seed: config.faults.seed,
            corrupt_nonce: AtomicU64::new(0),
            graph,
            colors,
            present: Mutex::new(present),
        }
    }

    /// Milliseconds elapsed since the system started.
    pub fn elapsed_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Asks `p` to become hungry (ignored unless it is thinking).
    pub fn make_hungry(&self, p: ProcessId) {
        let _ = self.txs[p.index()].send(ThreadMsg::Hungry);
    }

    /// Crashes `p`. Under a crash-stop algorithm its thread exits
    /// immediately and permanently; under a crash-recovery algorithm the
    /// thread parks, dropping all traffic, until [`recover`](Self::recover).
    pub fn crash(&self, p: ProcessId) {
        let _ = self.txs[p.index()].send(ThreadMsg::Crash);
    }

    /// Restarts a crashed `p` with blank dining state and a fresh
    /// incarnation (no-op unless `p` is crashed and recoverable).
    pub fn recover(&self, p: ProcessId) {
        let _ = self.txs[p.index()].send(ThreadMsg::Recover { corrupt: false });
    }

    /// Restarts a crashed `p` with adversarially corrupted dining state
    /// drawn from the seeded state-fault stream.
    pub fn recover_corrupted(&self, p: ProcessId) {
        let _ = self.txs[p.index()].send(ThreadMsg::Recover { corrupt: true });
    }

    /// Flips state bits of the live process `p` (fork/token/request
    /// scrambling under the seeded state-fault stream); the periodic audit
    /// must repair the damage. Ignored by crash-stop algorithms.
    pub fn corrupt_state(&self, p: ProcessId) {
        let nonce = CORRUPT_NONCE_BASE + self.corrupt_nonce.fetch_add(1, Ordering::Relaxed);
        let entropy = state_entropy(self.entropy_seed, p, nonce);
        let _ = self.txs[p.index()].send(ThreadMsg::Corrupt { entropy });
    }

    /// Snapshot of the events recorded so far.
    pub fn events_so_far(&self) -> Vec<SchedEvent> {
        self.events.lock().clone()
    }

    /// Installs a live event tap and returns its receiving end: every
    /// [`SchedEvent`] recorded from now on is also streamed to the
    /// returned channel, letting an observer (the net server's event
    /// pump) react without polling [`events_so_far`](Self::events_so_far).
    /// Taps fan out — installing another one *adds* a subscriber rather
    /// than replacing the previous; a tap whose receiver is dropped
    /// uninstalls itself on the next event.
    pub fn tap_events(&self) -> Receiver<SchedEvent> {
        let (tx, rx) = unbounded();
        self.tap.lock().push(tx);
        rx
    }

    /// Snapshot of the restart notices published so far: one entry per
    /// completed [`recover`](Self::recover) /
    /// [`recover_corrupted`](Self::recover_corrupted), tagging the
    /// recovery path the new incarnation took (journal fast-resume vs
    /// blank rejoin). Empty for crash-stop algorithms.
    pub fn restart_paths(&self) -> Vec<RestartNotice> {
        self.restart_log.lock().clone()
    }

    /// Lets the system run for `window`, then shuts every thread down and
    /// returns the recorded scheduling events.
    pub fn shutdown_after(self, window: Duration) -> Vec<SchedEvent> {
        self.shutdown_with_link(window).0
    }

    /// Like [`shutdown_after`](Self::shutdown_after), but also returns the
    /// system-wide link-layer counters (all zeros when the link is off).
    pub fn shutdown_with_link(self, window: Duration) -> (Vec<SchedEvent>, LinkSummary) {
        std::thread::sleep(window);
        for tx in &self.txs {
            let _ = tx.send(ThreadMsg::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
        let events = Arc::try_unwrap(self.events)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        let link = *self.link_stats.lock();
        (events, link)
    }

    /// Like [`shutdown_with_link`](Self::shutdown_with_link), but also
    /// returns the restart notices — snapshotted **after** every thread
    /// has joined. A `Recover` queued just before the shutdown still
    /// completes during teardown (each thread drains its FIFO channel up
    /// to the `Shutdown` marker), and its notice is published by
    /// `restart()` before any rejoin traffic is transmitted, so the
    /// post-join snapshot is the only one guaranteed to be complete.
    pub fn shutdown_complete(self, window: Duration) -> RuntimeRun {
        let restart_log = Arc::clone(&self.restart_log);
        let (events, link) = self.shutdown_with_link(window);
        let restarts = restart_log.lock().clone();
        RuntimeRun {
            events,
            link,
            restarts,
        }
    }
}

/// Everything a completed teardown hands back (see
/// [`ThreadedDining::shutdown_complete`]).
pub struct RuntimeRun {
    /// The full scheduling trace.
    pub events: Vec<SchedEvent>,
    /// System-wide link-layer counters (zeros when the link is off).
    pub link: LinkSummary,
    /// Every restart performed over the system's lifetime, including any
    /// that completed during the teardown itself.
    pub restarts: Vec<RestartNotice>,
}

impl ThreadedDining {
    /// Spawns the system over `graph` running Algorithm 1 with a greedy
    /// coloring.
    pub fn spawn(graph: ConflictGraph, config: RuntimeConfig) -> Self {
        Self::spawn_with(graph, config, |g, colors, id| {
            DiningProcess::from_graph(g, colors, id)
        })
    }
}

impl ThreadedDining<RecoveryMsg> {
    /// Spawns the system over `graph` running the crash-recovery variant
    /// of Algorithm 1: crashed processes can be restarted (blank or
    /// corrupted) and a periodic audit repairs state-fault damage.
    pub fn spawn_recoverable(graph: ConflictGraph, config: RuntimeConfig) -> Self {
        let journal_dir = config.journal_dir.clone();
        Self::spawn_with(graph, config, move |g, colors, id| {
            let alg = RecoverableDining::from_graph(g, colors, id);
            match &journal_dir {
                Some(dir) => {
                    let path = dir.join(format!("journal-p{}.ekj", id.index()));
                    alg.with_journal(JournalHandle::new(FileJournal::new(path)))
                }
                None => alg,
            }
        })
    }

    /// Spawns a churn-capable system: processes with
    /// `initially_present[i] == false` park dark until
    /// [`join`](Self::join), and any process can later be removed with
    /// [`leave`](Self::leave). Colors come from the online (δ+1)-
    /// recoloring ledger — initially-present processes are greedily
    /// colored over their induced subgraph, and each absent process is
    /// pre-assigned (in id order) the least color absent from its
    /// neighborhood, so no survivor ever recolors when it joins.
    pub fn spawn_recoverable_with_membership(
        graph: ConflictGraph,
        config: RuntimeConfig,
        initially_present: &[bool],
    ) -> Self {
        assert_eq!(
            initially_present.len(),
            graph.len(),
            "one presence flag per process"
        );
        let mut ledger = Membership::new(graph.clone(), initially_present);
        for (i, present) in initially_present.iter().enumerate() {
            if !present {
                ledger
                    .join(ProcessId::from(i))
                    .expect("spawn-time join coloring of an absent process");
            }
        }
        let colors = ledger.colors().to_vec();
        let journal_dir = config.journal_dir.clone();
        let initially_present = initially_present.to_vec();
        let present = initially_present.clone();
        Self::spawn_colored(graph, config, colors, present, move |g, colors, id| {
            let mut alg = RecoverableDining::from_graph(g, colors, id);
            // Prune the edges membership will grow at runtime: an absent
            // process boots with no edges (they arrive as PeerJoined
            // notices queued behind its Join), and a present process drops
            // its edges toward the absent (re-added symmetrically when
            // they join).
            let nobody = BTreeSet::new();
            let mut sink = Vec::new();
            for &q in g.neighbors(id) {
                if !initially_present[id.index()] || !initially_present[q.index()] {
                    alg.remove_peer(q, &nobody, &mut sink);
                }
            }
            debug_assert!(sink.is_empty(), "pruning at spawn cannot send");
            match &journal_dir {
                Some(dir) => {
                    let path = dir.join(format!("journal-p{}.ekj", id.index()));
                    alg.with_journal(JournalHandle::new(FileJournal::new(path)))
                }
                None => alg,
            }
        })
    }

    /// Admits the absent process `p` into the system: boots its thread
    /// with a fresh incarnation and grows the conflict edges toward every
    /// co-present neighbor (canonical fork placement on both sides, by
    /// color order). No-op if `p` is already a member.
    pub fn join(&self, p: ProcessId) {
        let mut present = self.present.lock();
        if present[p.index()] {
            return;
        }
        // The joiner's FIFO channel guarantees Join is processed before
        // the PeerJoined introductions queued right behind it.
        let _ = self.txs[p.index()].send(ThreadMsg::Join);
        for &q in self.graph.neighbors(p) {
            if present[q.index()] {
                let _ = self.txs[q.index()].send(ThreadMsg::PeerJoined {
                    peer: p,
                    color: self.colors[p.index()],
                });
                let _ = self.txs[p.index()].send(ThreadMsg::PeerJoined {
                    peer: q,
                    color: self.colors[q.index()],
                });
            }
        }
        present[p.index()] = true;
    }

    /// Removes the member `p` permanently. Graceful departure drains
    /// first — `p` discharges held forks and deferred acks, and survivors
    /// tear the shared edges down; a crash-stop departure (`graceful =
    /// false`) parks `p` mid-whatever, and the survivors' periodic audit
    /// reclaims any fork it held. No-op if `p` is not a member.
    pub fn leave(&self, p: ProcessId, graceful: bool) {
        let mut present = self.present.lock();
        if !present[p.index()] {
            return;
        }
        present[p.index()] = false;
        let _ = self.txs[p.index()].send(ThreadMsg::Leave { graceful });
        for &q in self.graph.neighbors(p) {
            if present[q.index()] {
                let _ = self.txs[q.index()].send(ThreadMsg::PeerLeft { peer: p, graceful });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_dining::DiningObs;
    use ekbd_graph::topology;
    use ekbd_metrics::ExclusionReport;
    use ekbd_sim::Time;

    #[test]
    fn everyone_eats_on_a_ring() {
        let sys = ThreadedDining::spawn(topology::ring(5), RuntimeConfig::default());
        for i in 0..5 {
            sys.make_hungry(ProcessId::from(i));
        }
        let events = sys.shutdown_after(Duration::from_millis(400));
        let mut ate = [false; 5];
        for e in &events {
            if e.obs == DiningObs::StartedEating {
                ate[e.process.index()] = true;
            }
        }
        assert!(ate.iter().all(|&x| x), "everyone must eat: {ate:?}");
    }

    #[test]
    fn no_mistakes_without_false_suspicions() {
        // With a suspicion timeout far beyond the test duration the
        // detector never falsely suspects (even on a loaded machine), so
        // exclusion must be perfect from the start.
        let g = topology::clique(4);
        let cfg = RuntimeConfig {
            heartbeat: HeartbeatConfig {
                period: 10,
                initial_timeout: 60_000,
                timeout_increment: 50,
            },
            eat_ms: 5,
            ..RuntimeConfig::default()
        };
        let sys = ThreadedDining::spawn(g.clone(), cfg);
        for round in 0..3 {
            for i in 0..4 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(60 + round * 10));
        }
        let events = sys.shutdown_after(Duration::from_millis(200));
        let report = ExclusionReport::analyze(&g, &events, &|_| None, Time(60_000));
        assert_eq!(report.total(), 0, "mistakes: {:?}", report.mistakes);
    }

    #[test]
    fn link_layer_masks_channel_faults_on_threads() {
        use ekbd_link::LinkConfig;
        // 30% loss and 40% duplication on every payload frame; the link
        // layer must still get every diner fed.
        let cfg = RuntimeConfig {
            faults: ChannelFaults::lossy(0.30, 42).duplication(0.40),
            link: Some(LinkConfig::default()),
            ..RuntimeConfig::default()
        };
        let sys = ThreadedDining::spawn(topology::ring(3), cfg);
        for round in 0..3 {
            for i in 0..3 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(60 + round * 10));
        }
        let (events, link) = sys.shutdown_with_link(Duration::from_millis(400));
        let mut ate = [false; 3];
        for e in &events {
            if e.obs == DiningObs::StartedEating {
                ate[e.process.index()] = true;
            }
        }
        assert!(ate.iter().all(|&x| x), "everyone must eat: {ate:?}");
        assert!(
            link.payloads_sent > 0,
            "dining traffic went through the link"
        );
        assert!(
            link.retransmissions > 0,
            "30% loss must force retransmission"
        );
        assert!(link.duplicates_suppressed > 0, "40% dup must be suppressed");
        assert!(
            link.delivered <= link.payloads_sent,
            "never deliver more than was sent"
        );
    }

    #[test]
    fn crashed_neighbor_does_not_block_the_ring() {
        let sys = ThreadedDining::spawn(topology::ring(3), RuntimeConfig::default());
        sys.crash(ProcessId(0));
        std::thread::sleep(Duration::from_millis(20));
        sys.make_hungry(ProcessId(1));
        sys.make_hungry(ProcessId(2));
        // p1 and p2 each share an edge with the crashed p0; the heartbeat
        // detector needs ~100ms to suspect it.
        let events = sys.shutdown_after(Duration::from_millis(700));
        let eaters: std::collections::BTreeSet<ProcessId> = events
            .iter()
            .filter(|e| e.obs == DiningObs::StartedEating)
            .map(|e| e.process)
            .collect();
        assert!(
            eaters.contains(&ProcessId(1)) && eaters.contains(&ProcessId(2)),
            "wait-freedom on real threads: {eaters:?}"
        );
    }

    #[test]
    fn recovered_process_rejoins_and_eats_on_threads() {
        // Crash p0, let its neighbors suspect it and keep eating, then
        // restart it with corrupted state: after the rejoin handshake it
        // must eat again, and post-restart exclusion must stay perfect.
        let cfg = RuntimeConfig {
            faults: ChannelFaults {
                seed: 99,
                ..ChannelFaults::default()
            },
            ..RuntimeConfig::default()
        };
        let sys = ThreadedDining::spawn_recoverable(topology::ring(3), cfg);
        sys.crash(ProcessId(0));
        std::thread::sleep(Duration::from_millis(30));
        sys.make_hungry(ProcessId(1));
        sys.make_hungry(ProcessId(2));
        // Let the survivors be suspected-and-served first.
        std::thread::sleep(Duration::from_millis(400));
        sys.recover_corrupted(ProcessId(0));
        std::thread::sleep(Duration::from_millis(300));
        let restart_ms = sys.elapsed_ms();
        for _ in 0..3 {
            for i in 0..3 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(80));
        }
        let events = sys.shutdown_after(Duration::from_millis(500));
        let p0_ate_after = events.iter().any(|e| {
            e.process == ProcessId(0)
                && e.obs == DiningObs::StartedEating
                && e.time >= Time(restart_ms)
        });
        assert!(p0_ate_after, "recovered p0 must be readmitted and eat");
        let g = topology::ring(3);
        let post: Vec<SchedEvent> = events
            .iter()
            .filter(|e| e.time >= Time(restart_ms))
            .cloned()
            .collect();
        let report = ExclusionReport::analyze(&g, &post, &|_| None, Time(u64::MAX));
        assert_eq!(
            report.total(),
            0,
            "post-recovery mistakes: {:?}",
            report.mistakes
        );
    }

    #[test]
    fn file_backed_journal_survives_a_threaded_restart() {
        // With a journal directory configured, every process commits its
        // edge state to disk; a crashed-and-recovered process replays the
        // file and still gets readmitted.
        let dir = std::env::temp_dir().join(format!("ekbd-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create journal dir");
        let cfg = RuntimeConfig {
            journal_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        };
        let sys = ThreadedDining::spawn_recoverable(topology::ring(3), cfg);
        for i in 0..3 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(150));
        sys.crash(ProcessId(0));
        std::thread::sleep(Duration::from_millis(300));
        sys.recover(ProcessId(0));
        std::thread::sleep(Duration::from_millis(200));
        let restart_ms = sys.elapsed_ms();
        for _ in 0..3 {
            for i in 0..3 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(80));
        }
        let events = sys.shutdown_after(Duration::from_millis(400));
        // The on-disk journal is a framed segment file now; reopen it
        // through FileJournal and check the latest retained record decodes
        // and carries a positive commit sequence number.
        let mut reopened = FileJournal::new(dir.join("journal-p0.ekj"));
        let bytes = ekbd_journal::JournalStore::load(&mut reopened).expect("journal file written");
        let record = ekbd_journal::JournalRecord::decode(&bytes).expect("on-disk journal decodes");
        assert!(record.seq > 0, "committed records carry a sequence number");
        let p0_ate_after = events.iter().any(|e| {
            e.process == ProcessId(0)
                && e.obs == DiningObs::StartedEating
                && e.time >= Time(restart_ms)
        });
        assert!(p0_ate_after, "journaled p0 must be readmitted and eat");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn joiner_comes_online_and_eats_on_threads() {
        // p2 starts outside the system on a 4-ring; the other three run
        // normally. Mid-run p2 joins: it must be admitted and eat, and
        // its neighbors must keep eating afterwards.
        let g = topology::ring(4);
        let present = [true, true, false, true];
        let sys = ThreadedDining::spawn_recoverable_with_membership(
            g,
            RuntimeConfig::default(),
            &present,
        );
        for i in [0usize, 1, 3] {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(150));
        sys.join(ProcessId(2));
        std::thread::sleep(Duration::from_millis(100));
        let join_ms = sys.elapsed_ms();
        for _ in 0..4 {
            for i in 0..4 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(80));
        }
        let events = sys.shutdown_after(Duration::from_millis(500));
        let mut ate_after = [false; 4];
        for e in &events {
            if e.obs == DiningObs::StartedEating && e.time >= Time(join_ms) {
                ate_after[e.process.index()] = true;
            }
        }
        assert!(
            ate_after.iter().all(|&x| x),
            "joiner and survivors must all eat after the join: {ate_after:?}"
        );
        assert!(
            !events
                .iter()
                .any(|e| e.process == ProcessId(2) && e.time < Time(join_ms - 100)),
            "an absent process emits nothing before its join"
        );
    }

    #[test]
    fn graceful_leaver_drains_and_survivors_keep_eating_on_threads() {
        // p1 departs gracefully mid-run on a clique; its drained forks
        // must not wedge anyone — every survivor keeps eating afterwards.
        let g = topology::clique(4);
        let present = [true; 4];
        let sys = ThreadedDining::spawn_recoverable_with_membership(
            g,
            RuntimeConfig::default(),
            &present,
        );
        for i in 0..4 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(150));
        sys.leave(ProcessId(1), true);
        std::thread::sleep(Duration::from_millis(50));
        let leave_ms = sys.elapsed_ms();
        for _ in 0..4 {
            for i in 0..4 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(80));
        }
        let events = sys.shutdown_after(Duration::from_millis(500));
        let mut ate_after = [false; 4];
        for e in &events {
            if e.obs == DiningObs::StartedEating && e.time >= Time(leave_ms) {
                ate_after[e.process.index()] = true;
            }
        }
        assert!(
            ate_after[0] && ate_after[2] && ate_after[3],
            "survivors must keep eating after a graceful departure: {ate_after:?}"
        );
        assert!(!ate_after[1], "a departed process never eats again");
    }

    #[test]
    fn crash_stop_departure_is_reclaimed_by_the_audit_on_threads() {
        // p0 leaves without draining on a 3-ring — whatever fork it held
        // is gone with it. The survivors' audit must remint and neither
        // may starve.
        let sys = ThreadedDining::spawn_recoverable_with_membership(
            topology::ring(3),
            RuntimeConfig::default(),
            &[true; 3],
        );
        for i in 0..3 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(120));
        sys.leave(ProcessId(0), false);
        std::thread::sleep(Duration::from_millis(50));
        let leave_ms = sys.elapsed_ms();
        for _ in 0..4 {
            for i in 0..3 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let events = sys.shutdown_after(Duration::from_millis(600));
        let mut ate_after = [false; 3];
        for e in &events {
            if e.obs == DiningObs::StartedEating && e.time >= Time(leave_ms) {
                ate_after[e.process.index()] = true;
            }
        }
        assert!(
            ate_after[1] && ate_after[2],
            "survivors must outlive a crash-stop departure: {ate_after:?}"
        );
    }

    #[test]
    fn live_corruption_is_audited_away_on_threads() {
        // Scramble p1's state mid-run; the periodic audit must repair it
        // and everyone keeps eating.
        let sys = ThreadedDining::spawn_recoverable(topology::ring(3), RuntimeConfig::default());
        for i in 0..3 {
            sys.make_hungry(ProcessId::from(i));
        }
        std::thread::sleep(Duration::from_millis(100));
        sys.corrupt_state(ProcessId(1));
        std::thread::sleep(Duration::from_millis(200));
        let corrupt_ms = sys.elapsed_ms();
        for _ in 0..3 {
            for i in 0..3 {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(Duration::from_millis(80));
        }
        let events = sys.shutdown_after(Duration::from_millis(400));
        let mut ate_after = [false; 3];
        for e in &events {
            if e.obs == DiningObs::StartedEating && e.time >= Time(corrupt_ms) {
                ate_after[e.process.index()] = true;
            }
        }
        assert!(
            ate_after.iter().all(|&x| x),
            "everyone must eat after the corruption is repaired: {ate_after:?}"
        );
    }
}
