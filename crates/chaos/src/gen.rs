//! Seeded schedule generator: the randomized adversary.
//!
//! Every schedule is a pure function of `(topology, seed, intensity)`,
//! built from a local splitmix64 stream, so exploration campaigns are
//! replayable by seed alone and a failing seed can always be regenerated
//! bit-for-bit before the shrinker takes over.
//!
//! Generation is constructive-by-validity: axis victims are drawn from
//! disjoint pools, partitions get time-disjoint windows, every crash gets
//! a later recovery, and storage damage only targets processes that
//! restart — so `generate(..).validate()` holds for every seed (a
//! proptest pins this).

use crate::schedule::{Axis, ChannelNoise, ChaosEvent, FaultSchedule, ScheduleError};
use ekbd_journal::StorageFault;
use ekbd_sim::{ProcessId, Time};

/// Default horizon for generated schedules.
pub const GEN_HORIZON: Time = Time(60_000);

/// End of the disturbance window. The chaos workload's hungry sessions
/// drain within roughly the first thousand ticks, so disturbances are
/// packed into that span — a fault that fires after the last session ate
/// tests nothing — and the rest of the horizon is a quiet tail for the
/// blocked sessions to complete and the classifier to judge in.
pub const GEN_WINDOW: Time = Time(2_000);

/// Tunable intensity distribution for the generator.
#[derive(Clone, Debug, PartialEq)]
pub struct Intensity {
    /// Display name (`light` / `default` / `heavy`).
    pub name: &'static str,
    /// Upper bound on the per-message loss probability.
    pub loss_cap: f64,
    /// Upper bound on duplication / reorder probabilities.
    pub noise_cap: f64,
    /// Maximum number of (time-disjoint) partitions.
    pub max_partitions: usize,
    /// Maximum number of crash/recover victims.
    pub max_crashes: usize,
    /// Whether storage damage may ride on a recovery.
    pub storage: bool,
    /// Maximum joins and leaves each.
    pub max_churn: usize,
}

impl Intensity {
    /// Mild background noise: short partitions, one crash, no storage
    /// damage, no churn.
    pub fn light() -> Self {
        Intensity {
            name: "light",
            loss_cap: 0.03,
            noise_cap: 0.03,
            max_partitions: 1,
            max_crashes: 1,
            storage: false,
            max_churn: 0,
        }
    }

    /// The E18 gate setting: every axis available, moderate rates.
    pub fn default_mix() -> Self {
        Intensity {
            name: "default",
            loss_cap: 0.08,
            noise_cap: 0.05,
            max_partitions: 2,
            max_crashes: 2,
            storage: true,
            max_churn: 1,
        }
    }

    /// Hostile: high rates, more victims per axis.
    pub fn heavy() -> Self {
        Intensity {
            name: "heavy",
            loss_cap: 0.15,
            noise_cap: 0.10,
            max_partitions: 3,
            max_crashes: 3,
            storage: true,
            max_churn: 2,
        }
    }

    /// Parse a preset name.
    pub fn parse(name: &str) -> Option<Intensity> {
        match name {
            "light" => Some(Intensity::light()),
            "default" => Some(Intensity::default_mix()),
            "heavy" => Some(Intensity::heavy()),
            _ => None,
        }
    }
}

/// Deterministic splitmix64 stream; the whole generator draws from one.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next() % (hi - lo)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Remove and return a uniformly random element.
    fn take<T>(&mut self, pool: &mut Vec<T>) -> Option<T> {
        if pool.is_empty() {
            return None;
        }
        let i = (self.next() % pool.len() as u64) as usize;
        Some(pool.swap_remove(i))
    }
}

impl FaultSchedule {
    /// Generate a composite schedule over `topology` from `seed`.
    ///
    /// At least two distinct fault axes are always exercised (subject to
    /// the intensity allowing them and the population being large enough
    /// to fill the victim pools); all disturbances land inside
    /// [`GEN_WINDOW`] so they overlap live hunger and the classifier
    /// always has a quiet tail to judge stabilization in.
    pub fn generate(
        topology: &str,
        seed: u64,
        intensity: &Intensity,
    ) -> Result<FaultSchedule, ScheduleError> {
        let graph = crate::schedule::parse_topology(topology)?;
        let n = graph.len();
        let mut rng = Rng::new(seed);
        let horizon = GEN_HORIZON;
        let window_end = GEN_WINDOW.0;

        // Pick the axis set: shuffle-draw until at least two are chosen,
        // respecting what the intensity and population admit.
        let mut available = vec![Axis::Channel, Axis::Partition];
        if intensity.max_crashes > 0 && n >= 3 {
            available.push(Axis::Crash);
        }
        if intensity.max_churn > 0 && n >= 5 {
            available.push(Axis::Churn);
        }
        let mut chosen: Vec<Axis> = Vec::new();
        let mut pool = available.clone();
        while let Some(axis) = rng.take(&mut pool) {
            if chosen.len() < 2 || rng.chance(0.55) {
                chosen.push(axis);
            }
        }
        // Storage damage rides on the crash axis.
        if intensity.storage && chosen.contains(&Axis::Crash) && rng.chance(0.5) {
            chosen.push(Axis::Storage);
        }
        chosen.sort();

        // Disjoint victim pools per axis keep the composition valid by
        // construction: a churned process is never also crashed, and a
        // partitioned side never contains a victim of another axis.
        let mut victims: Vec<ProcessId> = (0..n).map(ProcessId::from).collect();
        let mut events: Vec<ChaosEvent> = Vec::new();

        if chosen.contains(&Axis::Channel) {
            events.push(ChaosEvent::Noise(ChannelNoise {
                loss: rng.f64() * intensity.loss_cap,
                dup: rng.f64() * intensity.noise_cap,
                reorder: rng.f64() * intensity.noise_cap * 2.0,
                reorder_window: rng.range(4, 17),
            }));
        }

        if chosen.contains(&Axis::Churn) {
            for _ in 0..intensity.max_churn {
                if victims.len() <= 3 {
                    break;
                }
                let joiner = rng.take(&mut victims).expect("pool non-empty");
                events.push(ChaosEvent::Join {
                    process: joiner,
                    at: Time(rng.range(100, window_end / 2)),
                });
                let leaver = rng.take(&mut victims).expect("pool non-empty");
                events.push(ChaosEvent::Leave {
                    process: leaver,
                    at: Time(rng.range(window_end / 2, window_end)),
                    graceful: rng.chance(0.5),
                });
            }
        }

        if chosen.contains(&Axis::Crash) {
            let storage = chosen.contains(&Axis::Storage);
            for i in 0..intensity.max_crashes {
                if victims.len() <= 2 {
                    break;
                }
                let victim = rng.take(&mut victims).expect("pool non-empty");
                let crash_at = rng.range(100, window_end * 2 / 3);
                let recover_at = rng.range(crash_at + 100, window_end);
                events.push(ChaosEvent::Crash {
                    process: victim,
                    at: Time(crash_at),
                });
                events.push(ChaosEvent::Recover {
                    process: victim,
                    at: Time(recover_at),
                    corrupt: rng.chance(0.3),
                });
                // Damage the first victim's storage so the axis always
                // fires when selected; later victims roll for it.
                if storage && (i == 0 || rng.chance(0.4)) {
                    let mode = match rng.range(0, 4) {
                        0 => StorageFault::TornWrite,
                        1 => StorageFault::BitRot,
                        2 => StorageFault::StaleSnapshot,
                        _ => StorageFault::DroppedSync,
                    };
                    events.push(ChaosEvent::Storage {
                        process: victim,
                        mode,
                    });
                }
            }
        }

        if chosen.contains(&Axis::Partition) {
            // Time-disjoint windows: slice the disturbance window into
            // equal slots and put at most one partition in each.
            let count = 1 + (rng.next() as usize % intensity.max_partitions);
            let slot = window_end / count as u64;
            for k in 0..count {
                if victims.len() <= 2 {
                    break;
                }
                let isolated = rng.take(&mut victims).expect("pool non-empty");
                let lo = k as u64 * slot + 200;
                let hi = (k as u64 + 1) * slot;
                if lo + 400 >= hi {
                    break;
                }
                let start = rng.range(lo, hi - 400);
                let heal = rng.range(start + 400, hi.min(start + 4_000).max(start + 401));
                events.push(ChaosEvent::Partition {
                    side: vec![isolated],
                    start: Time(start),
                    heal: Time(heal),
                });
            }
        }

        let mut schedule = FaultSchedule {
            topology: topology.to_string(),
            seed,
            horizon,
            events,
            expect: None,
        };
        // Victim pools can run dry on small populations (e.g. heavy
        // churn on a 6-clique leaves no one to partition); channel noise
        // needs no victims, so it backstops the two-axis guarantee.
        if schedule.axes().len() < 2 && !schedule.events.iter().any(|e| e.axis() == Axis::Channel) {
            schedule.events.insert(
                0,
                ChaosEvent::Noise(ChannelNoise {
                    loss: rng.f64() * intensity.loss_cap,
                    dup: 0.0,
                    reorder: 0.0,
                    reorder_window: 0,
                }),
            );
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultSchedule::generate("ring-8", 42, &Intensity::default_mix()).unwrap();
        let b = FaultSchedule::generate("ring-8", 42, &Intensity::default_mix()).unwrap();
        assert_eq!(a, b);
        let c = FaultSchedule::generate("ring-8", 43, &Intensity::default_mix()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_schedules_validate_and_compose() {
        for intensity in [
            Intensity::light(),
            Intensity::default_mix(),
            Intensity::heavy(),
        ] {
            for topo in ["ring-8", "clique-6", "grid-3x4", "gnp-12-0.3"] {
                for seed in 0..50 {
                    let s = FaultSchedule::generate(topo, seed, &intensity)
                        .unwrap_or_else(|e| panic!("{topo}/{seed}: {e}"));
                    s.validate()
                        .unwrap_or_else(|e| panic!("{topo}/{seed} invalid: {e}"));
                    assert!(
                        s.axes().len() >= 2,
                        "{topo}/{seed} exercises fewer than two axes: {:?}",
                        s.axes()
                    );
                    assert!(s.last_disturbance() <= GEN_WINDOW);
                }
            }
        }
    }

    #[test]
    fn intensity_presets_parse() {
        assert_eq!(Intensity::parse("light"), Some(Intensity::light()));
        assert_eq!(Intensity::parse("default"), Some(Intensity::default_mix()));
        assert_eq!(Intensity::parse("heavy"), Some(Intensity::heavy()));
        assert_eq!(Intensity::parse("brutal"), None);
    }
}
