//! Unified chaos engine for the ekbd workspace: composed fault
//! schedules, seeded exploration, and automatic failing-schedule
//! shrinking.
//!
//! The paper's ◇k-bounded-waiting guarantee quantifies over *arbitrarily
//! hostile* daemons, but each single-axis gate (channel faults, crashes,
//! storage damage, churn) only probes one slice of that adversary space.
//! This crate supplies the substrate for composite adversaries:
//!
//! * [`FaultSchedule`] — one serializable schedule composing every fault
//!   axis, compiled down to the per-axis plans the simulator consumes
//!   ([`FaultSchedule::parts`]) and validated for cross-axis
//!   contradictions ([`FaultSchedule::validate`]);
//! * [`codec`] — a line-oriented text format so failing schedules become
//!   committed regression artifacts replayable via `ekbd chaos --replay`;
//! * [`FaultSchedule::generate`] — a seeded generator with tunable
//!   [`Intensity`] distributions; every schedule is a pure function of
//!   `(topology, seed, intensity)`;
//! * [`shrink`](shrink()) — ddmin over schedule events: re-run each
//!   candidate deterministically and keep the smaller schedule whenever
//!   it reproduces the same [`RunClass`], down to local minimality;
//! * [`Coverage`] — which axis combinations a campaign exercised per
//!   topology, and which pairs were never composed.
//!
//! The harness side (building a `Scenario` from a schedule, running it,
//! classifying the outcome) lives in `ekbd-harness`, which depends on
//! this crate; this crate stays a leaf over `ekbd-graph` / `ekbd-sim` /
//! `ekbd-journal` so every layer above can share the schedule type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod coverage;
mod gen;
mod schedule;
pub mod shrink;

pub use coverage::{combo_name, Coverage};
pub use gen::{Intensity, GEN_HORIZON, GEN_WINDOW};
pub use schedule::{
    parse_topology, Axis, ChannelNoise, ChaosEvent, FaultSchedule, RunClass, ScheduleError,
    ScheduleParts,
};
pub use shrink::{is_subsequence, shrink, ShrinkStats};
