//! Delta-debugging shrinker for failing schedules.
//!
//! Classic ddmin (Zeller & Hildebrandt) over the schedule's event list:
//! partition the events into `granularity` chunks, try each chunk alone
//! and each complement, keep whichever smaller candidate still fails the
//! caller's oracle, refine the granularity when nothing does, and stop at
//! a locally (1-)minimal failing event set. The oracle decides failure —
//! in practice it validates the candidate (invalid compositions count as
//! *not failing*, since dropping events can orphan a recovery or a
//! storage fault) and re-runs the simulator deterministically, accepting
//! only candidates that reproduce the *same* [`RunClass`] as the
//! original.
//!
//! The shrinker itself is deterministic and purely subtractive: the
//! result's events are a subsequence of the input's, so seed, topology,
//! horizon, and every surviving event are bit-identical to the original.
//!
//! [`RunClass`]: crate::schedule::RunClass

use crate::schedule::FaultSchedule;

/// Accounting from one shrink run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle invocations (candidate runs) performed.
    pub tests: usize,
    /// Event count of the schedule the shrink started from.
    pub original: usize,
    /// Event count of the minimized schedule.
    pub shrunk: usize,
}

/// Minimize `schedule` against `still_fails`, which must return `true`
/// exactly when a candidate reproduces the original failure.
///
/// `schedule` itself is assumed to fail (callers establish that before
/// shrinking); the returned schedule is a locally-minimal failing
/// sub-schedule — dropping any single remaining event makes the failure
/// disappear or the schedule invalid.
pub fn shrink<F>(schedule: &FaultSchedule, mut still_fails: F) -> (FaultSchedule, ShrinkStats)
where
    F: FnMut(&FaultSchedule) -> bool,
{
    let mut events = schedule.events.clone();
    let mut tests = 0usize;
    let original = events.len();
    let mut granularity = 2usize;

    while events.len() >= 2 {
        let chunks = chunk_bounds(events.len(), granularity);
        let mut reduced = false;

        // Try each chunk alone (big jumps first), then each complement.
        for &(lo, hi) in &chunks {
            let candidate: Vec<_> = events[lo..hi].to_vec();
            if candidate.len() == events.len() {
                continue;
            }
            tests += 1;
            if still_fails(&schedule.with_events(candidate.clone())) {
                events = candidate;
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        for &(lo, hi) in &chunks {
            if hi - lo == events.len() {
                continue;
            }
            let candidate: Vec<_> = events[..lo].iter().chain(&events[hi..]).cloned().collect();
            tests += 1;
            if still_fails(&schedule.with_events(candidate.clone())) {
                events = candidate;
                granularity = (granularity - 1).max(2);
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        if granularity >= events.len() {
            break;
        }
        granularity = (granularity * 2).min(events.len());
    }

    let shrunk = schedule.with_events(events);
    let stats = ShrinkStats {
        tests,
        original,
        shrunk: shrunk.events.len(),
    };
    (shrunk, stats)
}

/// Split `len` items into `granularity` near-equal contiguous chunks.
fn chunk_bounds(len: usize, granularity: usize) -> Vec<(usize, usize)> {
    let g = granularity.min(len).max(1);
    let base = len / g;
    let extra = len % g;
    let mut bounds = Vec::with_capacity(g);
    let mut lo = 0;
    for i in 0..g {
        let hi = lo + base + usize::from(i < extra);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

/// True when `small` is a subsequence of `big` — the shrinker's
/// structural guarantee, shared with the proptest suite.
pub fn is_subsequence(small: &FaultSchedule, big: &FaultSchedule) -> bool {
    let mut it = big.events.iter();
    small
        .events
        .iter()
        .all(|ev| it.by_ref().any(|candidate| candidate == ev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosEvent;
    use ekbd_sim::{ProcessId, Time};

    fn crash(i: usize) -> ChaosEvent {
        ChaosEvent::Crash {
            process: ProcessId::from(i),
            at: Time(100 + i as u64),
        }
    }

    fn sched(n: usize) -> FaultSchedule {
        let mut s = FaultSchedule::new("ring-32", 1, Time(10_000));
        for i in 0..n {
            s.events.push(crash(i));
        }
        s
    }

    /// Oracle: fails iff the candidate still contains every culprit.
    fn contains_all(culprits: &[usize]) -> impl Fn(&FaultSchedule) -> bool + '_ {
        move |s: &FaultSchedule| culprits.iter().all(|&i| s.events.contains(&crash(i)))
    }

    #[test]
    fn single_culprit_shrinks_to_one_event() {
        let original = sched(16);
        let (shrunk, stats) = shrink(&original, contains_all(&[11]));
        assert_eq!(shrunk.events, vec![crash(11)]);
        assert_eq!(stats.original, 16);
        assert_eq!(stats.shrunk, 1);
        assert!(stats.tests > 0);
        assert!(is_subsequence(&shrunk, &original));
        assert_eq!(shrunk.seed, original.seed);
        assert_eq!(shrunk.topology, original.topology);
    }

    #[test]
    fn interacting_culprits_survive_together() {
        let original = sched(20);
        let (shrunk, _) = shrink(&original, contains_all(&[3, 17]));
        assert_eq!(shrunk.events, vec![crash(3), crash(17)]);
        assert!(is_subsequence(&shrunk, &original));
    }

    #[test]
    fn result_is_one_minimal() {
        let culprits = [2, 9, 13];
        let original = sched(14);
        let oracle = contains_all(&culprits);
        let (shrunk, _) = shrink(&original, &oracle);
        assert!(oracle(&shrunk));
        for skip in 0..shrunk.events.len() {
            let mut fewer = shrunk.events.clone();
            fewer.remove(skip);
            assert!(
                !oracle(&shrunk.with_events(fewer)),
                "dropping event {skip} should stop the failure"
            );
        }
    }

    #[test]
    fn shrink_on_empty_and_singleton_is_identity() {
        let empty = sched(0);
        let (s, stats) = shrink(&empty, |_| true);
        assert!(s.events.is_empty());
        assert_eq!(stats.tests, 0);
        let one = sched(1);
        let (s, _) = shrink(&one, |_| true);
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for len in 1..20 {
            for g in 1..25 {
                let bounds = chunk_bounds(len, g);
                assert_eq!(bounds.first().unwrap().0, 0);
                assert_eq!(bounds.last().unwrap().1, len);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                    assert!(w[0].0 < w[0].1);
                }
            }
        }
    }
}
