//! Coverage accounting for exploration campaigns: which combinations of
//! fault axes have been exercised on which topology.
//!
//! The unit of coverage is an *axis-combination mask* per topology: a
//! schedule mixing channel noise with a crash on `ring-8` marks
//! `{channel, crash}` as visited there. The report renders the visited
//! combinations and — the actionable part — which of the ten axis *pairs*
//! a campaign never touched, since pairwise composition is where
//! single-axis gates (E14–E17) are blind.

use crate::schedule::{Axis, FaultSchedule};
use std::collections::{BTreeMap, BTreeSet};

/// Accumulated coverage across one exploration campaign.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    seen: BTreeMap<String, BTreeSet<u8>>,
}

impl Coverage {
    /// Empty coverage.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Record one executed schedule.
    pub fn record(&mut self, schedule: &FaultSchedule) {
        self.seen
            .entry(schedule.topology.clone())
            .or_default()
            .insert(schedule.axis_mask());
    }

    /// Number of distinct (topology, axis-combination) cells visited.
    pub fn cells(&self) -> usize {
        self.seen.values().map(BTreeSet::len).sum()
    }

    /// Axis pairs exercised together on at least one topology.
    pub fn pairs_covered(&self) -> BTreeSet<(Axis, Axis)> {
        let mut pairs = BTreeSet::new();
        for masks in self.seen.values() {
            for &mask in masks {
                for (i, a) in Axis::ALL.iter().enumerate() {
                    for b in &Axis::ALL[i + 1..] {
                        if mask & a.bit() != 0 && mask & b.bit() != 0 {
                            pairs.insert((*a, *b));
                        }
                    }
                }
            }
        }
        pairs
    }

    /// Axis pairs no schedule in the campaign ever combined.
    pub fn pairs_missing(&self) -> Vec<(Axis, Axis)> {
        let covered = self.pairs_covered();
        let mut missing = Vec::new();
        for (i, a) in Axis::ALL.iter().enumerate() {
            for b in &Axis::ALL[i + 1..] {
                if !covered.contains(&(*a, *b)) {
                    missing.push((*a, *b));
                }
            }
        }
        missing
    }

    /// Human-readable campaign summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("coverage: axis combinations exercised per topology\n");
        for (topo, masks) in &self.seen {
            let combos: Vec<String> = masks.iter().map(|&m| combo_name(m)).collect();
            out.push_str(&format!("  {topo}: {}\n", combos.join(", ")));
        }
        let missing = self.pairs_missing();
        if missing.is_empty() {
            out.push_str("  all 10 axis pairs exercised\n");
        } else {
            let names: Vec<String> = missing
                .iter()
                .map(|(a, b)| format!("{}+{}", a.name(), b.name()))
                .collect();
            out.push_str(&format!("  pairs never combined: {}\n", names.join(", ")));
        }
        out
    }
}

/// Render an axis mask as `channel+crash+storage`.
pub fn combo_name(mask: u8) -> String {
    let names: Vec<&str> = Axis::ALL
        .into_iter()
        .filter(|a| mask & a.bit() != 0)
        .map(Axis::name)
        .collect();
    if names.is_empty() {
        "none".to_string()
    } else {
        names.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Intensity;

    #[test]
    fn coverage_accumulates_and_reports() {
        let mut cov = Coverage::new();
        for seed in 0..32 {
            let s = FaultSchedule::generate("ring-8", seed, &Intensity::heavy()).unwrap();
            cov.record(&s);
        }
        assert!(cov.cells() >= 2);
        assert!(!cov.pairs_covered().is_empty());
        let text = cov.summary();
        assert!(text.contains("ring-8"));
        // Recording the same schedules again changes nothing.
        let cells = cov.cells();
        for seed in 0..32 {
            let s = FaultSchedule::generate("ring-8", seed, &Intensity::heavy()).unwrap();
            cov.record(&s);
        }
        assert_eq!(cov.cells(), cells);
    }

    #[test]
    fn combo_names_follow_axis_order() {
        assert_eq!(combo_name(0), "none");
        assert_eq!(
            combo_name(Axis::Channel.bit() | Axis::Storage.bit()),
            "channel+storage"
        );
        assert_eq!(combo_name(0b11111), "channel+partition+crash+storage+churn");
    }
}
