//! Text codec for [`FaultSchedule`]: a line-oriented, diff-friendly
//! format so failing schedules can be committed as regression artifacts
//! and replayed from the CLI (`ekbd chaos --replay FILE`).
//!
//! Grammar (one directive per line, `#` starts a comment):
//!
//! ```text
//! ekbd-chaos v1
//! topology ring-8
//! seed 42
//! horizon 120000
//! expect stalled                  # optional
//! noise loss=0.05 dup=0.02 reorder=0.1 window=8
//! partition 3,4 500 3000          # side start heal
//! crash 2 700
//! recover 2 1400 corrupt          # trailing `corrupt` optional
//! corrupt 5 900
//! storage 2 torn                  # torn | rot | stale | dropped
//! join 7 800
//! leave 6 1200 graceful           # graceful | crash
//! ```
//!
//! Floats are emitted with Rust's shortest round-trip formatting, so
//! `encode ∘ parse` is the identity on every schedule the generator can
//! produce.

use crate::schedule::{ChannelNoise, ChaosEvent, FaultSchedule, RunClass, ScheduleError};
use ekbd_journal::StorageFault;
use ekbd_sim::{ProcessId, Time};
use std::fmt::Write as _;
use std::path::Path;

/// Magic first line of every schedule file.
pub const HEADER: &str = "ekbd-chaos v1";

/// Serialize a schedule to its canonical text form.
pub fn encode(schedule: &FaultSchedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "topology {}", schedule.topology);
    let _ = writeln!(out, "seed {}", schedule.seed);
    let _ = writeln!(out, "horizon {}", schedule.horizon.0);
    if let Some(class) = schedule.expect {
        let _ = writeln!(out, "expect {}", class.as_str());
    }
    for ev in &schedule.events {
        match ev {
            ChaosEvent::Noise(n) => {
                let _ = writeln!(
                    out,
                    "noise loss={:?} dup={:?} reorder={:?} window={}",
                    n.loss, n.dup, n.reorder, n.reorder_window
                );
            }
            ChaosEvent::Partition { side, start, heal } => {
                let ids: Vec<String> = side.iter().map(|p| p.0.to_string()).collect();
                let _ = writeln!(out, "partition {} {} {}", ids.join(","), start.0, heal.0);
            }
            ChaosEvent::Crash { process, at } => {
                let _ = writeln!(out, "crash {} {}", process.0, at.0);
            }
            ChaosEvent::Recover {
                process,
                at,
                corrupt,
            } => {
                let tail = if *corrupt { " corrupt" } else { "" };
                let _ = writeln!(out, "recover {} {}{tail}", process.0, at.0);
            }
            ChaosEvent::Corrupt { process, at } => {
                let _ = writeln!(out, "corrupt {} {}", process.0, at.0);
            }
            ChaosEvent::Storage { process, mode } => {
                let _ = writeln!(out, "storage {} {}", process.0, storage_name(*mode));
            }
            ChaosEvent::Join { process, at } => {
                let _ = writeln!(out, "join {} {}", process.0, at.0);
            }
            ChaosEvent::Leave {
                process,
                at,
                graceful,
            } => {
                let kind = if *graceful { "graceful" } else { "crash" };
                let _ = writeln!(out, "leave {} {} {kind}", process.0, at.0);
            }
        }
    }
    out
}

fn storage_name(mode: StorageFault) -> &'static str {
    match mode {
        StorageFault::TornWrite => "torn",
        StorageFault::BitRot => "rot",
        StorageFault::StaleSnapshot => "stale",
        StorageFault::DroppedSync => "dropped",
    }
}

fn storage_mode(name: &str) -> Option<StorageFault> {
    match name {
        "torn" => Some(StorageFault::TornWrite),
        "rot" => Some(StorageFault::BitRot),
        "stale" => Some(StorageFault::StaleSnapshot),
        "dropped" => Some(StorageFault::DroppedSync),
        _ => None,
    }
}

/// Parse the canonical text form back into a schedule.
///
/// Parsing only checks shape; call [`FaultSchedule::validate`] on the
/// result before running it.
pub fn parse(text: &str) -> Result<FaultSchedule, ScheduleError> {
    let err = |line: usize, msg: &str| ScheduleError::Parse {
        line,
        msg: msg.to_string(),
    };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (first_no, first) = lines.next().ok_or_else(|| err(1, "empty schedule"))?;
    if first != HEADER {
        return Err(err(first_no, "missing `ekbd-chaos v1` header"));
    }

    let mut topology: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut horizon: Option<Time> = None;
    let mut expect: Option<RunClass> = None;
    let mut events = Vec::new();

    for (no, line) in lines {
        let mut words = line.split_whitespace();
        let key = words.next().unwrap_or("");
        let rest: Vec<&str> = words.collect();
        let one = |i: usize| -> Result<&str, ScheduleError> {
            rest.get(i).copied().ok_or_else(|| err(no, "missing field"))
        };
        let num = |i: usize| -> Result<u64, ScheduleError> {
            one(i)?.parse().map_err(|_| err(no, "expected a number"))
        };
        let proc = |i: usize| -> Result<ProcessId, ScheduleError> { Ok(ProcessId(num(i)? as u32)) };
        match key {
            "topology" => topology = Some(one(0)?.to_string()),
            "seed" => seed = Some(num(0)?),
            "horizon" => horizon = Some(Time(num(0)?)),
            "expect" => {
                expect = Some(RunClass::parse(one(0)?).ok_or_else(|| err(no, "unknown run class"))?)
            }
            "noise" => {
                let mut noise = ChannelNoise::inert();
                for field in &rest {
                    let (k, v) = field
                        .split_once('=')
                        .ok_or_else(|| err(no, "noise fields are key=value"))?;
                    match k {
                        "loss" => {
                            noise.loss = v.parse().map_err(|_| err(no, "bad loss"))?;
                        }
                        "dup" => {
                            noise.dup = v.parse().map_err(|_| err(no, "bad dup"))?;
                        }
                        "reorder" => {
                            noise.reorder = v.parse().map_err(|_| err(no, "bad reorder"))?;
                        }
                        "window" => {
                            noise.reorder_window = v.parse().map_err(|_| err(no, "bad window"))?;
                        }
                        _ => return Err(err(no, "unknown noise field")),
                    }
                }
                events.push(ChaosEvent::Noise(noise));
            }
            "partition" => {
                let side: Result<Vec<ProcessId>, _> = one(0)?
                    .split(',')
                    .map(|s| {
                        s.parse::<u32>()
                            .map(ProcessId)
                            .map_err(|_| err(no, "bad partition side"))
                    })
                    .collect();
                events.push(ChaosEvent::Partition {
                    side: side?,
                    start: Time(num(1)?),
                    heal: Time(num(2)?),
                });
            }
            "crash" => events.push(ChaosEvent::Crash {
                process: proc(0)?,
                at: Time(num(1)?),
            }),
            "recover" => {
                let corrupt = match rest.get(2) {
                    None => false,
                    Some(&"corrupt") => true,
                    Some(_) => return Err(err(no, "trailing field must be `corrupt`")),
                };
                events.push(ChaosEvent::Recover {
                    process: proc(0)?,
                    at: Time(num(1)?),
                    corrupt,
                });
            }
            "corrupt" => events.push(ChaosEvent::Corrupt {
                process: proc(0)?,
                at: Time(num(1)?),
            }),
            "storage" => events.push(ChaosEvent::Storage {
                process: proc(0)?,
                mode: storage_mode(one(1)?)
                    .ok_or_else(|| err(no, "storage mode is torn|rot|stale|dropped"))?,
            }),
            "join" => events.push(ChaosEvent::Join {
                process: proc(0)?,
                at: Time(num(1)?),
            }),
            "leave" => {
                let graceful = match one(2)? {
                    "graceful" => true,
                    "crash" => false,
                    _ => return Err(err(no, "leave kind is graceful|crash")),
                };
                events.push(ChaosEvent::Leave {
                    process: proc(0)?,
                    at: Time(num(1)?),
                    graceful,
                });
            }
            _ => return Err(err(no, "unknown directive")),
        }
    }

    Ok(FaultSchedule {
        topology: topology.ok_or_else(|| err(0, "missing `topology` line"))?,
        seed: seed.ok_or_else(|| err(0, "missing `seed` line"))?,
        horizon: horizon.ok_or_else(|| err(0, "missing `horizon` line"))?,
        events,
        expect,
    })
}

/// Write a schedule to `path` in canonical form.
pub fn write_artifact(schedule: &FaultSchedule, path: &Path) -> Result<(), ScheduleError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| ScheduleError::Io(e.to_string()))?;
    }
    std::fs::write(path, encode(schedule)).map_err(|e| ScheduleError::Io(e.to_string()))
}

/// Read and parse a schedule from `path`.
pub fn read_artifact(path: &Path) -> Result<FaultSchedule, ScheduleError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScheduleError::Io(format!("{}: {e}", path.display())))?;
    parse(&text)
}

/// The exact command line that reproduces a failing schedule, printed
/// next to every invariant failure so the repro is one paste away.
pub fn replay_command(path: &Path) -> String {
    format!("ekbd chaos --replay {}", path.display())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChannelNoise;

    fn sample() -> FaultSchedule {
        FaultSchedule::new("ring-8", 42, Time(120_000))
            .event(ChaosEvent::Noise(ChannelNoise {
                loss: 0.05,
                dup: 0.02,
                reorder: 0.125,
                reorder_window: 8,
            }))
            .event(ChaosEvent::Partition {
                side: vec![ProcessId(3), ProcessId(4)],
                start: Time(500),
                heal: Time(3_000),
            })
            .event(ChaosEvent::Crash {
                process: ProcessId(2),
                at: Time(700),
            })
            .event(ChaosEvent::Recover {
                process: ProcessId(2),
                at: Time(1_400),
                corrupt: true,
            })
            .event(ChaosEvent::Corrupt {
                process: ProcessId(5),
                at: Time(900),
            })
            .event(ChaosEvent::Storage {
                process: ProcessId(2),
                mode: StorageFault::StaleSnapshot,
            })
            .event(ChaosEvent::Join {
                process: ProcessId(7),
                at: Time(800),
            })
            .event(ChaosEvent::Leave {
                process: ProcessId(6),
                at: Time(1_200),
                graceful: false,
            })
            .expecting(RunClass::WaitFree)
    }

    #[test]
    fn encode_parse_round_trips() {
        let s = sample();
        let text = encode(&s);
        let back = parse(&text).unwrap();
        assert_eq!(back, s);
        // Canonical form is a fixpoint.
        assert_eq!(encode(&back), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
# a regression artifact
ekbd-chaos v1

topology clique-6   # the canonical clique
seed 9
horizon 50000
crash 1 700   # take one down
";
        let s = parse(text).unwrap();
        assert_eq!(s.topology, "clique-6");
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.expect, None);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "ekbd-chaos v1\ntopology ring-8\nseed 1\nhorizon 100\nfrobnicate 1 2\n";
        match parse(text) {
            Err(ScheduleError::Parse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("not-a-header\n").is_err());
        let no_seed = "ekbd-chaos v1\ntopology ring-8\nhorizon 100\n";
        assert!(matches!(parse(no_seed), Err(ScheduleError::Parse { .. })));
    }

    #[test]
    fn artifact_files_round_trip() {
        let dir = std::env::temp_dir().join("ekbd-chaos-codec-test");
        let path = dir.join("sample.chaos");
        let s = sample();
        write_artifact(&s, &path).unwrap();
        let back = read_artifact(&path).unwrap();
        assert_eq!(back, s);
        assert!(replay_command(&path).starts_with("ekbd chaos --replay "));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
