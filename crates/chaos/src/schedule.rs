//! The unified fault schedule: one serializable description composing
//! every fault axis the workspace knows how to inject.
//!
//! A [`FaultSchedule`] is a flat, ordered list of [`ChaosEvent`]s plus a
//! topology spec, a seed, and a horizon. Flatness is the point: the
//! delta-debugging shrinker (see [`crate::shrink`]) works by *dropping
//! events*, so every independently-removable disturbance must be its own
//! event. The schedule compiles down to the per-axis plans the simulator
//! already understands — [`FaultPlan`], a crash list,
//! [`StorageFaultPlan`], and [`MembershipPlan`] — via [`FaultSchedule::parts`].

use ekbd_graph::{random, topology, ConflictGraph};
use ekbd_journal::{StorageFault, StorageFaultPlan};
use ekbd_sim::{FaultPlan, FaultPlanError, MembershipPlan, MembershipPlanError, ProcessId, Time};
use std::fmt;

/// Global channel-noise dial: sustained loss / duplication / reordering
/// applied to every link for the whole run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelNoise {
    /// Per-message loss probability in `[0, 1]`.
    pub loss: f64,
    /// Per-message duplication probability in `[0, 1]`.
    pub dup: f64,
    /// Per-message reorder probability in `[0, 1]`.
    pub reorder: f64,
    /// Maximum delivery-slot displacement for reordered messages.
    pub reorder_window: u64,
}

impl ChannelNoise {
    /// Noise that does nothing.
    pub fn inert() -> Self {
        ChannelNoise {
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_window: 0,
        }
    }
}

/// One independently-droppable disturbance in a [`FaultSchedule`].
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosEvent {
    /// Set the global channel-noise dial (at most one per schedule).
    Noise(ChannelNoise),
    /// Partition `side` from the rest of the graph during `[start, heal)`.
    Partition {
        /// Processes on the minority side of the cut.
        side: Vec<ProcessId>,
        /// When the partition forms.
        start: Time,
        /// When it heals.
        heal: Time,
    },
    /// Crash-stop `process` at `at`.
    Crash {
        /// The victim.
        process: ProcessId,
        /// Crash instant.
        at: Time,
    },
    /// Restart a previously crashed `process` at `at`.
    Recover {
        /// The restarting process.
        process: ProcessId,
        /// Restart instant.
        at: Time,
        /// Restart from corrupted (arbitrary) volatile state.
        corrupt: bool,
    },
    /// Transiently corrupt the volatile state of a live `process`.
    Corrupt {
        /// The victim.
        process: ProcessId,
        /// Corruption instant.
        at: Time,
    },
    /// Damage the stable storage `process` will read back at restart.
    Storage {
        /// The victim (must also restart somewhere in the schedule).
        process: ProcessId,
        /// How the storage betrays it.
        mode: StorageFault,
    },
    /// An initially-absent `process` joins the system at `at`.
    Join {
        /// The joiner.
        process: ProcessId,
        /// Join instant.
        at: Time,
    },
    /// A present `process` leaves the system permanently at `at`.
    Leave {
        /// The departing process.
        process: ProcessId,
        /// Departure instant.
        at: Time,
        /// Graceful leaves drain; non-graceful ones crash-stop.
        graceful: bool,
    },
}

impl ChaosEvent {
    /// The fault axis this event belongs to, for coverage accounting.
    pub fn axis(&self) -> Axis {
        match self {
            ChaosEvent::Noise(_) => Axis::Channel,
            ChaosEvent::Partition { .. } => Axis::Partition,
            ChaosEvent::Crash { .. } | ChaosEvent::Recover { .. } | ChaosEvent::Corrupt { .. } => {
                Axis::Crash
            }
            ChaosEvent::Storage { .. } => Axis::Storage,
            ChaosEvent::Join { .. } | ChaosEvent::Leave { .. } => Axis::Churn,
        }
    }

    /// The last instant at which this event disturbs the run, if it is
    /// tied to a point in time (noise and storage damage persist and
    /// count as no-time here; noise is covered by the link layer, storage
    /// by the recovery it rides on).
    pub fn last_disturbance(&self) -> Option<Time> {
        match self {
            ChaosEvent::Noise(_) | ChaosEvent::Storage { .. } => None,
            ChaosEvent::Partition { heal, .. } => Some(*heal),
            ChaosEvent::Crash { at, .. }
            | ChaosEvent::Recover { at, .. }
            | ChaosEvent::Corrupt { at, .. }
            | ChaosEvent::Join { at, .. }
            | ChaosEvent::Leave { at, .. } => Some(*at),
        }
    }
}

/// One of the five fault axes a schedule can exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Axis {
    /// Sustained channel noise (loss / duplication / reordering).
    Channel,
    /// Transient network partitions.
    Partition,
    /// Crash-stop, restart, and state corruption.
    Crash,
    /// Stable-storage damage observed at restart.
    Storage,
    /// Dynamic membership (joins and leaves).
    Churn,
}

impl Axis {
    /// All axes, in display order.
    pub const ALL: [Axis; 5] = [
        Axis::Channel,
        Axis::Partition,
        Axis::Crash,
        Axis::Storage,
        Axis::Churn,
    ];

    /// Bit used in coverage masks.
    pub fn bit(self) -> u8 {
        match self {
            Axis::Channel => 1 << 0,
            Axis::Partition => 1 << 1,
            Axis::Crash => 1 << 2,
            Axis::Storage => 1 << 3,
            Axis::Churn => 1 << 4,
        }
    }

    /// Short human name, used by the coverage report.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Channel => "channel",
            Axis::Partition => "partition",
            Axis::Crash => "crash",
            Axis::Storage => "storage",
            Axis::Churn => "churn",
        }
    }
}

/// How a classified chaos run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunClass {
    /// Every admitted hungry session ate; no post-stabilization
    /// exclusion mistakes; reruns are byte-identical.
    WaitFree,
    /// Two live neighbors overlapped in their critical sections after
    /// the stabilization point.
    ExclusionMistake,
    /// Some live process starved (hungry at the horizon with no eat).
    Stalled,
    /// A deterministic rerun of the same schedule diverged.
    NonDeterministic,
}

impl RunClass {
    /// Stable string form, used in artifacts and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            RunClass::WaitFree => "wait-free",
            RunClass::ExclusionMistake => "exclusion-mistake",
            RunClass::Stalled => "stalled",
            RunClass::NonDeterministic => "non-deterministic",
        }
    }

    /// Parse the stable string form back.
    pub fn parse(s: &str) -> Option<RunClass> {
        match s {
            "wait-free" => Some(RunClass::WaitFree),
            "exclusion-mistake" => Some(RunClass::ExclusionMistake),
            "stalled" => Some(RunClass::Stalled),
            "non-deterministic" => Some(RunClass::NonDeterministic),
            _ => None,
        }
    }

    /// True for every class except [`RunClass::WaitFree`].
    pub fn is_failure(self) -> bool {
        self != RunClass::WaitFree
    }
}

impl fmt::Display for RunClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a schedule is rejected before it ever runs.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// The compiled [`FaultPlan`] is self-contradictory.
    Fault(FaultPlanError),
    /// The compiled [`MembershipPlan`] is self-contradictory.
    Membership(MembershipPlanError),
    /// A storage fault targets a process that never restarts, so the
    /// damage could never be observed.
    StorageFaultWithoutRestart {
        /// The process with damaged storage.
        process: ProcessId,
    },
    /// A crash/recover/corrupt event targets a process that joins late
    /// or leaves, where the two schedules' semantics collide.
    FaultOnChurned {
        /// The doubly-targeted process.
        process: ProcessId,
    },
    /// More than one global channel-noise dial.
    DuplicateNoise,
    /// The topology spec does not name a known graph family.
    BadTopology {
        /// The offending spec string.
        spec: String,
    },
    /// A codec line failed to parse.
    Parse {
        /// 1-based line number in the schedule text.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Reading or writing a schedule file failed.
    Io(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Fault(e) => write!(f, "fault plan: {e}"),
            ScheduleError::Membership(e) => write!(f, "membership plan: {e}"),
            ScheduleError::StorageFaultWithoutRestart { process } => write!(
                f,
                "storage fault for process {process} which never restarts"
            ),
            ScheduleError::FaultOnChurned { process } => write!(
                f,
                "crash-axis event targets churned (joining/leaving) process {process}"
            ),
            ScheduleError::DuplicateNoise => {
                write!(f, "more than one channel-noise dial in one schedule")
            }
            ScheduleError::BadTopology { spec } => write!(f, "unknown topology spec `{spec}`"),
            ScheduleError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ScheduleError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<FaultPlanError> for ScheduleError {
    fn from(e: FaultPlanError) -> Self {
        ScheduleError::Fault(e)
    }
}

impl From<MembershipPlanError> for ScheduleError {
    fn from(e: MembershipPlanError) -> Self {
        ScheduleError::Membership(e)
    }
}

/// The per-axis plans a schedule compiles down to, in exactly the form
/// `ekbd-harness`'s `Scenario` consumes them.
#[derive(Clone, Debug, Default)]
pub struct ScheduleParts {
    /// Channel faults, partitions, recoveries, corruptions.
    pub faults: FaultPlan,
    /// Crash-stop events (process, instant).
    pub crashes: Vec<(ProcessId, Time)>,
    /// Stable-storage damage.
    pub storage: StorageFaultPlan,
    /// Joins and leaves.
    pub membership: MembershipPlan,
}

/// A complete, serializable, replayable chaos schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// Topology spec, e.g. `ring-8`, `grid-3x4`, `gnp-12-0.3`.
    pub topology: String,
    /// Master seed: drives the simulator, the storage-fault entropy,
    /// and (for generated schedules) the generator itself.
    pub seed: u64,
    /// Run horizon in ticks.
    pub horizon: Time,
    /// Ordered disturbances; the unit the shrinker drops.
    pub events: Vec<ChaosEvent>,
    /// Expected run class, if this schedule is a regression artifact.
    pub expect: Option<RunClass>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule over `topology`.
    pub fn new(topology: &str, seed: u64, horizon: Time) -> Self {
        FaultSchedule {
            topology: topology.to_string(),
            seed,
            horizon,
            events: Vec::new(),
            expect: None,
        }
    }

    /// The same schedule with a different event list — the shrinker's
    /// candidate constructor.
    pub fn with_events(&self, events: Vec<ChaosEvent>) -> Self {
        FaultSchedule {
            events,
            ..self.clone()
        }
    }

    /// Append one event (builder style).
    pub fn event(mut self, ev: ChaosEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Tag the schedule with the class it is expected to reproduce.
    pub fn expecting(mut self, class: RunClass) -> Self {
        self.expect = Some(class);
        self
    }

    /// Build the conflict graph named by the topology spec.
    pub fn build_topology(&self) -> Result<ConflictGraph, ScheduleError> {
        parse_topology(&self.topology)
    }

    /// Compile the flat event list into per-axis plans.
    ///
    /// This never fails: contradiction detection is [`Self::validate`]'s
    /// job, and the shrinker relies on being able to build candidate
    /// parts cheaply before deciding whether they are even well-formed.
    pub fn parts(&self) -> ScheduleParts {
        let mut faults = FaultPlan::new();
        let mut crashes = Vec::new();
        let mut storage = StorageFaultPlan::new().seed(self.seed);
        let mut membership = MembershipPlan::new();
        for ev in &self.events {
            match ev {
                ChaosEvent::Noise(noise) => {
                    faults = faults
                        .loss(noise.loss)
                        .duplication(noise.dup)
                        .reorder(noise.reorder, noise.reorder_window);
                }
                ChaosEvent::Partition { side, start, heal } => {
                    faults = faults.partition(side.clone(), *start, *heal);
                }
                ChaosEvent::Crash { process, at } => crashes.push((*process, *at)),
                ChaosEvent::Recover {
                    process,
                    at,
                    corrupt,
                } => {
                    faults = if *corrupt {
                        faults.recover_corrupted(*process, *at)
                    } else {
                        faults.recover(*process, *at)
                    };
                }
                ChaosEvent::Corrupt { process, at } => {
                    faults = faults.corrupt_state(*process, *at);
                }
                ChaosEvent::Storage { process, mode } => {
                    storage = storage.fault(*process, *mode);
                }
                ChaosEvent::Join { process, at } => {
                    membership = membership.join(*process, *at);
                }
                ChaosEvent::Leave {
                    process,
                    at,
                    graceful,
                } => {
                    membership = if *graceful {
                        membership.leave(*process, *at)
                    } else {
                        membership.crash_leave(*process, *at)
                    };
                }
            }
        }
        ScheduleParts {
            faults,
            crashes,
            storage,
            membership,
        }
    }

    /// Reject contradictory schedules with a distinct error per
    /// contradiction, instead of letting the simulator misbehave
    /// silently. Checks the topology spec, both per-axis plan
    /// validators, and the cross-axis rules that only the composed view
    /// can see (storage faults without a restart, crash-axis events on
    /// churned processes, duplicate noise dials).
    pub fn validate(&self) -> Result<(), ScheduleError> {
        let graph = self.build_topology()?;
        self.validate_for(graph.len())
    }

    /// [`Self::validate`] against an explicit population size, for
    /// callers that already built the graph.
    pub fn validate_for(&self, n: usize) -> Result<(), ScheduleError> {
        let mut noise_seen = false;
        let mut partitions = 0usize;
        for ev in &self.events {
            match ev {
                ChaosEvent::Noise(_) => {
                    if noise_seen {
                        return Err(ScheduleError::DuplicateNoise);
                    }
                    noise_seen = true;
                }
                // Checked up front because FaultPlan::partition asserts
                // start < heal; parts() must not panic on codec input.
                ChaosEvent::Partition { start, heal, .. } => {
                    if *heal <= *start {
                        return Err(ScheduleError::Fault(FaultPlanError::PartitionNeverHeals {
                            index: partitions,
                        }));
                    }
                    partitions += 1;
                }
                _ => {}
            }
        }

        let parts = self.parts();
        parts.faults.validate(n, &parts.crashes)?;
        parts.membership.validate(n)?;

        let steady: Vec<ProcessId> = parts.membership.continuously_present(n);
        for ev in &self.events {
            match ev {
                ChaosEvent::Crash { process, .. }
                | ChaosEvent::Recover { process, .. }
                | ChaosEvent::Corrupt { process, .. }
                    if process.index() < n && !steady.contains(process) =>
                {
                    return Err(ScheduleError::FaultOnChurned { process: *process });
                }
                ChaosEvent::Storage { process, .. } => {
                    let restarts = self.events.iter().any(
                        |e| matches!(e, ChaosEvent::Recover { process: p, .. } if p == process),
                    );
                    if !restarts {
                        return Err(ScheduleError::StorageFaultWithoutRestart {
                            process: *process,
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The last instant at which the schedule disturbs the run; the
    /// stabilization point the classifier uses is measured from here.
    pub fn last_disturbance(&self) -> Time {
        self.events
            .iter()
            .filter_map(ChaosEvent::last_disturbance)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Bitmask of [`Axis`] values this schedule exercises.
    pub fn axis_mask(&self) -> u8 {
        self.events.iter().fold(0, |m, ev| m | ev.axis().bit())
    }

    /// The distinct axes this schedule exercises, in display order.
    pub fn axes(&self) -> Vec<Axis> {
        let mask = self.axis_mask();
        Axis::ALL
            .into_iter()
            .filter(|a| mask & a.bit() != 0)
            .collect()
    }

    /// True when the schedule injects channel noise or partitions, i.e.
    /// when the run needs the retransmitting link layer to stay live.
    pub fn needs_link(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(ev, ChaosEvent::Noise(n) if n.loss > 0.0 || n.dup > 0.0 || n.reorder > 0.0)
                || matches!(ev, ChaosEvent::Partition { .. })
        })
    }

    /// True when the schedule damages stable storage, i.e. when the run
    /// must journal so the damage has something to bite.
    pub fn needs_journal(&self) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(ev, ChaosEvent::Storage { .. }))
    }
}

/// Parse a dash-separated topology spec into a conflict graph.
///
/// Accepted families (sizes are decimal): `ring-N`, `path-N`, `star-N`,
/// `clique-N`, `wheel-N`, `tree-N`, `hypercube-D`, `grid-RxC`,
/// `torus-RxC`, and `gnp-N-P[-SEED]` (seed defaults to 9, matching the
/// experiment suite's canonical random graph).
pub fn parse_topology(spec: &str) -> Result<ConflictGraph, ScheduleError> {
    let bad = || ScheduleError::BadTopology {
        spec: spec.to_string(),
    };
    let (family, rest) = spec.split_once('-').ok_or_else(bad)?;
    let size = |s: &str| s.parse::<usize>().map_err(|_| bad());
    let dims = |s: &str| -> Result<(usize, usize), ScheduleError> {
        let (r, c) = s.split_once('x').ok_or_else(bad)?;
        Ok((size(r)?, size(c)?))
    };
    let graph = match family {
        "ring" => topology::ring(size(rest)?),
        "path" => topology::path(size(rest)?),
        "star" => topology::star(size(rest)?),
        "clique" => topology::clique(size(rest)?),
        "wheel" => topology::wheel(size(rest)?),
        "tree" => topology::binary_tree(size(rest)?),
        "hypercube" => topology::hypercube(size(rest)?.try_into().map_err(|_| bad())?),
        "grid" => {
            let (r, c) = dims(rest)?;
            topology::grid(r, c)
        }
        "torus" => {
            let (r, c) = dims(rest)?;
            topology::torus(r, c)
        }
        "gnp" => {
            let mut it = rest.splitn(3, '-');
            let n = size(it.next().ok_or_else(bad)?)?;
            let p: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let seed: u64 = match it.next() {
                Some(s) => s.parse().map_err(|_| bad())?,
                None => 9,
            };
            random::connected_gnp(n, p, seed)
        }
        _ => return Err(bad()),
    };
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn topology_specs_parse() {
        assert_eq!(parse_topology("ring-8").unwrap().len(), 8);
        assert_eq!(parse_topology("clique-6").unwrap().len(), 6);
        assert_eq!(parse_topology("grid-3x4").unwrap().len(), 12);
        assert_eq!(parse_topology("torus-3x4").unwrap().len(), 12);
        assert_eq!(parse_topology("gnp-12-0.3").unwrap().len(), 12);
        assert_eq!(parse_topology("gnp-12-0.3-9").unwrap().len(), 12);
        assert!(parse_topology("moebius-8").is_err());
        assert!(parse_topology("ring").is_err());
        assert!(parse_topology("grid-3").is_err());
    }

    #[test]
    fn parts_compile_every_axis() {
        let s = FaultSchedule::new("ring-8", 7, Time(100_000))
            .event(ChaosEvent::Noise(ChannelNoise {
                loss: 0.05,
                dup: 0.02,
                reorder: 0.1,
                reorder_window: 8,
            }))
            .event(ChaosEvent::Partition {
                side: vec![p(2)],
                start: Time(1_000),
                heal: Time(4_000),
            })
            .event(ChaosEvent::Crash {
                process: p(5),
                at: Time(700),
            })
            .event(ChaosEvent::Recover {
                process: p(5),
                at: Time(1_500),
                corrupt: true,
            })
            .event(ChaosEvent::Storage {
                process: p(5),
                mode: StorageFault::TornWrite,
            })
            .event(ChaosEvent::Join {
                process: p(7),
                at: Time(2_000),
            })
            .event(ChaosEvent::Leave {
                process: p(6),
                at: Time(3_000),
                graceful: true,
            });
        s.validate().unwrap();
        let parts = s.parts();
        assert_eq!(parts.crashes, vec![(p(5), Time(700))]);
        assert_eq!(parts.faults.recoveries.len(), 1);
        assert_eq!(parts.faults.partitions.len(), 1);
        assert!(!parts.storage.is_inert());
        assert_eq!(parts.membership.events().len(), 2);
        assert_eq!(s.axes().len(), 5);
        assert_eq!(s.axis_mask(), 0b11111);
        assert!(s.needs_link());
        assert!(s.needs_journal());
        assert_eq!(s.last_disturbance(), Time(4_000));
    }

    #[test]
    fn validate_cross_axis_contradictions() {
        let storage_only =
            FaultSchedule::new("ring-8", 1, Time(10_000)).event(ChaosEvent::Storage {
                process: p(2),
                mode: StorageFault::BitRot,
            });
        assert_eq!(
            storage_only.validate(),
            Err(ScheduleError::StorageFaultWithoutRestart { process: p(2) })
        );

        let crash_on_joiner = FaultSchedule::new("ring-8", 1, Time(10_000))
            .event(ChaosEvent::Join {
                process: p(3),
                at: Time(500),
            })
            .event(ChaosEvent::Crash {
                process: p(3),
                at: Time(800),
            });
        assert_eq!(
            crash_on_joiner.validate(),
            Err(ScheduleError::FaultOnChurned { process: p(3) })
        );

        let two_dials = FaultSchedule::new("ring-8", 1, Time(10_000))
            .event(ChaosEvent::Noise(ChannelNoise::inert()))
            .event(ChaosEvent::Noise(ChannelNoise::inert()));
        assert_eq!(two_dials.validate(), Err(ScheduleError::DuplicateNoise));

        let dangling_recover =
            FaultSchedule::new("ring-8", 1, Time(10_000)).event(ChaosEvent::Recover {
                process: p(1),
                at: Time(900),
                corrupt: false,
            });
        assert!(matches!(
            dangling_recover.validate(),
            Err(ScheduleError::Fault(
                FaultPlanError::RecoverBeforeCrash { .. }
            ))
        ));
    }

    #[test]
    fn run_class_round_trips() {
        for class in [
            RunClass::WaitFree,
            RunClass::ExclusionMistake,
            RunClass::Stalled,
            RunClass::NonDeterministic,
        ] {
            assert_eq!(RunClass::parse(class.as_str()), Some(class));
        }
        assert_eq!(RunClass::parse("fine"), None);
        assert!(RunClass::Stalled.is_failure());
        assert!(!RunClass::WaitFree.is_failure());
    }
}
