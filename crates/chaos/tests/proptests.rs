//! Property tests for the chaos engine's leaf-side guarantees: the
//! generator only emits valid schedules, the codec round-trips every
//! generated schedule, and the shrinker is a sound, deterministic ddmin.
//!
//! The shrinker property uses a planted-culprit oracle (a candidate
//! "fails" iff it retains a chosen multiset of events) rather than real
//! simulation runs — the leaf crate cannot run anything, and against
//! this oracle the locally-minimal answer is *known*: exactly the
//! culprit set. The harness-side oracle is exercised by E18 and the CLI.

use ekbd_chaos::{codec, is_subsequence, shrink, FaultSchedule, Intensity, RunClass, GEN_WINDOW};
use proptest::prelude::*;

const TOPOLOGIES: &[&str] = &[
    "ring-8",
    "clique-6",
    "grid-3x4",
    "gnp-12-0.3",
    "torus-3x4",
    "star-7",
];

fn intensity(i: usize) -> Intensity {
    match i {
        0 => Intensity::light(),
        1 => Intensity::default_mix(),
        _ => Intensity::heavy(),
    }
}

fn inputs() -> impl Strategy<Value = (usize, u64, usize)> {
    (0..TOPOLOGIES.len(), 0u64..(1u64 << 48), 0usize..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator is constructive-by-validity and a pure function of
    /// `(topology, seed, intensity)`; every schedule composes at least
    /// two axes inside the disturbance window.
    #[test]
    fn generator_only_emits_valid_schedules((t, seed, i) in inputs()) {
        let s = FaultSchedule::generate(TOPOLOGIES[t], seed, &intensity(i)).unwrap();
        s.validate().unwrap();
        prop_assert!(s.axes().len() >= 2);
        prop_assert!(s.last_disturbance() <= GEN_WINDOW);
        let again = FaultSchedule::generate(TOPOLOGIES[t], seed, &intensity(i)).unwrap();
        prop_assert_eq!(&again, &s);
    }

    /// `parse ∘ encode` is the identity on generated schedules, with or
    /// without an `expect` tag, and the canonical form is a fixpoint.
    #[test]
    fn codec_round_trips((t, seed, i) in inputs(), tag in 0usize..5) {
        let mut s = FaultSchedule::generate(TOPOLOGIES[t], seed, &intensity(i)).unwrap();
        s.expect = [
            None,
            Some(RunClass::WaitFree),
            Some(RunClass::ExclusionMistake),
            Some(RunClass::Stalled),
            Some(RunClass::NonDeterministic),
        ][tag];
        let text = codec::encode(&s);
        let back = codec::parse(&text).unwrap();
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(codec::encode(&back), text);
    }

    /// Shrinking against a planted-culprit oracle is sound: the result
    /// still fails, is a subsequence of the original, is deterministic,
    /// and — because every non-culprit event is individually removable
    /// under this oracle — 1-minimality pins it to exactly the culprits.
    #[test]
    fn shrinker_is_sound_deterministic_and_minimal(
        (t, seed, i) in inputs(),
        mask in 1u32..256,
    ) {
        let s = FaultSchedule::generate(TOPOLOGIES[t], seed, &intensity(i)).unwrap();
        // At least one culprit: ddmin (like classic delta debugging)
        // assumes the empty input passes, so an always-failing oracle
        // would legitimately bottom out at one event instead of zero.
        let mut culprit_idx: Vec<usize> = (0..s.events.len())
            .filter(|k| mask & (1 << (k % 8)) != 0)
            .collect();
        if culprit_idx.is_empty() {
            culprit_idx.push(0);
        }
        let culprits: Vec<String> = culprit_idx
            .iter()
            .map(|&k| format!("{:?}", s.events[k]))
            .collect();
        let fails = |c: &FaultSchedule| {
            let mut have: Vec<String> = c.events.iter().map(|e| format!("{e:?}")).collect();
            culprits.iter().all(|cu| {
                match have.iter().position(|h| h == cu) {
                    Some(pos) => {
                        have.remove(pos);
                        true
                    }
                    None => false,
                }
            })
        };
        prop_assert!(fails(&s), "the original must fail its own oracle");
        let (small_a, stats) = shrink(&s, fails);
        let (small_b, _) = shrink(&s, fails);
        prop_assert_eq!(&small_a, &small_b, "ddmin must be deterministic");
        prop_assert!(fails(&small_a), "the shrunk schedule must still fail");
        prop_assert!(is_subsequence(&small_a, &s));
        prop_assert_eq!(small_a.events.len(), culprits.len());
        prop_assert_eq!(stats.shrunk, small_a.events.len());
        prop_assert_eq!(stats.original, s.events.len());
        // Shrinking preserves everything but the event list.
        prop_assert_eq!(&small_a.topology, &s.topology);
        prop_assert_eq!(small_a.seed, s.seed);
        prop_assert_eq!(small_a.horizon, s.horizon);
    }
}
