//! Property tests for the reliable link layer.
//!
//! An adversarial channel driver applies an arbitrary schedule of frame
//! drops, duplications, reorderings (frames are picked out of the in-flight
//! set in arbitrary order), and timer fires. The properties checked are the
//! two halves of exactly-once FIFO delivery between correct processes:
//!
//! * **No duplication, no reordering:** at every instant the receiver's
//!   output is a prefix of the sent sequence.
//! * **No permanent loss:** once the adversary stops (frames flow and
//!   timers fire faithfully), every payload is delivered.

use ekbd_link::{LinkActions, LinkConfig, LinkEndpoint, LinkMsg};
use ekbd_sim::ProcessId;
use proptest::prelude::*;

const ALICE: ProcessId = ProcessId(0);
const BOB: ProcessId = ProcessId(1);

/// A frame in flight: `to_bob` gives its direction.
#[derive(Clone, Debug)]
struct Flight {
    to_bob: bool,
    frame: LinkMsg<u32>,
}

/// The adversarial channel between one sending endpoint (alice) and one
/// receiving endpoint (bob). Only alice originates payloads; acks flow back.
struct Channel {
    alice: LinkEndpoint<u32>,
    bob: LinkEndpoint<u32>,
    in_flight: Vec<Flight>,
    /// Epochs of alice's armed retransmission timers, oldest first.
    timers: Vec<u64>,
    /// Payloads surfaced by bob's endpoint, in surfacing order.
    got: Vec<u32>,
}

impl Channel {
    fn new() -> Self {
        // A small retransmit base keeps healing cheap; the driver ignores
        // the delay value anyway (it fires timers explicitly).
        let cfg = LinkConfig::default().retransmit_base(1).max_backoff_exp(2);
        Channel {
            alice: LinkEndpoint::new(ALICE, cfg),
            bob: LinkEndpoint::new(BOB, cfg),
            in_flight: Vec::new(),
            timers: Vec::new(),
            got: Vec::new(),
        }
    }

    fn absorb_alice(&mut self, out: LinkActions<u32>) {
        for (_, frame) in out.sends {
            self.in_flight.push(Flight {
                to_bob: true,
                frame,
            });
        }
        self.timers.extend(out.timers.iter().map(|&(_, _, e)| e));
        assert!(out.delivered.is_empty(), "alice receives only acks");
    }

    fn send(&mut self, payload: u32) {
        let out = self.alice.send(BOB, payload);
        self.absorb_alice(out);
    }

    fn fire_timer(&mut self, epoch: u64) {
        let out = self.alice.on_timer(BOB, epoch);
        self.absorb_alice(out);
    }

    /// Delivers one in-flight frame to its destination endpoint.
    fn deliver(&mut self, flight: Flight) {
        if flight.to_bob {
            let out = self.bob.on_message(ALICE, flight.frame);
            self.got.extend(out.delivered.iter().map(|&(_, v)| v));
            for (_, ack) in out.sends {
                self.in_flight.push(Flight {
                    to_bob: false,
                    frame: ack,
                });
            }
        } else {
            let out = self.alice.on_message(BOB, flight.frame);
            self.absorb_alice(out);
        }
    }

    /// The receiver's output must always be a prefix of the sent sequence —
    /// this single check rules out duplication, reordering, and corruption.
    fn output_is_prefix(&self) -> bool {
        self.got.iter().enumerate().all(|(i, &v)| v == i as u32)
    }

    /// Runs the channel faithfully (deliver everything, fire every timer)
    /// until nothing is outstanding. Returns false if it fails to converge.
    fn heal(&mut self) -> bool {
        for _ in 0..10_000 {
            if self.in_flight.is_empty()
                && self.timers.is_empty()
                && self.alice.unacked_to(BOB) == 0
            {
                return true;
            }
            let frames = std::mem::take(&mut self.in_flight);
            for flight in frames {
                self.deliver(flight);
            }
            let epochs = std::mem::take(&mut self.timers);
            for epoch in epochs {
                self.fire_timer(epoch);
            }
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exactly-once FIFO delivery survives arbitrary loss/dup/reorder
    /// schedules: the output never shows a payload twice or out of order,
    /// and once the adversary stops, nothing is permanently lost.
    #[test]
    fn arbitrary_fault_schedules_never_duplicate_nor_permanently_lose(
        n in 1usize..16,
        schedule in proptest::collection::vec((0u8..100u8, 0usize..64usize), 0..160),
    ) {
        let mut ch = Channel::new();
        let mut next_payload = 0u32;

        for (fate, idx) in schedule {
            match fate {
                // Inject a fresh payload (interleaved with channel chaos).
                0..=19 => {
                    if (next_payload as usize) < n {
                        ch.send(next_payload);
                        next_payload += 1;
                    }
                }
                // Fire one of alice's armed timers, in arbitrary order.
                20..=34 => {
                    if !ch.timers.is_empty() {
                        let epoch = ch.timers.remove(idx % ch.timers.len());
                        ch.fire_timer(epoch);
                    }
                }
                // Drop an arbitrary in-flight frame (data or ack).
                35..=54 => {
                    if !ch.in_flight.is_empty() {
                        let k = idx % ch.in_flight.len();
                        ch.in_flight.swap_remove(k);
                    }
                }
                // Deliver an arbitrary in-flight frame twice (duplication).
                55..=69 => {
                    if !ch.in_flight.is_empty() {
                        let k = idx % ch.in_flight.len();
                        let flight = ch.in_flight.swap_remove(k);
                        ch.deliver(flight.clone());
                        ch.deliver(flight);
                    }
                }
                // Deliver an arbitrary in-flight frame once (reordering:
                // the pick ignores send order).
                _ => {
                    if !ch.in_flight.is_empty() {
                        let k = idx % ch.in_flight.len();
                        let flight = ch.in_flight.swap_remove(k);
                        ch.deliver(flight);
                    }
                }
            }
            prop_assert!(
                ch.output_is_prefix(),
                "mid-run output {:?} is not a prefix of the sent sequence",
                ch.got
            );
        }

        // Queue whatever the schedule did not get around to sending.
        while (next_payload as usize) < n {
            ch.send(next_payload);
            next_payload += 1;
        }

        // Adversary stops: the layer must heal.
        prop_assert!(ch.heal(), "retransmission failed to converge");
        prop_assert_eq!(
            &ch.got,
            &(0..n as u32).collect::<Vec<_>>(),
            "exactly-once FIFO delivery after healing"
        );
    }

    /// Suspicion pauses never destroy frames: an arbitrary schedule of
    /// suspect/unsuspect flips around a lossy channel still ends with
    /// every payload delivered exactly once after the pause lifts.
    #[test]
    fn false_suspicions_only_pause_never_lose(
        n in 1usize..12,
        flips in proptest::collection::vec((0u8..4u8, 0usize..64usize), 0..60),
    ) {
        let mut ch = Channel::new();
        for k in 0..n as u32 {
            ch.send(k);
        }
        for (kind, idx) in flips {
            match kind {
                0 => ch.alice.on_suspect(BOB),
                1 => {
                    let out = ch.alice.on_unsuspect(BOB);
                    ch.absorb_alice(out);
                }
                // Drop a frame while flapping.
                2 => {
                    if !ch.in_flight.is_empty() {
                        let k = idx % ch.in_flight.len();
                        ch.in_flight.swap_remove(k);
                    }
                }
                // Deliver a frame while flapping.
                _ => {
                    if !ch.in_flight.is_empty() {
                        let k = idx % ch.in_flight.len();
                        let flight = ch.in_flight.swap_remove(k);
                        ch.deliver(flight);
                    }
                }
            }
            prop_assert!(ch.output_is_prefix());
        }
        // Retract any standing suspicion, then heal.
        let out = ch.alice.on_unsuspect(BOB);
        ch.absorb_alice(out);
        prop_assert!(ch.heal(), "recovery failed to converge");
        prop_assert_eq!(&ch.got, &(0..n as u32).collect::<Vec<_>>());
    }
}
