//! A self-healing reliable link layer for lossy, duplicating, reordering
//! channels.
//!
//! The paper's system model (§2) assumes reliable FIFO channels; its
//! correctness proofs (Theorems 1–3) lean on that assumption wherever a
//! fork, token, or request message must arrive exactly once and in order.
//! This crate restores that abstraction over the adversarial channels of
//! [`ekbd_sim::FaultPlan`]: each [`LinkEndpoint`] wraps every outgoing
//! payload in a [`LinkMsg::Data`] frame carrying a per-peer sequence
//! number, acknowledges received frames cumulatively, retransmits unacked
//! frames on a timer with exponential backoff, suppresses duplicates, and
//! releases payloads to the application strictly in send order — *exactly
//! once, FIFO*, as long as the channel delivers infinitely often.
//!
//! Two properties tie the layer back to the paper:
//!
//! * **Quiescence toward crashed neighbors (§7, S3).** Retransmission to a
//!   peer stops while the local ◇P module suspects it
//!   ([`LinkEndpoint::on_suspect`]). Since ◇P eventually and permanently
//!   suspects every crashed process, only finitely many frames are ever
//!   sent to a crashed neighbor.
//! * **Wait-freedom under false suspicion.** A false suspicion pauses, but
//!   never discards, the unacked queue. When the suspicion is retracted
//!   ([`LinkEndpoint::on_unsuspect`]) the endpoint immediately retransmits
//!   everything outstanding with a reset backoff, so a wrongly suspected
//!   (live) neighbor still receives every frame — eventual delivery between
//!   correct processes is preserved, keeping the hygienic-dining token and
//!   fork exchanges live.
//!
//! The implementation is sans-io in the same style as the detector and
//! dining crates: methods consume events and return [`LinkActions`] —
//! frames to transmit, timers to arm, payloads to deliver — and the host
//! (simulator or threaded runtime) performs the actual io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ekbd_sim::{Duration, ProcessId};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Tuning knobs for a [`LinkEndpoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkConfig {
    /// Initial retransmission timeout (ticks or milliseconds — the host's
    /// time unit).
    pub retransmit_base: Duration,
    /// Backoff exponent cap: the timeout is
    /// `retransmit_base << min(consecutive_timeouts, max_backoff_exp)`.
    pub max_backoff_exp: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            retransmit_base: 16,
            max_backoff_exp: 6,
        }
    }
}

impl LinkConfig {
    /// Sets the initial retransmission timeout.
    pub fn retransmit_base(mut self, base: Duration) -> Self {
        self.retransmit_base = base.max(1);
        self
    }

    /// Sets the backoff exponent cap.
    pub fn max_backoff_exp(mut self, cap: u32) -> Self {
        self.max_backoff_exp = cap;
        self
    }
}

/// Hosts that multiplex link retransmission timers with other timers on a
/// single `u64` tag space should place link tags at or above this base.
/// [`link_timer_tag`] encodes `(peer, epoch)` into that space.
pub const LINK_TAG_BASE: u64 = 1 << 41;
const LINK_EPOCH_SPAN: u64 = 1 << 32;

/// Encodes a retransmission timer for `peer` with the given epoch into a
/// single tag: `LINK_TAG_BASE + peer_index · 2³² + epoch`. Decode with
/// [`decode_timer_tag`].
///
/// An endpoint would need billions of timer re-arms on one peer to reach
/// `epoch = 2³²`, far beyond any run's event budget — but if it ever
/// happens the epoch *saturates* at `2³² − 1` rather than silently bleeding
/// into the next peer's tag range (which would misroute the timer). A
/// saturated epoch merely risks one spurious (idempotent) retransmission.
pub fn link_timer_tag(peer: ProcessId, epoch: u64) -> u64 {
    LINK_TAG_BASE + (peer.index() as u64) * LINK_EPOCH_SPAN + epoch.min(LINK_EPOCH_SPAN - 1)
}

/// Inverse of [`link_timer_tag`]: recovers `(peer, epoch)` from a tag at
/// or above [`LINK_TAG_BASE`].
pub fn decode_timer_tag(tag: u64) -> (ProcessId, u64) {
    debug_assert!(tag >= LINK_TAG_BASE, "not a link timer tag");
    let rel = tag - LINK_TAG_BASE;
    (
        ProcessId::from((rel / LINK_EPOCH_SPAN) as usize),
        rel % LINK_EPOCH_SPAN,
    )
}

/// The wire format of the link layer.
///
/// Every frame is stamped with the sender's incarnation number (`inc`) and
/// the sender's view of the receiver's incarnation (`dst_inc`) so sequence
/// state survives the crash-recovery fault model: a receiver drops frames
/// addressed to a previous life of itself, and resets its per-peer state
/// when it first sees a frame from a newer incarnation of the peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkMsg<M> {
    /// A (re)transmission of payload number `seq` on this ordered link.
    Data {
        /// Per-ordered-link sequence number, starting at 0 for each sender
        /// incarnation.
        seq: u64,
        /// The sender's incarnation number.
        inc: u64,
        /// The sender's view of the receiver's incarnation number.
        dst_inc: u64,
        /// The wrapped application payload.
        payload: M,
    },
    /// Cumulative acknowledgment: every `seq < cum` has been received.
    Ack {
        /// One past the highest contiguously received sequence number.
        cum: u64,
        /// The sender's incarnation number.
        inc: u64,
        /// The sender's view of the receiver's incarnation number.
        dst_inc: u64,
    },
}

/// Everything the host must do after handing an event to the endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkActions<M> {
    /// Frames to transmit, in order.
    pub sends: Vec<(ProcessId, LinkMsg<M>)>,
    /// Retransmission timers to arm: `(peer, delay, epoch)`. The host must
    /// hand `epoch` back to [`LinkEndpoint::on_timer`] when the timer
    /// fires; stale epochs are ignored, which is how superseded timers are
    /// "cancelled" on hosts that cannot revoke a timer.
    pub timers: Vec<(ProcessId, Duration, u64)>,
    /// Payloads released to the application, exactly once and in send
    /// order per peer.
    pub delivered: Vec<(ProcessId, M)>,
}

impl<M> LinkActions<M> {
    fn new() -> Self {
        LinkActions {
            sends: Vec::new(),
            timers: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// Whether the event produced no work at all.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.delivered.is_empty()
    }
}

/// Counters exposed for the metrics layer and the e14 experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Logical payloads accepted from the application via
    /// [`LinkEndpoint::send`] (whether transmitted immediately or queued
    /// behind a suspicion pause).
    pub payloads_sent: u64,
    /// First transmissions of Data frames.
    pub data_sent: u64,
    /// Data frames sent again by the retransmission timer or recovery.
    pub retransmissions: u64,
    /// Ack frames sent.
    pub acks_sent: u64,
    /// Received Data frames discarded as already-delivered duplicates.
    pub duplicates_suppressed: u64,
    /// Received Data frames parked out of order awaiting a gap fill.
    pub out_of_order_buffered: u64,
    /// Payloads released to the application.
    pub delivered: u64,
    /// Resumptions after a retracted suspicion (pause → immediate
    /// retransmit).
    pub recoveries: u64,
    /// Frames dropped because they carried a stale incarnation (either the
    /// peer's previous life or an earlier life of this endpoint).
    pub stale_dropped: u64,
    /// Per-peer state resets triggered by observing a newer peer
    /// incarnation.
    pub incarnation_resets: u64,
    /// High-water mark of *distinct* unacked payloads to any single peer —
    /// the per-edge channel bound of §7 restated for lossy channels.
    pub max_unacked: usize,
}

/// Per-peer sender + receiver state for one ordered link pair.
#[derive(Clone, Debug)]
struct PeerState<M> {
    // Sender side.
    /// Next sequence number to assign.
    next_seq: u64,
    /// Sent but not yet cumulatively acked, oldest first.
    unacked: VecDeque<(u64, M)>,
    /// Consecutive retransmission timeouts without progress.
    backoff_exp: u32,
    /// Epoch of the currently armed retransmission timer; fires carrying
    /// any other epoch are stale.
    timer_epoch: u64,
    /// Whether a retransmission timer is currently armed.
    timer_armed: bool,
    /// Whether the peer is suspected crashed: retransmission is paused.
    paused: bool,
    /// The highest incarnation of the peer seen on any of its frames; used
    /// both to detect peer restarts and to stamp `dst_inc` on outgoing
    /// frames.
    peer_inc: u64,
    // Receiver side.
    /// Every `seq < recv_cum` has been delivered to the application.
    recv_cum: u64,
    /// Out-of-order frames parked until the gap before them fills.
    recv_buf: BTreeMap<u64, M>,
}

impl<M> PeerState<M> {
    fn new() -> Self {
        PeerState {
            next_seq: 0,
            unacked: VecDeque::new(),
            backoff_exp: 0,
            timer_epoch: 0,
            timer_armed: false,
            paused: false,
            peer_inc: 0,
            recv_cum: 0,
            recv_buf: BTreeMap::new(),
        }
    }
}

/// One process's end of the reliable link layer, multiplexing every
/// neighbor.
///
/// ```
/// use ekbd_link::{LinkConfig, LinkEndpoint, LinkMsg};
/// use ekbd_sim::ProcessId;
///
/// let (a, b) = (ProcessId(0), ProcessId(1));
/// let mut alice = LinkEndpoint::new(a, LinkConfig::default());
/// let mut bob = LinkEndpoint::new(b, LinkConfig::default());
///
/// // Alice sends; the frame is wrapped and a retransmit timer requested.
/// let out = alice.send(b, "fork");
/// let (to, frame) = out.sends[0].clone();
/// assert_eq!(to, b);
///
/// // Bob receives: the payload is released in order and an ack produced.
/// let got = bob.on_message(a, frame);
/// assert_eq!(got.delivered, vec![(a, "fork")]);
///
/// // The ack clears Alice's unacked queue.
/// let (_, ack) = got.sends[0].clone();
/// alice.on_message(b, ack);
/// assert_eq!(alice.stats().data_sent, 1);
/// ```
#[derive(Clone, Debug)]
pub struct LinkEndpoint<M> {
    id: ProcessId,
    config: LinkConfig,
    /// This endpoint's incarnation number, stamped on every frame.
    inc: u64,
    peers: HashMap<ProcessId, PeerState<M>>,
    stats: LinkStats,
}

impl<M: Clone> LinkEndpoint<M> {
    /// Creates the endpoint for process `id`.
    pub fn new(id: ProcessId, config: LinkConfig) -> Self {
        LinkEndpoint {
            id,
            config,
            inc: 0,
            peers: HashMap::new(),
            stats: LinkStats::default(),
        }
    }

    /// This endpoint's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// This endpoint's incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.inc
    }

    /// Restarts the endpoint into incarnation `inc` (crash-recovery).
    ///
    /// All per-peer sequence state — unacked queues, receive cursors,
    /// parked out-of-order frames, suspicion pauses — is volatile and lost;
    /// peers discover the restart from the new incarnation stamped on the
    /// next outgoing frame and reset their own side in response. Cumulative
    /// [`stats`](Self::stats) survive, since they describe the whole run.
    pub fn on_restart(&mut self, inc: u64) {
        self.inc = inc;
        self.peers.clear();
    }

    /// Aggregate counters over all peers.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Distinct payloads currently awaiting an ack from `peer`.
    pub fn unacked_to(&self, peer: ProcessId) -> usize {
        self.peers.get(&peer).map_or(0, |p| p.unacked.len())
    }

    /// Whether retransmission to `peer` is currently paused by suspicion.
    pub fn is_paused(&self, peer: ProcessId) -> bool {
        self.peers.get(&peer).is_some_and(|p| p.paused)
    }

    fn peer(&mut self, peer: ProcessId) -> &mut PeerState<M> {
        self.peers.entry(peer).or_insert_with(PeerState::new)
    }

    fn backoff_delay(config: &LinkConfig, exp: u32) -> Duration {
        let exp = exp.min(config.max_backoff_exp);
        config.retransmit_base.saturating_mul(1u64 << exp)
    }

    /// Arms (or re-arms) the retransmission timer for `peer`, bumping the
    /// epoch so any previously armed timer becomes stale.
    fn arm_timer(&mut self, peer: ProcessId, out: &mut LinkActions<M>) {
        let config = self.config;
        let st = self.peer(peer);
        st.timer_epoch += 1;
        st.timer_armed = true;
        let delay = Self::backoff_delay(&config, st.backoff_exp);
        out.timers.push((peer, delay, st.timer_epoch));
    }

    /// Queues `payload` for reliable delivery to `peer`.
    ///
    /// The frame is transmitted immediately unless the peer is suspected
    /// (then it waits in the unacked queue for recovery), and a
    /// retransmission timer is armed if none is pending.
    pub fn send(&mut self, peer: ProcessId, payload: M) -> LinkActions<M> {
        let mut out = LinkActions::new();
        let inc = self.inc;
        let st = self.peer(peer);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.unacked.push_back((seq, payload.clone()));
        let unacked = st.unacked.len();
        let paused = st.paused;
        let need_timer = !st.timer_armed;
        let dst_inc = st.peer_inc;
        self.stats.payloads_sent += 1;
        self.stats.max_unacked = self.stats.max_unacked.max(unacked);
        if !paused {
            out.sends.push((
                peer,
                LinkMsg::Data {
                    seq,
                    inc,
                    dst_inc,
                    payload,
                },
            ));
            self.stats.data_sent += 1;
            if need_timer {
                self.arm_timer(peer, &mut out);
            }
        }
        out
    }

    /// Handles an incoming link frame from `peer`.
    ///
    /// Incarnation gating comes first: frames addressed to a previous life
    /// of this endpoint, or sent by a previous life of the peer, are
    /// dropped before any sequence-number processing. The first frame from
    /// a *newer* peer incarnation resets all per-peer sequence state (the
    /// peer lost its receive cursor in the crash, so outstanding frames are
    /// meaningless — the application-level rejoin handshake regenerates
    /// whatever still matters).
    pub fn on_message(&mut self, peer: ProcessId, msg: LinkMsg<M>) -> LinkActions<M> {
        let mut out = LinkActions::new();
        let (msg_inc, msg_dst) = match &msg {
            LinkMsg::Data { inc, dst_inc, .. } | LinkMsg::Ack { inc, dst_inc, .. } => {
                (*inc, *dst_inc)
            }
        };
        let my_inc = self.inc;
        // 0 = pass, 1 = stale peer life, 2 = addressed to a previous life
        // of this endpoint.
        let (reset, verdict, reply_cum) = {
            let st = self.peer(peer);
            let reset = msg_inc > st.peer_inc;
            if reset {
                *st = PeerState::new();
                st.peer_inc = msg_inc;
            }
            if msg_inc < st.peer_inc {
                (reset, 1u8, 0)
            } else if msg_dst != my_inc {
                (reset, 2u8, st.recv_cum)
            } else {
                (reset, 0u8, 0)
            }
        };
        if reset {
            self.stats.incarnation_resets += 1;
        }
        if verdict == 1 {
            self.stats.stale_dropped += 1;
            return out;
        }
        if verdict == 2 {
            // Addressed to another life of this endpoint. If the peer is
            // behind (it has not yet heard from this incarnation), answer
            // with a bare ack carrying our current incarnation: without
            // this, two endpoints that both restarted would drop each
            // other's frames forever.
            self.stats.stale_dropped += 1;
            if msg_dst < my_inc {
                out.sends.push((
                    peer,
                    LinkMsg::Ack {
                        cum: reply_cum,
                        inc: my_inc,
                        dst_inc: msg_inc,
                    },
                ));
                self.stats.acks_sent += 1;
            }
            return out;
        }
        match msg {
            LinkMsg::Data { seq, payload, .. } => {
                let st = self.peer(peer);
                if seq < st.recv_cum || st.recv_buf.contains_key(&seq) {
                    self.stats.duplicates_suppressed += 1;
                } else if seq == st.recv_cum {
                    // In-order: release it and everything it unblocks.
                    st.recv_cum += 1;
                    out.delivered.push((peer, payload));
                    while let Some(next) = st.recv_buf.remove(&st.recv_cum) {
                        st.recv_cum += 1;
                        out.delivered.push((peer, next));
                    }
                    self.stats.delivered += out.delivered.len() as u64;
                } else {
                    st.recv_buf.insert(seq, payload);
                    self.stats.out_of_order_buffered += 1;
                }
                // Always (re-)ack: the cumulative ack is idempotent and
                // re-acking duplicates lets a sender whose ack was lost
                // make progress.
                let st = self.peer(peer);
                let (cum, dst_inc) = (st.recv_cum, st.peer_inc);
                out.sends.push((
                    peer,
                    LinkMsg::Ack {
                        cum,
                        inc: my_inc,
                        dst_inc,
                    },
                ));
                self.stats.acks_sent += 1;
            }
            LinkMsg::Ack { cum, .. } => {
                let st = self.peer(peer);
                let before = st.unacked.len();
                while st.unacked.front().is_some_and(|&(seq, _)| seq < cum) {
                    st.unacked.pop_front();
                }
                if st.unacked.len() < before {
                    // Progress: the channel is alive, reset the backoff.
                    st.backoff_exp = 0;
                }
                if st.unacked.is_empty() {
                    // Nothing outstanding: let the armed timer lapse into
                    // staleness instead of re-arming.
                    st.timer_armed = false;
                    st.timer_epoch += 1;
                }
            }
        }
        out
    }

    /// Handles a retransmission-timer fire for `peer` carrying `epoch`.
    ///
    /// Stale epochs (superseded by a later arm or cancel) are ignored.
    /// Otherwise every unacked frame is retransmitted (go-back-N) and the
    /// timer re-armed with doubled backoff — unless the peer is suspected,
    /// in which case the layer stays silent (quiescence, §7 S3).
    pub fn on_timer(&mut self, peer: ProcessId, epoch: u64) -> LinkActions<M> {
        let mut out = LinkActions::new();
        let config = self.config;
        let inc = self.inc;
        let st = self.peer(peer);
        if !st.timer_armed || epoch != st.timer_epoch {
            return out;
        }
        st.timer_armed = false;
        if st.paused || st.unacked.is_empty() {
            return out;
        }
        st.backoff_exp = (st.backoff_exp + 1).min(config.max_backoff_exp);
        let dst_inc = st.peer_inc;
        let frames: Vec<(u64, M)> = st.unacked.iter().cloned().collect();
        for (seq, payload) in frames {
            out.sends.push((
                peer,
                LinkMsg::Data {
                    seq,
                    inc,
                    dst_inc,
                    payload,
                },
            ));
            self.stats.retransmissions += 1;
        }
        self.arm_timer(peer, &mut out);
        out
    }

    /// Notes that the local failure detector now suspects `peer`.
    ///
    /// Retransmission pauses: the armed timer is invalidated and no further
    /// frame is sent to the peer until the suspicion is retracted. Combined
    /// with ◇P's eventual permanent suspicion of crashed processes, this
    /// gives quiescence: only finitely many frames ever target a crashed
    /// neighbor.
    pub fn on_suspect(&mut self, peer: ProcessId) {
        let st = self.peer(peer);
        st.paused = true;
        st.timer_armed = false;
        st.timer_epoch += 1;
    }

    /// Notes that the local failure detector retracted its suspicion of
    /// `peer`.
    ///
    /// The pause was a false alarm, so everything still outstanding is
    /// retransmitted immediately with a reset backoff — the self-healing
    /// step that preserves wait-freedom for wrongly suspected neighbors.
    pub fn on_unsuspect(&mut self, peer: ProcessId) -> LinkActions<M> {
        let mut out = LinkActions::new();
        let inc = self.inc;
        let st = self.peer(peer);
        if !st.paused {
            return out;
        }
        st.paused = false;
        st.backoff_exp = 0;
        let dst_inc = st.peer_inc;
        let frames: Vec<(u64, M)> = st.unacked.iter().cloned().collect();
        if !frames.is_empty() {
            self.stats.recoveries += 1;
            for (seq, payload) in frames {
                out.sends.push((
                    peer,
                    LinkMsg::Data {
                        seq,
                        inc,
                        dst_inc,
                        payload,
                    },
                ));
                self.stats.retransmissions += 1;
            }
            self.arm_timer(peer, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn endpoint() -> LinkEndpoint<u32> {
        LinkEndpoint::new(p(0), LinkConfig::default())
    }

    fn data(out: &LinkActions<u32>) -> Vec<(u64, u32)> {
        out.sends
            .iter()
            .filter_map(|(_, m)| match m {
                LinkMsg::Data { seq, payload, .. } => Some((*seq, *payload)),
                LinkMsg::Ack { .. } => None,
            })
            .collect()
    }

    /// An incarnation-0 data frame, as exchanged before any restart.
    fn dmsg(seq: u64, payload: u32) -> LinkMsg<u32> {
        LinkMsg::Data {
            seq,
            inc: 0,
            dst_inc: 0,
            payload,
        }
    }

    /// An incarnation-0 ack frame.
    fn amsg(cum: u64) -> LinkMsg<u32> {
        LinkMsg::Ack {
            cum,
            inc: 0,
            dst_inc: 0,
        }
    }

    #[test]
    fn send_wraps_with_increasing_seq_and_arms_one_timer() {
        let mut ep = endpoint();
        let a = ep.send(p(1), 10);
        let b = ep.send(p(1), 11);
        assert_eq!(data(&a), vec![(0, 10)]);
        assert_eq!(data(&b), vec![(1, 11)]);
        assert_eq!(a.timers.len(), 1, "first send arms the timer");
        assert!(b.timers.is_empty(), "timer already armed");
        assert_eq!(ep.unacked_to(p(1)), 2);
        assert_eq!(ep.stats().max_unacked, 2);
    }

    #[test]
    fn in_order_delivery_and_cumulative_ack() {
        let mut ep = endpoint();
        let out = ep.on_message(p(1), dmsg(0, 5));
        assert_eq!(out.delivered, vec![(p(1), 5)]);
        assert_eq!(out.sends, vec![(p(1), amsg(1))]);
    }

    #[test]
    fn out_of_order_frames_are_parked_then_released_in_order() {
        let mut ep = endpoint();
        let late = ep.on_message(p(1), dmsg(2, 7));
        assert!(late.delivered.is_empty());
        assert_eq!(late.sends, vec![(p(1), amsg(0))]);
        let later = ep.on_message(p(1), dmsg(1, 6));
        assert!(later.delivered.is_empty());
        let first = ep.on_message(p(1), dmsg(0, 5));
        assert_eq!(first.delivered, vec![(p(1), 5), (p(1), 6), (p(1), 7)]);
        assert_eq!(first.sends, vec![(p(1), amsg(3))]);
        assert_eq!(ep.stats().out_of_order_buffered, 2);
    }

    #[test]
    fn duplicates_are_suppressed_but_reacked() {
        let mut ep = endpoint();
        ep.on_message(p(1), dmsg(0, 5));
        let dup = ep.on_message(p(1), dmsg(0, 5));
        assert!(dup.delivered.is_empty(), "payload must not surface twice");
        assert_eq!(dup.sends, vec![(p(1), amsg(1))]);
        assert_eq!(ep.stats().duplicates_suppressed, 1);
        // A parked out-of-order frame also counts as already-received.
        ep.on_message(p(1), dmsg(3, 9));
        ep.on_message(p(1), dmsg(3, 9));
        assert_eq!(ep.stats().duplicates_suppressed, 2);
    }

    #[test]
    fn ack_clears_prefix_and_cancels_timer_when_drained() {
        let mut ep = endpoint();
        ep.send(p(1), 10);
        ep.send(p(1), 11);
        ep.on_message(p(1), amsg(1));
        assert_eq!(ep.unacked_to(p(1)), 1);
        ep.on_message(p(1), amsg(2));
        assert_eq!(ep.unacked_to(p(1)), 0);
        // The old timer epoch is now stale: firing it does nothing.
        let out = ep.on_timer(p(1), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn timer_retransmits_all_unacked_with_backoff() {
        let cfg = LinkConfig::default().retransmit_base(8).max_backoff_exp(3);
        let mut ep = LinkEndpoint::new(p(0), cfg);
        let first = ep.send(p(1), 10);
        ep.send(p(1), 11);
        let (_, delay0, epoch0) = first.timers[0];
        assert_eq!(delay0, 8);
        let fire1 = ep.on_timer(p(1), epoch0);
        assert_eq!(data(&fire1), vec![(0, 10), (1, 11)], "go-back-N resend");
        let (_, delay1, epoch1) = fire1.timers[0];
        assert_eq!(delay1, 16, "backoff doubles");
        let fire2 = ep.on_timer(p(1), epoch1);
        let (_, delay2, epoch2) = fire2.timers[0];
        assert_eq!(delay2, 32);
        // Cap: exponent stops at 3 → 8 << 3 = 64.
        let fire3 = ep.on_timer(p(1), epoch2);
        let (_, delay3, epoch3) = fire3.timers[0];
        assert_eq!(delay3, 64);
        let fire4 = ep.on_timer(p(1), epoch3);
        let (_, delay4, _) = fire4.timers[0];
        assert_eq!(delay4, 64, "backoff is capped");
        assert_eq!(ep.stats().retransmissions, 8);
    }

    #[test]
    fn stale_timer_epochs_are_ignored() {
        let mut ep = endpoint();
        let first = ep.send(p(1), 10);
        let (_, _, epoch) = first.timers[0];
        let fire = ep.on_timer(p(1), epoch);
        assert!(!fire.sends.is_empty());
        // The original epoch was superseded by the re-arm.
        assert!(ep.on_timer(p(1), epoch).is_empty());
    }

    #[test]
    fn ack_progress_resets_backoff() {
        let mut ep = endpoint();
        let first = ep.send(p(1), 10);
        ep.send(p(1), 11);
        let (_, _, epoch) = first.timers[0];
        let fire = ep.on_timer(p(1), epoch);
        let (_, delay_backed_off, _) = fire.timers[0];
        assert!(delay_backed_off > LinkConfig::default().retransmit_base);
        ep.on_message(p(1), amsg(1));
        // Next send arms at the base delay again.
        ep.on_message(p(1), amsg(2));
        let next = ep.send(p(1), 12);
        let (_, delay, _) = next.timers[0];
        assert_eq!(delay, LinkConfig::default().retransmit_base);
    }

    #[test]
    fn suspicion_pauses_retransmission_for_quiescence() {
        let mut ep = endpoint();
        let first = ep.send(p(1), 10);
        let (_, _, epoch) = first.timers[0];
        ep.on_suspect(p(1));
        assert!(ep.is_paused(p(1)));
        assert!(ep.on_timer(p(1), epoch).is_empty(), "paused: no resend");
        // New sends while paused queue silently.
        let queued = ep.send(p(1), 11);
        assert!(queued.sends.is_empty());
        assert_eq!(ep.unacked_to(p(1)), 2);
        assert_eq!(ep.stats().data_sent, 1, "only the pre-pause transmission");
    }

    #[test]
    fn unsuspect_recovers_everything_immediately() {
        let mut ep = endpoint();
        ep.send(p(1), 10);
        ep.on_suspect(p(1));
        ep.send(p(1), 11);
        let out = ep.on_unsuspect(p(1));
        assert!(!ep.is_paused(p(1)));
        assert_eq!(data(&out), vec![(0, 10), (1, 11)]);
        assert_eq!(out.timers.len(), 1, "recovery re-arms the timer");
        assert_eq!(ep.stats().recoveries, 1);
        // Unsuspecting an unsuspected peer is a no-op.
        assert!(ep.on_unsuspect(p(1)).is_empty());
    }

    #[test]
    fn unsuspect_with_nothing_outstanding_stays_silent() {
        let mut ep = endpoint();
        ep.on_suspect(p(1));
        let out = ep.on_unsuspect(p(1));
        assert!(out.is_empty());
        assert_eq!(ep.stats().recoveries, 0);
    }

    #[test]
    fn links_to_different_peers_are_independent() {
        let mut ep = endpoint();
        ep.send(p(1), 10);
        ep.send(p(2), 20);
        ep.on_suspect(p(1));
        assert!(ep.is_paused(p(1)));
        assert!(!ep.is_paused(p(2)));
        assert_eq!(ep.unacked_to(p(1)), 1);
        assert_eq!(ep.unacked_to(p(2)), 1);
        // Sequence numbers are per-peer.
        let b = ep.send(p(2), 21);
        assert_eq!(data(&b), vec![(1, 21)]);
    }

    /// End-to-end over a scripted lossy channel: every payload arrives
    /// exactly once, in order, despite loss of first transmissions.
    #[test]
    fn retransmission_heals_a_lossy_channel() {
        let mut alice = LinkEndpoint::new(p(0), LinkConfig::default());
        let mut bob = LinkEndpoint::new(p(1), LinkConfig::default());
        let mut alice_timers: Vec<u64> = Vec::new();
        let mut delivered = Vec::new();

        let mut drop_first_data = true;
        for k in 0..5u32 {
            let out = alice.send(p(1), k);
            alice_timers.extend(out.timers.iter().map(|&(_, _, e)| e));
            for (_, frame) in out.sends {
                if drop_first_data {
                    // Adversary eats every first transmission.
                    continue;
                }
                let got = bob.on_message(p(0), frame);
                delivered.extend(got.delivered.iter().map(|&(_, v)| v));
                for (_, ack) in got.sends {
                    alice.on_message(p(1), ack);
                }
            }
            drop_first_data = true;
        }
        assert!(delivered.is_empty(), "all first copies were lost");

        // Fire timers until the queue drains (the channel is now clean).
        let mut guard = 0;
        while alice.unacked_to(p(1)) > 0 {
            guard += 1;
            assert!(guard < 100, "retransmission must converge");
            let epochs = std::mem::take(&mut alice_timers);
            for epoch in epochs {
                let out = alice.on_timer(p(1), epoch);
                alice_timers.extend(out.timers.iter().map(|&(_, _, e)| e));
                for (_, frame) in out.sends {
                    let got = bob.on_message(p(0), frame);
                    delivered.extend(got.delivered.iter().map(|&(_, v)| v));
                    for (_, ack) in got.sends {
                        alice.on_message(p(1), ack);
                    }
                }
            }
        }
        assert_eq!(delivered, vec![0, 1, 2, 3, 4], "exactly once, in order");
        assert!(alice.stats().retransmissions >= 5);
    }

    #[test]
    fn timer_tag_saturates_instead_of_bleeding_into_next_peer() {
        // A sane epoch round-trips exactly.
        assert_eq!(decode_timer_tag(link_timer_tag(p(3), 42)), (p(3), 42));
        // At and beyond the span boundary the epoch saturates: the tag must
        // stay inside peer 3's range, never aliasing peer 4's epoch 0.
        let max = LINK_EPOCH_SPAN - 1;
        assert_eq!(
            link_timer_tag(p(3), LINK_EPOCH_SPAN),
            link_timer_tag(p(3), max)
        );
        assert_eq!(link_timer_tag(p(3), u64::MAX), link_timer_tag(p(3), max));
        assert_eq!(
            decode_timer_tag(link_timer_tag(p(3), u64::MAX)),
            (p(3), max)
        );
        assert_ne!(link_timer_tag(p(3), u64::MAX), link_timer_tag(p(4), 0));
    }

    #[test]
    fn restart_clears_sequence_state_and_bumps_incarnation() {
        let mut ep = endpoint();
        ep.send(p(1), 10);
        ep.on_message(p(1), dmsg(0, 5));
        ep.on_suspect(p(2));
        assert_eq!(ep.incarnation(), 0);
        ep.on_restart(3);
        assert_eq!(ep.incarnation(), 3);
        assert_eq!(ep.unacked_to(p(1)), 0, "unacked queue is volatile");
        assert!(!ep.is_paused(p(2)), "suspicion pause is volatile");
        // Fresh sends start at seq 0 and carry the new incarnation.
        let out = ep.send(p(1), 11);
        assert!(matches!(
            out.sends[0].1,
            LinkMsg::Data { seq: 0, inc: 3, .. }
        ));
    }

    #[test]
    fn frames_from_newer_peer_incarnation_reset_the_link() {
        let mut ep = endpoint();
        // Pre-restart traffic from the peer, including a parked frame.
        ep.on_message(p(1), dmsg(0, 5));
        ep.on_message(p(1), dmsg(2, 7));
        ep.send(p(1), 10);
        // The peer restarts (incarnation 1) and sends from seq 0 again.
        let out = ep.on_message(
            p(1),
            LinkMsg::Data {
                seq: 0,
                inc: 1,
                dst_inc: 0,
                payload: 50,
            },
        );
        assert_eq!(out.delivered, vec![(p(1), 50)], "fresh seq 0 delivered");
        assert_eq!(ep.stats().incarnation_resets, 1);
        assert_eq!(ep.unacked_to(p(1)), 0, "stale outgoing frames dropped");
        // Frames from the peer's previous life are now dropped.
        let stale = ep.on_message(p(1), dmsg(1, 6));
        assert!(stale.is_empty());
        assert!(ep.stats().stale_dropped >= 1);
    }

    #[test]
    fn frames_addressed_to_a_previous_life_are_dropped_with_identity_ack() {
        let mut ep = endpoint();
        ep.on_restart(2);
        // A frame stamped for incarnation 0 of this endpoint: dropped, but
        // answered with an ack advertising incarnation 2 so the sender can
        // resynchronize (breaks the mutual-restart deadlock).
        let out = ep.on_message(p(1), dmsg(0, 5));
        assert!(out.delivered.is_empty());
        assert_eq!(
            out.sends,
            vec![(
                p(1),
                LinkMsg::Ack {
                    cum: 0,
                    inc: 2,
                    dst_inc: 0
                }
            )]
        );
        assert_eq!(ep.stats().stale_dropped, 1);
    }

    #[test]
    fn mutual_restart_resynchronizes_via_identity_acks() {
        let mut alice = LinkEndpoint::new(p(0), LinkConfig::default());
        let mut bob = LinkEndpoint::new(p(1), LinkConfig::default());
        // Establish incarnation-0 traffic both ways.
        for (_, f) in alice.send(p(1), 1).sends {
            for (_, a) in bob.on_message(p(0), f).sends {
                alice.on_message(p(1), a);
            }
        }
        // Both restart at different incarnations; each still believes the
        // other is at incarnation 0.
        alice.on_restart(1);
        bob.on_restart(2);
        // Alice's first frame is stamped dst_inc 0: Bob drops it but
        // answers with his identity; the exchange converges to delivery.
        let mut delivered = Vec::new();
        let mut frames: Vec<(bool, LinkMsg<u32>)> = alice
            .send(p(1), 42)
            .sends
            .into_iter()
            .map(|(_, f)| (true, f))
            .collect();
        let mut guard = 0;
        while let Some((to_bob, frame)) = frames.pop() {
            guard += 1;
            assert!(guard < 20, "identity exchange must converge");
            if to_bob {
                let got = bob.on_message(p(0), frame);
                delivered.extend(got.delivered.iter().map(|&(_, v)| v));
                frames.extend(got.sends.into_iter().map(|(_, f)| (false, f)));
            } else {
                let got = alice.on_message(p(1), frame);
                frames.extend(got.sends.into_iter().map(|(_, f)| (true, f)));
            }
        }
        // The payload was dropped with the stale frame (link state is
        // volatile), but both sides now know each other's incarnation: the
        // next send goes straight through.
        for (_, f) in alice.send(p(1), 43).sends {
            let got = bob.on_message(p(0), f);
            delivered.extend(got.delivered.iter().map(|&(_, v)| v));
        }
        assert_eq!(delivered, vec![43]);
    }
}
