//! Property-based tests of dynamic membership (satellite of the churn PR):
//! any interleaving of joins and leaves keeps the present-induced coloring
//! proper, stays within the `δ + 1` palette bound, and never recolors a
//! surviving node.

use ekbd_graph::{random, Membership, ProcessId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive a random join/leave sequence over a random connected graph.
    /// After every operation: (a) present neighbors never share a color,
    /// (b) every present color is ≤ δ, (c) no node other than the one the
    /// operation targeted changed color.
    #[test]
    fn churn_preserves_proper_delta_plus_one_coloring(
        n in 4usize..12,
        seed in 0u64..500,
        ops in proptest::collection::vec((0u8..16, 0u8..2), 0..48),
    ) {
        let g = random::connected_gnp(n, 0.35, seed);
        let delta = g.max_degree();
        let mut m = Membership::full(g);
        for (sel, op) in ops {
            let target = ProcessId::from(sel as usize % n);
            let before = m.colors().to_vec();
            if op == 0 {
                if !m.is_present(target) {
                    let c = m.join(target).expect("absent node joins");
                    prop_assert!((c as usize) <= delta,
                        "join color {c} exceeds delta {delta}");
                }
            } else if m.is_present(target) {
                m.leave(target).expect("present node leaves");
            }
            prop_assert!(m.validate_present().is_ok(),
                "present-induced coloring must stay proper");
            for (p, &was) in before.iter().enumerate() {
                prop_assert!((m.colors()[p] as usize) <= delta);
                if p != target.index() {
                    prop_assert_eq!(m.colors()[p], was,
                        "surviving node p{} was recolored", p);
                }
            }
        }
    }

    /// Leaving alone never perturbs anything: after an arbitrary prefix of
    /// churn, a leave followed by validation keeps every other color fixed
    /// and the coloring proper (the freed color simply becomes available).
    #[test]
    fn leave_frees_color_without_side_effects(
        n in 3usize..10,
        seed in 0u64..500,
        victim in 0u8..16,
    ) {
        let g = random::connected_gnp(n, 0.4, seed);
        let mut m = Membership::full(g);
        let target = ProcessId::from(victim as usize % n);
        let before = m.colors().to_vec();
        m.leave(target).expect("full membership: everyone present");
        prop_assert_eq!(m.colors(), &before[..]);
        prop_assert!(m.validate_present().is_ok());
        // The freed color is the best candidate if the slot rejoins and no
        // neighbor claimed it meanwhile.
        let rejoined = m.join(target).expect("rejoin after leave");
        prop_assert!(rejoined <= before[target.index()]);
        prop_assert!(m.validate_present().is_ok());
    }
}
