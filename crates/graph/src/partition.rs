//! Greedy edge-cut partitioning of a conflict graph across shards.
//!
//! The sharded simulation kernel (`ekbd-sim::shard`) assigns each process to
//! exactly one worker thread; every conflict edge whose endpoints land on
//! different shards becomes cross-shard message traffic that must flow
//! through the per-window barrier exchange. The partitioner's job is to
//! keep that cut small while keeping shard populations balanced, and to be
//! **deterministic**: the same `(graph, shards)` input always yields the
//! same assignment, so sharded runs replay byte-identically.
//!
//! The algorithm is linear-time greedy placement in BFS order (LDG-style
//! streaming partitioning): visit vertices in a breadth-first order from
//! the lowest-id vertex of each component, and place each vertex on the
//! shard holding most of its already-placed neighbors, penalized by shard
//! fullness and subject to a hard capacity of `⌈n / shards⌉`. Ties break
//! toward the lower shard id. BFS order keeps neighborhoods contiguous,
//! which is what makes the greedy score informative.

use crate::{ConflictGraph, ProcessId};
use std::collections::VecDeque;

/// A placement of every process onto one of `shards` shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[p.index()]` is the shard of process `p`.
    pub assignment: Vec<u32>,
    /// Number of shards (some may be empty when `shards > n`).
    pub shards: usize,
}

impl Partition {
    /// The shard of process `p`.
    pub fn shard_of(&self, p: ProcessId) -> usize {
        self.assignment[p.index()] as usize
    }

    /// Process ids grouped by shard, each group sorted ascending.
    pub fn members(&self) -> Vec<Vec<ProcessId>> {
        let mut out = vec![Vec::new(); self.shards];
        for (i, &s) in self.assignment.iter().enumerate() {
            out[s as usize].push(ProcessId::from(i));
        }
        out
    }

    /// Number of conflict edges whose endpoints are on different shards.
    pub fn cut_edges(&self, g: &ConflictGraph) -> usize {
        g.edges()
            .iter()
            .filter(|e| self.assignment[e.lo.index()] != self.assignment[e.hi.index()])
            .count()
    }
}

/// Partitions `g` into `shards` balanced parts with a small edge cut.
///
/// Deterministic in `(g, shards)`. Shard sizes never exceed
/// `⌈n / shards⌉`, so even adversarial graphs cannot starve a worker.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn greedy_edge_cut(g: &ConflictGraph, shards: usize) -> Partition {
    assert!(shards > 0, "shard count must be positive");
    let n = g.len();
    let capacity = n.div_ceil(shards.max(1)).max(1);
    let mut assignment: Vec<u32> = vec![u32::MAX; n];
    let mut loads: Vec<usize> = vec![0; shards];
    let mut score: Vec<i64> = vec![0; shards];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if assignment[start] != u32::MAX {
            continue;
        }
        queue.push_back(ProcessId::from(start));
        while let Some(p) = queue.pop_front() {
            if assignment[p.index()] != u32::MAX {
                continue;
            }
            // Score = placed neighbors on the shard, minus a fullness
            // penalty so early vertices spread instead of piling onto
            // shard 0 (the classic LDG balance term).
            score.iter_mut().for_each(|s| *s = 0);
            for &q in g.neighbors(p) {
                let s = assignment[q.index()];
                if s != u32::MAX {
                    score[s as usize] += 2;
                }
            }
            let mut best = usize::MAX;
            let mut best_score = i64::MIN;
            for s in 0..shards {
                if loads[s] >= capacity {
                    continue;
                }
                let fullness = (loads[s] * 2 / capacity) as i64;
                let v = score[s] - fullness;
                if v > best_score {
                    best_score = v;
                    best = s;
                }
            }
            let chosen = if best == usize::MAX {
                // All shards at capacity can only happen transiently from
                // rounding; fall back to the least-loaded shard.
                (0..shards).min_by_key(|&s| loads[s]).unwrap()
            } else {
                best
            };
            assignment[p.index()] = chosen as u32;
            loads[chosen] += 1;
            for &q in g.neighbors(p) {
                if assignment[q.index()] == u32::MAX {
                    queue.push_back(q);
                }
            }
        }
    }
    Partition { assignment, shards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random, topology};

    #[test]
    fn covers_every_process_within_capacity() {
        let g = random::connected_gnp(100, 0.05, 5);
        for shards in [1, 2, 3, 4, 8] {
            let part = greedy_edge_cut(&g, shards);
            assert_eq!(part.assignment.len(), 100);
            assert!(part.assignment.iter().all(|&s| (s as usize) < shards));
            let cap = 100usize.div_ceil(shards);
            for (s, m) in part.members().iter().enumerate() {
                assert!(m.len() <= cap, "shard {s} over capacity: {}", m.len());
            }
        }
    }

    #[test]
    fn single_shard_has_no_cut() {
        let g = topology::grid(6, 6);
        let part = greedy_edge_cut(&g, 1);
        assert_eq!(part.cut_edges(&g), 0);
        assert!(part.assignment.iter().all(|&s| s == 0));
    }

    #[test]
    fn is_deterministic() {
        let g = random::powerlaw(500, 3, 2);
        assert_eq!(greedy_edge_cut(&g, 4), greedy_edge_cut(&g, 4));
    }

    #[test]
    fn ring_cut_is_near_minimal() {
        // A ring split into k contiguous arcs cuts exactly k edges; greedy
        // BFS placement should stay within a small constant of that.
        let g = topology::ring(64);
        let part = greedy_edge_cut(&g, 4);
        assert!(
            part.cut_edges(&g) <= 8,
            "ring-64 cut {} too large",
            part.cut_edges(&g)
        );
    }

    #[test]
    fn beats_round_robin_on_grid() {
        let g = topology::grid(16, 16);
        let part = greedy_edge_cut(&g, 4);
        let rr = Partition {
            assignment: (0..g.len()).map(|i| (i % 4) as u32).collect(),
            shards: 4,
        };
        assert!(
            part.cut_edges(&g) < rr.cut_edges(&g),
            "greedy {} >= round-robin {}",
            part.cut_edges(&g),
            rr.cut_edges(&g)
        );
    }

    #[test]
    fn more_shards_than_processes() {
        let g = topology::ring(3);
        let part = greedy_edge_cut(&g, 8);
        assert_eq!(part.assignment.len(), 3);
        assert_eq!(part.members().len(), 8);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn rejects_zero_shards() {
        let _ = greedy_edge_cut(&topology::ring(4), 0);
    }
}
