//! Standard conflict-graph families used by the experiments.
//!
//! Dijkstra's original dining philosophers live on a [`ring`]; Lynch's
//! generalization admits arbitrary conflict graphs, so the experiment
//! suite sweeps over the families below to exercise low-degree, high-degree,
//! and irregular instances.

use crate::{ConflictGraph, ProcessId};

/// A cycle `p0 - p1 - … - p(n-1) - p0` (Dijkstra's classic table).
///
/// # Panics
///
/// Panics if `n < 3` — smaller rings degenerate to duplicate edges.
pub fn ring(n: usize) -> ConflictGraph {
    assert!(n >= 3, "a ring needs at least 3 processes");
    let edges = (0..n).map(|i| (ProcessId::from(i), ProcessId::from((i + 1) % n)));
    ConflictGraph::new(n, edges).expect("ring construction is always valid")
}

/// A simple path `p0 - p1 - … - p(n-1)`.
pub fn path(n: usize) -> ConflictGraph {
    let edges = (1..n).map(|i| (ProcessId::from(i - 1), ProcessId::from(i)));
    ConflictGraph::new(n, edges).expect("path construction is always valid")
}

/// A star: `p0` is the hub, connected to every other process.
///
/// The hub has degree `n - 1`, the maximum-contention shape used in the
/// space-bound experiment (claim S1).
pub fn star(n: usize) -> ConflictGraph {
    assert!(n >= 1, "a star needs at least 1 process");
    let edges = (1..n).map(|i| (ProcessId(0), ProcessId::from(i)));
    ConflictGraph::new(n, edges).expect("star construction is always valid")
}

/// The complete graph `K_n`: every pair of processes conflicts.
///
/// This is the worst case (`δ = n - 1`) used for the `O(n)`-bits space
/// claim in §7 of the paper.
pub fn clique(n: usize) -> ConflictGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((ProcessId::from(i), ProcessId::from(j)));
        }
    }
    ConflictGraph::new(n, edges).expect("clique construction is always valid")
}

/// A `rows × cols` grid with 4-neighbor adjacency.
pub fn grid(rows: usize, cols: usize) -> ConflictGraph {
    let id = |r: usize, c: usize| ProcessId::from(r * cols + c);
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    ConflictGraph::new(rows * cols, edges).expect("grid construction is always valid")
}

/// A complete binary tree with `n` nodes (node `i` has children `2i+1`,
/// `2i+2`).
///
/// Sparse, partitionable by crashes — the shape for which the paper notes
/// ◇P₁ remains implementable (§8).
pub fn binary_tree(n: usize) -> ConflictGraph {
    let mut edges = Vec::new();
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                edges.push((ProcessId::from(i), ProcessId::from(child)));
            }
        }
    }
    ConflictGraph::new(n, edges).expect("tree construction is always valid")
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices: `i` and `j` are
/// adjacent iff they differ in exactly one bit.
///
/// Regular of degree `d` with logarithmic diameter — a standard shape for
/// scaling experiments that hold degree low while growing `n`.
pub fn hypercube(d: u32) -> ConflictGraph {
    assert!(d <= 16, "2^{d} vertices is beyond experiment scale");
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for i in 0..n {
        for b in 0..d {
            let j = i ^ (1 << b);
            if i < j {
                edges.push((ProcessId::from(i), ProcessId::from(j)));
            }
        }
    }
    ConflictGraph::new(n, edges).expect("hypercube construction is always valid")
}

/// A `rows × cols` torus: the grid with wrap-around rows and columns
/// (4-regular for `rows, cols ≥ 3`).
pub fn torus(rows: usize, cols: usize) -> ConflictGraph {
    assert!(rows >= 3 && cols >= 3, "a torus needs both dimensions ≥ 3");
    let id = |r: usize, c: usize| ProcessId::from(r * cols + c);
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols)));
            edges.push((id(r, c), id((r + 1) % rows, c)));
        }
    }
    ConflictGraph::new(rows * cols, edges).expect("torus construction is always valid")
}

/// A wheel: a hub (`p0`) connected to every vertex of an outer ring
/// `p1 … p(n-1)`.
///
/// Combines the star's central contention with the ring's local
/// contention; the hub has degree `n - 1`, ring vertices degree 3.
pub fn wheel(n: usize) -> ConflictGraph {
    assert!(n >= 4, "a wheel needs a hub and a ring of at least 3");
    let mut edges: Vec<(ProcessId, ProcessId)> =
        (1..n).map(|i| (ProcessId(0), ProcessId::from(i))).collect();
    for i in 1..n {
        let next = if i == n - 1 { 1 } else { i + 1 };
        edges.push((ProcessId::from(i), ProcessId::from(next)));
    }
    ConflictGraph::new(n, edges).expect("wheel construction is always valid")
}

/// The complete bipartite graph `K_{a,b}`: every one of the first `a`
/// vertices conflicts with every one of the remaining `b`.
///
/// Models client/server-style contention (two classes, all conflicts
/// across); 2-colorable, so only two priority levels exist.
pub fn complete_bipartite(a: usize, b: usize) -> ConflictGraph {
    let mut edges = Vec::with_capacity(a * b);
    for i in 0..a {
        for j in 0..b {
            edges.push((ProcessId::from(i), ProcessId::from(a + j)));
        }
    }
    ConflictGraph::new(a + b, edges).expect("bipartite construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.processes().all(|p| g.degree(p) == 2));
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        let _ = ring(2);
    }

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(ProcessId(0)), 1);
        assert_eq!(g.degree(ProcessId(1)), 2);
        assert!(g.is_connected());
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(ProcessId(0)), 5);
        assert_eq!(g.max_degree(), 5);
        assert!((1..6).all(|i| g.degree(ProcessId::from(i)) == 1));
    }

    #[test]
    fn clique_shape() {
        let g = clique(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_connected());
        assert_eq!(clique(1).edge_count(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.len(), 12);
        // edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.len(), 8);
        assert_eq!(g.edge_count(), 12);
        assert!(g.processes().all(|p| g.degree(p) == 3));
        assert!(g.is_connected());
        let g0 = hypercube(0);
        assert_eq!(g0.len(), 1);
        assert_eq!(g0.edge_count(), 0);
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 24);
        assert!(g.processes().all(|p| g.degree(p) == 4));
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "dimensions ≥ 3")]
    fn torus_too_small() {
        let _ = torus(2, 5);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.degree(ProcessId(0)), 5);
        assert!((1..6).all(|i| g.degree(ProcessId::from(i)) == 3));
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_connected());
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(ProcessId(0)), 3);
        assert_eq!(g.degree(ProcessId(3)), 2);
        // Bipartite: two colors suffice.
        let colors = crate::coloring::greedy(&g);
        assert_eq!(crate::coloring::palette_size(&colors), 2);
    }

    #[test]
    fn tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(ProcessId(0)), 2);
        assert_eq!(g.degree(ProcessId(1)), 3);
        assert!(g.is_connected());
    }
}
