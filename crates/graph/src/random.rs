//! Seeded random-graph generators.
//!
//! Everything here is deterministic in the seed, so property tests across
//! the workspace can shrink on `(seed, n, p)` triples and replay failures
//! exactly.

use crate::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: each of the `n·(n-1)/2` possible edges is present
/// independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> ConflictGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((ProcessId::from(i), ProcessId::from(j)));
            }
        }
    }
    ConflictGraph::new(n, edges).expect("gnp edges are valid by construction")
}

/// A connected variant of [`gnp`]: starts from a uniformly random spanning
/// tree (random-permutation attachment) and sprinkles extra `G(n, p)` edges
/// on top.
///
/// Connectivity matters for experiments that route hunger through every
/// process: an isolated vertex trivially satisfies every dining property.
pub fn connected_gnp(n: usize, p: f64, seed: u64) -> ConflictGraph {
    if n == 0 {
        return ConflictGraph::from_pairs(0, &[]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut edges: Vec<(ProcessId, ProcessId)> = Vec::new();
    for k in 1..n {
        // Attach the k-th vertex of the permutation to a random earlier one.
        let parent = order[rng.gen_range(0..k)];
        edges.push((ProcessId::from(order[k]), ProcessId::from(parent)));
    }
    let mut have: std::collections::HashSet<crate::Edge> =
        edges.iter().map(|&(a, b)| crate::Edge::new(a, b)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let e = crate::Edge::new(ProcessId::from(i), ProcessId::from(j));
            if !have.contains(&e) && rng.gen_bool(p.clamp(0.0, 1.0)) {
                have.insert(e);
                edges.push((ProcessId::from(i), ProcessId::from(j)));
            }
        }
    }
    ConflictGraph::new(n, edges).expect("connected_gnp edges are valid by construction")
}

/// Sparse `G(n, p)` via geometric edge skipping: instead of flipping a coin
/// per candidate pair (`O(n²)` RNG draws), jump straight to the next present
/// edge with a geometric skip length, so work is `O(n + m)`.
///
/// The sampled distribution is exactly `G(n, p)`, but the *stream of RNG
/// draws* differs from [`gnp`], so for a given seed the two generators
/// produce different (equally valid) graphs. Small-graph call sites that
/// have golden traces keyed to [`gnp`] must keep using it; the CLI only
/// routes to this generator above a size threshold.
pub fn sparse_gnp(n: usize, p: f64, seed: u64) -> ConflictGraph {
    let p = p.clamp(0.0, 1.0);
    if n < 2 || p <= 0.0 {
        return ConflictGraph::new(n, Vec::new()).expect("empty graph is valid");
    }
    if p >= 1.0 {
        return gnp(n, 1.0, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    // Candidate pairs (i, j), i < j, enumerated lexicographically as a flat
    // index; `log(1 - u) / log(1 - p)` skips are i.i.d. geometric.
    let total = n as u64 * (n as u64 - 1) / 2;
    let ln_q = (1.0 - p).ln();
    let mut cursor: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / ln_q).floor() as u64;
        cursor = match cursor.checked_add(skip) {
            Some(c) => c,
            None => break,
        };
        if cursor >= total {
            break;
        }
        // Unrank `cursor` to (i, j): row i holds n-1-i pairs.
        let mut i = 0u64;
        let mut idx = cursor;
        let mut row = n as u64 - 1;
        while idx >= row {
            idx -= row;
            i += 1;
            row -= 1;
        }
        let j = i + 1 + idx;
        edges.push((ProcessId::from(i as usize), ProcessId::from(j as usize)));
        cursor += 1;
    }
    ConflictGraph::new(n, edges).expect("sparse_gnp edges are valid by construction")
}

/// Seeded Barabási–Albert-style power-law graph: starts from a clique on
/// `m + 1` vertices, then attaches each new vertex to `m` distinct existing
/// vertices chosen with probability proportional to their current degree
/// (preferential attachment via the repeated-endpoints list).
///
/// The resulting degree distribution has a heavy tail (`P(deg = d) ∝ d⁻³`
/// asymptotically) — hubs of degree `≫ m` alongside a majority at exactly
/// `m` — which is the contention regime where distributed daemons differ
/// most from central ones.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn powerlaw(n: usize, m: usize, seed: u64) -> ConflictGraph {
    assert!(m > 0, "attachment count m must be positive");
    let core = (m + 1).min(n);
    let mut edges: Vec<(ProcessId, ProcessId)> = Vec::new();
    // `targets` lists every edge endpoint once per incidence, so uniform
    // sampling from it is degree-proportional sampling of vertices.
    let mut targets: Vec<usize> = Vec::with_capacity(2 * n * m);
    for i in 0..core {
        for j in (i + 1)..core {
            edges.push((ProcessId::from(i), ProcessId::from(j)));
            targets.push(i);
            targets.push(j);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: Vec<usize> = Vec::with_capacity(m);
    for v in core..n {
        picked.clear();
        while picked.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((ProcessId::from(v), ProcessId::from(t)));
            targets.push(v);
            targets.push(t);
        }
    }
    ConflictGraph::new(n, edges).expect("powerlaw edges are valid by construction")
}

/// A random `d`-regular-ish graph built by edge switching over a ring
/// (degree is exactly `d` when `n·d` is even and `d < n`; otherwise falls
/// back to the nearest feasible construction).
///
/// Used where experiments want to hold degree constant while growing `n`.
pub fn regularish(n: usize, d: usize, seed: u64) -> ConflictGraph {
    assert!(d < n.max(1), "degree must be < n");
    if n == 0 || d == 0 {
        return ConflictGraph::new(n, Vec::new()).expect("empty graph is valid");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Circulant base graph: connect each i to i±1, i±2, …, i±⌈d/2⌉.
    let half = d / 2;
    let mut set = std::collections::BTreeSet::new();
    for i in 0..n {
        for k in 1..=half {
            set.insert(crate::Edge::new(
                ProcessId::from(i),
                ProcessId::from((i + k) % n),
            ));
        }
        if d % 2 == 1 && n.is_multiple_of(2) {
            // Perfect matching across the ring for odd degree.
            set.insert(crate::Edge::new(
                ProcessId::from(i),
                ProcessId::from((i + n / 2) % n),
            ));
        }
    }
    // Randomize with double-edge swaps that preserve the degree sequence.
    let mut edges: Vec<crate::Edge> = set.iter().copied().collect();
    let swaps = edges.len() * 4;
    for _ in 0..swaps {
        if edges.len() < 2 {
            break;
        }
        let a = rng.gen_range(0..edges.len());
        let b = rng.gen_range(0..edges.len());
        if a == b {
            continue;
        }
        let (e1, e2) = (edges[a], edges[b]);
        let (x, y, u, v) = (e1.lo, e1.hi, e2.lo, e2.hi);
        if x == u || x == v || y == u || y == v {
            continue;
        }
        let n1 = crate::Edge::new(x, u);
        let n2 = crate::Edge::new(y, v);
        if set.contains(&n1) || set.contains(&n2) {
            continue;
        }
        set.remove(&e1);
        set.remove(&e2);
        set.insert(n1);
        set.insert(n2);
        edges[a] = n1;
        edges[b] = n2;
    }
    ConflictGraph::new(n, set.into_iter().map(|e| (e.lo, e.hi)))
        .expect("edge swaps preserve validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_in_seed() {
        let a = gnp(20, 0.3, 42);
        let b = gnp(20, 0.3, 42);
        assert_eq!(a, b);
        let c = gnp(20, 0.3, 43);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        for seed in 0..20 {
            let g = connected_gnp(25, 0.05, seed);
            assert!(g.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn connected_gnp_handles_tiny() {
        assert!(connected_gnp(0, 0.5, 7).is_empty());
        assert_eq!(connected_gnp(1, 0.5, 7).len(), 1);
        assert_eq!(connected_gnp(2, 0.0, 7).edge_count(), 1);
    }

    #[test]
    fn regularish_has_uniform_degree_when_feasible() {
        let g = regularish(12, 4, 5);
        assert!(g.processes().all(|p| g.degree(p) == 4));
        let g = regularish(10, 3, 9);
        assert!(g.processes().all(|p| g.degree(p) == 3));
    }

    #[test]
    fn regularish_deterministic() {
        assert_eq!(regularish(16, 4, 11), regularish(16, 4, 11));
    }

    #[test]
    #[should_panic(expected = "degree must be < n")]
    fn regularish_rejects_degree_ge_n() {
        let _ = regularish(4, 4, 0);
    }

    #[test]
    fn sparse_gnp_is_deterministic_in_seed() {
        let a = sparse_gnp(200, 0.05, 42);
        let b = sparse_gnp(200, 0.05, 42);
        assert_eq!(a, b);
        let c = sparse_gnp(200, 0.05, 43);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn sparse_gnp_extremes() {
        assert_eq!(sparse_gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(sparse_gnp(10, 1.0, 1).edge_count(), 45);
        assert!(sparse_gnp(0, 0.5, 1).is_empty());
        assert_eq!(sparse_gnp(1, 0.5, 1).len(), 1);
    }

    #[test]
    fn sparse_gnp_edge_density_matches_p() {
        // 500 vertices, p = 0.02 → expected m ≈ 2495, sd ≈ 49. Accept ±5 sd.
        let g = sparse_gnp(500, 0.02, 7);
        let m = g.edge_count() as f64;
        assert!((2250.0..=2750.0).contains(&m), "edge count {m} implausible");
    }

    #[test]
    fn powerlaw_is_deterministic_in_seed() {
        let a = powerlaw(300, 3, 9);
        let b = powerlaw(300, 3, 9);
        assert_eq!(a, b);
        let c = powerlaw(300, 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn powerlaw_shape() {
        let n = 400;
        let m = 3;
        let g = powerlaw(n, m, 11);
        assert_eq!(g.len(), n);
        assert!(g.is_connected(), "BA attachment keeps the graph connected");
        // Every vertex after the core attaches with exactly m edges; the
        // core is a clique on m+1 vertices.
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
        assert!(g.processes().all(|p| g.degree(p) >= m));
    }

    #[test]
    fn powerlaw_has_heavy_tail() {
        let n = 1000;
        let m = 2;
        let g = powerlaw(n, m, 3);
        let mut degs: Vec<usize> = g.processes().map(|p| g.degree(p)).collect();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[n / 2];
        // Preferential attachment: hubs grow ≫ the median (which stays ≈ m),
        // unlike gnp where max/median is O(1). 8× is conservative at n=1000.
        assert!(median <= 2 * m, "median degree {median} should stay near m");
        assert!(
            max >= 8 * median,
            "max degree {max} vs median {median}: no heavy tail"
        );
        // Degree-counting sanity: ~half of all vertices sit at exactly m.
        let at_m = degs.iter().filter(|&&d| d == m).count();
        assert!(
            at_m * 3 >= n,
            "expected a large mass at degree m, got {at_m}"
        );
    }

    #[test]
    fn powerlaw_tiny_instances() {
        assert!(powerlaw(0, 2, 1).is_empty());
        assert_eq!(powerlaw(1, 2, 1).edge_count(), 0);
        // n=3, m=2: core clique on min(m+1, n) = 3 vertices.
        assert_eq!(powerlaw(3, 2, 1).edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "attachment count m must be positive")]
    fn powerlaw_rejects_zero_m() {
        let _ = powerlaw(10, 0, 1);
    }
}
