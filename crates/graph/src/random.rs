//! Seeded random-graph generators.
//!
//! Everything here is deterministic in the seed, so property tests across
//! the workspace can shrink on `(seed, n, p)` triples and replay failures
//! exactly.

use crate::{ConflictGraph, ProcessId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: each of the `n·(n-1)/2` possible edges is present
/// independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> ConflictGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((ProcessId::from(i), ProcessId::from(j)));
            }
        }
    }
    ConflictGraph::new(n, edges).expect("gnp edges are valid by construction")
}

/// A connected variant of [`gnp`]: starts from a uniformly random spanning
/// tree (random-permutation attachment) and sprinkles extra `G(n, p)` edges
/// on top.
///
/// Connectivity matters for experiments that route hunger through every
/// process: an isolated vertex trivially satisfies every dining property.
pub fn connected_gnp(n: usize, p: f64, seed: u64) -> ConflictGraph {
    if n == 0 {
        return ConflictGraph::from_pairs(0, &[]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut edges: Vec<(ProcessId, ProcessId)> = Vec::new();
    for k in 1..n {
        // Attach the k-th vertex of the permutation to a random earlier one.
        let parent = order[rng.gen_range(0..k)];
        edges.push((ProcessId::from(order[k]), ProcessId::from(parent)));
    }
    let mut have: std::collections::HashSet<crate::Edge> =
        edges.iter().map(|&(a, b)| crate::Edge::new(a, b)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let e = crate::Edge::new(ProcessId::from(i), ProcessId::from(j));
            if !have.contains(&e) && rng.gen_bool(p.clamp(0.0, 1.0)) {
                have.insert(e);
                edges.push((ProcessId::from(i), ProcessId::from(j)));
            }
        }
    }
    ConflictGraph::new(n, edges).expect("connected_gnp edges are valid by construction")
}

/// A random `d`-regular-ish graph built by edge switching over a ring
/// (degree is exactly `d` when `n·d` is even and `d < n`; otherwise falls
/// back to the nearest feasible construction).
///
/// Used where experiments want to hold degree constant while growing `n`.
pub fn regularish(n: usize, d: usize, seed: u64) -> ConflictGraph {
    assert!(d < n.max(1), "degree must be < n");
    if n == 0 || d == 0 {
        return ConflictGraph::new(n, Vec::new()).expect("empty graph is valid");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Circulant base graph: connect each i to i±1, i±2, …, i±⌈d/2⌉.
    let half = d / 2;
    let mut set = std::collections::BTreeSet::new();
    for i in 0..n {
        for k in 1..=half {
            set.insert(crate::Edge::new(
                ProcessId::from(i),
                ProcessId::from((i + k) % n),
            ));
        }
        if d % 2 == 1 && n.is_multiple_of(2) {
            // Perfect matching across the ring for odd degree.
            set.insert(crate::Edge::new(
                ProcessId::from(i),
                ProcessId::from((i + n / 2) % n),
            ));
        }
    }
    // Randomize with double-edge swaps that preserve the degree sequence.
    let mut edges: Vec<crate::Edge> = set.iter().copied().collect();
    let swaps = edges.len() * 4;
    for _ in 0..swaps {
        if edges.len() < 2 {
            break;
        }
        let a = rng.gen_range(0..edges.len());
        let b = rng.gen_range(0..edges.len());
        if a == b {
            continue;
        }
        let (e1, e2) = (edges[a], edges[b]);
        let (x, y, u, v) = (e1.lo, e1.hi, e2.lo, e2.hi);
        if x == u || x == v || y == u || y == v {
            continue;
        }
        let n1 = crate::Edge::new(x, u);
        let n2 = crate::Edge::new(y, v);
        if set.contains(&n1) || set.contains(&n2) {
            continue;
        }
        set.remove(&e1);
        set.remove(&e2);
        set.insert(n1);
        set.insert(n2);
        edges[a] = n1;
        edges[b] = n2;
    }
    ConflictGraph::new(n, set.into_iter().map(|e| (e.lo, e.hi)))
        .expect("edge swaps preserve validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_in_seed() {
        let a = gnp(20, 0.3, 42);
        let b = gnp(20, 0.3, 42);
        assert_eq!(a, b);
        let c = gnp(20, 0.3, 43);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        for seed in 0..20 {
            let g = connected_gnp(25, 0.05, seed);
            assert!(g.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn connected_gnp_handles_tiny() {
        assert!(connected_gnp(0, 0.5, 7).is_empty());
        assert_eq!(connected_gnp(1, 0.5, 7).len(), 1);
        assert_eq!(connected_gnp(2, 0.0, 7).edge_count(), 1);
    }

    #[test]
    fn regularish_has_uniform_degree_when_feasible() {
        let g = regularish(12, 4, 5);
        assert!(g.processes().all(|p| g.degree(p) == 4));
        let g = regularish(10, 3, 9);
        assert!(g.processes().all(|p| g.degree(p) == 3));
    }

    #[test]
    fn regularish_deterministic() {
        assert_eq!(regularish(16, 4, 11), regularish(16, 4, 11));
    }

    #[test]
    #[should_panic(expected = "degree must be < n")]
    fn regularish_rejects_degree_ge_n() {
        let _ = regularish(4, 4, 0);
    }
}
