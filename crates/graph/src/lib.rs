//! Conflict graphs for dining-philosophers-based distributed daemons.
//!
//! A dining instance is modeled by an undirected *conflict graph*
//! `C = (Π, E)` where each vertex is a process (diner) and each edge
//! `(i, j)` indicates that `i` and `j` must never be scheduled to execute
//! conflicting actions simultaneously (Song & Pike, DSN 2007, §2).
//!
//! This crate provides:
//!
//! * [`ConflictGraph`] — an immutable, validated adjacency structure,
//! * [`topology`] — standard graph families used throughout the
//!   experiments (ring, path, star, clique, grid, tree, random `G(n, p)`),
//! * [`coloring`] — greedy and DSATUR node colorings producing the static
//!   priorities required by Algorithm 1 (no two neighbors share a color,
//!   `O(δ)` distinct values),
//! * [`random`] — seeded random-graph generators for property tests
//!   (including sparse `G(n, p)` and Barabási–Albert power-law graphs for
//!   the scale tier),
//! * [`partition`] — deterministic greedy edge-cut partitioning for the
//!   sharded simulation kernel,
//! * [`membership`] — dynamic membership over a fixed maximum population
//!   with incremental `(δ + 1)`-recoloring: joiners pick the least color
//!   absent from their present neighborhood and survivors are never
//!   recolored, so in-flight dining sessions keep their priorities.
//!
//! # Example
//!
//! ```
//! use ekbd_graph::{topology, coloring};
//!
//! let g = topology::ring(5);
//! assert_eq!(g.len(), 5);
//! assert_eq!(g.edge_count(), 5);
//!
//! let colors = coloring::greedy(&g);
//! coloring::validate(&g, &colors).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
mod graph;
pub mod membership;
pub mod partition;
pub mod random;
pub mod topology;

pub use graph::{ConflictGraph, Edge, GraphError, ProcessId};
pub use membership::{Membership, MembershipError};
