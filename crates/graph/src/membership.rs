//! Online membership with incremental `(δ + 1)`-recoloring.
//!
//! Dynamic membership makes the conflict graph itself part of the fault
//! model: the environment adds and removes participants while the dining
//! protocol must keep its safety guarantees for the survivors. The key
//! constraint is that a node's color doubles as its *static priority*
//! (Algorithm 1 resolves fork conflicts by color), so recoloring a live
//! node would silently reorder in-flight sessions. [`Membership`] therefore
//! colors *incrementally*: a joining node picks the least color absent from
//! its currently-present neighborhood, and the colors of present nodes
//! never change afterwards.
//!
//! Because a joiner's color is at most its present-neighbor count, every
//! color ever assigned is `≤ δ`, so the palette stays within the same
//! `δ + 1` bound the static [`greedy`](crate::coloring::greedy) coloring
//! guarantees — for *any* interleaving of joins and leaves.
//!
//! Note that the full graph may end up improperly colored in the classical
//! sense: two neighbors that are never present together may share a color.
//! Only the induced subgraph of present nodes is (and must be) proper; see
//! [`Membership::validate_present`].

use crate::coloring::Color;
use crate::{ConflictGraph, ProcessId};
use std::fmt;

/// Error returned by [`Membership`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// A join was requested for a node that is already present.
    AlreadyPresent(ProcessId),
    /// A leave was requested for a node that is not present.
    NotPresent(ProcessId),
    /// Two *present* neighbors share a color (only possible if the
    /// structure was seeded with an improper initial coloring).
    MonochromaticEdge {
        /// First endpoint.
        a: ProcessId,
        /// Second endpoint.
        b: ProcessId,
        /// The shared color.
        color: Color,
    },
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::AlreadyPresent(p) => write!(f, "{p} is already a member"),
            MembershipError::NotPresent(p) => write!(f, "{p} is not a member"),
            MembershipError::MonochromaticEdge { a, b, color } => {
                write!(f, "present neighbors {a} and {b} share color {color}")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

/// Returns the least color not in `used` — the incremental coloring rule.
pub fn least_absent_color(used: impl IntoIterator<Item = Color>) -> Color {
    let mut used: Vec<Color> = used.into_iter().collect();
    used.sort_unstable();
    used.dedup();
    let mut c = 0;
    for u in used {
        if u == c {
            c += 1;
        } else if u > c {
            break;
        }
    }
    c
}

/// A dynamic-membership view over a fixed maximum population.
///
/// The underlying [`ConflictGraph`] is the pre-allocated *potential*
/// conflict graph over all processes that may ever exist; membership is a
/// presence bit per process. Colors are assigned on join and frozen while
/// the node is present.
#[derive(Clone, Debug)]
pub struct Membership {
    graph: ConflictGraph,
    present: Vec<bool>,
    colors: Vec<Color>,
}

impl Membership {
    /// Builds a membership view in which exactly the nodes flagged in
    /// `initial` are present, colored greedily (in id order, each picking
    /// the least color absent among its already-colored present
    /// neighbors). Absent nodes get color 0 as a placeholder; their real
    /// color is assigned when they join.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != graph.len()`.
    pub fn new(graph: ConflictGraph, initial: &[bool]) -> Self {
        assert_eq!(
            initial.len(),
            graph.len(),
            "presence flags must cover every vertex"
        );
        let mut colors = vec![0; graph.len()];
        for p in graph.processes() {
            if !initial[p.index()] {
                continue;
            }
            colors[p.index()] = least_absent_color(
                graph
                    .neighbors(p)
                    .iter()
                    .filter(|q| q.index() < p.index() && initial[q.index()])
                    .map(|q| colors[q.index()]),
            );
        }
        Membership {
            graph,
            present: initial.to_vec(),
            colors,
        }
    }

    /// Builds a membership view with every node present, equivalent to the
    /// static greedy coloring.
    pub fn full(graph: ConflictGraph) -> Self {
        let n = graph.len();
        Self::new(graph, &vec![true; n])
    }

    /// The underlying (maximum-population) conflict graph.
    pub fn graph(&self) -> &ConflictGraph {
        &self.graph
    }

    /// Whether `p` is currently a member.
    pub fn is_present(&self, p: ProcessId) -> bool {
        self.present[p.index()]
    }

    /// Current presence flags, indexed by process id.
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    /// Current colors, indexed by process id. Entries for absent nodes are
    /// stale (their last assigned color, or 0 if they never joined).
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// The color of `p` (meaningful only while `p` is present).
    pub fn color(&self, p: ProcessId) -> Color {
        self.colors[p.index()]
    }

    /// The color an absent node would receive if it joined now: the least
    /// color absent from its present neighborhood. Pure — does not mutate.
    pub fn join_color(&self, p: ProcessId) -> Color {
        least_absent_color(
            self.graph
                .neighbors(p)
                .iter()
                .filter(|q| self.present[q.index()])
                .map(|q| self.colors[q.index()]),
        )
    }

    /// Admits `p`, assigning it [`Membership::join_color`]. No present
    /// node's color changes. Returns the assigned color.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipError::AlreadyPresent`] if `p` is a member.
    pub fn join(&mut self, p: ProcessId) -> Result<Color, MembershipError> {
        if self.present[p.index()] {
            return Err(MembershipError::AlreadyPresent(p));
        }
        let c = self.join_color(p);
        self.colors[p.index()] = c;
        self.present[p.index()] = true;
        Ok(c)
    }

    /// Removes `p` from the membership. Its color entry is left in place
    /// (frozen) but becomes meaningless until a future join reassigns it.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipError::NotPresent`] if `p` is not a member.
    pub fn leave(&mut self, p: ProcessId) -> Result<(), MembershipError> {
        if !self.present[p.index()] {
            return Err(MembershipError::NotPresent(p));
        }
        self.present[p.index()] = false;
        Ok(())
    }

    /// Checks that the coloring restricted to present nodes is proper.
    ///
    /// # Errors
    ///
    /// Returns the first monochromatic present edge found, if any.
    pub fn validate_present(&self) -> Result<(), MembershipError> {
        for e in self.graph.edges() {
            if self.present[e.lo.index()]
                && self.present[e.hi.index()]
                && self.colors[e.lo.index()] == self.colors[e.hi.index()]
            {
                return Err(MembershipError::MonochromaticEdge {
                    a: e.lo,
                    b: e.hi,
                    color: self.colors[e.lo.index()],
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coloring, topology};

    #[test]
    fn least_absent_color_rule() {
        assert_eq!(least_absent_color([]), 0);
        assert_eq!(least_absent_color([0, 1, 2]), 3);
        assert_eq!(least_absent_color([1, 2]), 0);
        assert_eq!(least_absent_color([0, 2, 2, 5]), 1);
    }

    #[test]
    fn full_membership_matches_greedy() {
        for g in [topology::ring(7), topology::clique(5), topology::grid(3, 4)] {
            let greedy = coloring::greedy(&g);
            let m = Membership::full(g);
            assert_eq!(m.colors(), &greedy[..]);
            m.validate_present().unwrap();
        }
    }

    #[test]
    fn join_picks_least_absent_and_keeps_survivors() {
        // Ring of 5 with p2 initially absent.
        let g = topology::ring(5);
        let mut present = vec![true; 5];
        present[2] = false;
        let mut m = Membership::new(g, &present);
        m.validate_present().unwrap();
        let before = m.colors().to_vec();
        let c = m.join(ProcessId(2)).unwrap();
        // Neighbors p1, p3 hold colors 1 and 0 ⇒ least absent is 2.
        assert_eq!(c, 2);
        m.validate_present().unwrap();
        for (p, &was) in before.iter().enumerate() {
            if p != 2 {
                assert_eq!(m.colors()[p], was, "survivor p{p} recolored");
            }
        }
    }

    #[test]
    fn double_join_and_ghost_leave_are_errors() {
        let mut m = Membership::full(topology::ring(4));
        assert_eq!(
            m.join(ProcessId(1)),
            Err(MembershipError::AlreadyPresent(ProcessId(1)))
        );
        m.leave(ProcessId(1)).unwrap();
        assert_eq!(
            m.leave(ProcessId(1)),
            Err(MembershipError::NotPresent(ProcessId(1)))
        );
    }

    #[test]
    fn rejoin_after_leave_can_reuse_freed_color() {
        let g = topology::clique(4);
        let mut m = Membership::full(g);
        assert_eq!(m.color(ProcessId(0)), 0);
        m.leave(ProcessId(0)).unwrap();
        // With 1,2,3 holding colors 1,2,3 the freed color 0 is reused.
        assert_eq!(m.join(ProcessId(0)).unwrap(), 0);
        m.validate_present().unwrap();
    }

    #[test]
    fn colors_stay_within_delta_plus_one() {
        let g = crate::random::connected_gnp(12, 0.4, 3);
        let delta = g.max_degree();
        let mut m = Membership::full(g);
        // Churn every node once and check the palette bound throughout.
        for i in 0..12usize {
            m.leave(ProcessId::from(i)).unwrap();
            let c = m.join(ProcessId::from(i)).unwrap();
            assert!((c as usize) <= delta);
            m.validate_present().unwrap();
        }
    }

    #[test]
    fn validate_catches_bad_seed_coloring() {
        let g = topology::path(2);
        let mut m = Membership::full(g);
        // Force an improper coloring through the back door.
        m.colors[1] = m.colors[0];
        assert!(matches!(
            m.validate_present(),
            Err(MembershipError::MonochromaticEdge { .. })
        ));
    }
}
