//! Node colorings used as static process priorities.
//!
//! Algorithm 1 resolves fork conflicts in favor of the neighbor with the
//! higher color, so it requires a coloring in which *no two neighbors share
//! a color*. The paper notes that "standard node-coloring approximation
//! algorithms can compute such colorings in polynomial time using only
//! `O(δ)` distinct values" (§3.1); [`greedy`] and [`dsatur`] are two such
//! algorithms, both guaranteed to use at most `δ + 1` colors.

use crate::{ConflictGraph, ProcessId};
use std::fmt;

/// A color, i.e. a static process priority. Higher color = higher priority.
pub type Color = u32;

/// Error returned by [`validate`] when a coloring is not proper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColoringError {
    /// The coloring assigns colors to a different number of vertices than
    /// the graph has.
    LengthMismatch {
        /// Number of colors supplied.
        colors: usize,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// Two neighbors share a color.
    MonochromaticEdge {
        /// First endpoint.
        a: ProcessId,
        /// Second endpoint.
        b: ProcessId,
        /// The shared color.
        color: Color,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::LengthMismatch { colors, vertices } => write!(
                f,
                "coloring has {colors} entries but the graph has {vertices} vertices"
            ),
            ColoringError::MonochromaticEdge { a, b, color } => {
                write!(f, "neighbors {a} and {b} share color {color}")
            }
        }
    }
}

impl std::error::Error for ColoringError {}

/// Checks that `colors` is a proper coloring of `g`.
///
/// # Errors
///
/// Returns the first violation found, if any.
pub fn validate(g: &ConflictGraph, colors: &[Color]) -> Result<(), ColoringError> {
    if colors.len() != g.len() {
        return Err(ColoringError::LengthMismatch {
            colors: colors.len(),
            vertices: g.len(),
        });
    }
    for e in g.edges() {
        let (ca, cb) = (colors[e.lo.index()], colors[e.hi.index()]);
        if ca == cb {
            return Err(ColoringError::MonochromaticEdge {
                a: e.lo,
                b: e.hi,
                color: ca,
            });
        }
    }
    Ok(())
}

/// Greedy coloring in process-id order; uses at most `δ + 1` colors.
pub fn greedy(g: &ConflictGraph) -> Vec<Color> {
    let mut colors: Vec<Option<Color>> = vec![None; g.len()];
    for p in g.processes() {
        let used: Vec<Color> = g
            .neighbors(p)
            .iter()
            .filter_map(|&q| colors[q.index()])
            .collect();
        let c = (0..).find(|c| !used.contains(c)).expect("finite palette");
        colors[p.index()] = Some(c);
    }
    colors.into_iter().map(|c| c.unwrap_or(0)).collect()
}

/// DSATUR coloring (Brélaz 1979): repeatedly colors the uncolored vertex
/// with the highest *saturation* (number of distinct neighbor colors),
/// breaking ties by degree then id. Also bounded by `δ + 1` colors and
/// typically tighter than [`greedy`] on irregular graphs.
pub fn dsatur(g: &ConflictGraph) -> Vec<Color> {
    let n = g.len();
    let mut colors: Vec<Option<Color>> = vec![None; n];
    for _ in 0..n {
        // Select the uncolored vertex with maximum (saturation, degree, -id).
        let next = g
            .processes()
            .filter(|p| colors[p.index()].is_none())
            .max_by_key(|&p| {
                let mut sat: Vec<Color> = g
                    .neighbors(p)
                    .iter()
                    .filter_map(|&q| colors[q.index()])
                    .collect();
                sat.sort_unstable();
                sat.dedup();
                (sat.len(), g.degree(p), std::cmp::Reverse(p.index()))
            })
            .expect("an uncolored vertex remains");
        let used: Vec<Color> = g
            .neighbors(next)
            .iter()
            .filter_map(|&q| colors[q.index()])
            .collect();
        let c = (0..).find(|c| !used.contains(c)).expect("finite palette");
        colors[next.index()] = Some(c);
    }
    colors.into_iter().map(|c| c.unwrap_or(0)).collect()
}

/// Number of distinct colors used by a coloring.
pub fn palette_size(colors: &[Color]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn greedy_is_proper_and_bounded() {
        for g in [
            topology::ring(7),
            topology::clique(6),
            topology::star(9),
            topology::grid(4, 5),
            topology::binary_tree(15),
        ] {
            let colors = greedy(&g);
            validate(&g, &colors).unwrap();
            assert!(palette_size(&colors) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn dsatur_is_proper_and_bounded() {
        for g in [
            topology::ring(8),
            topology::clique(5),
            topology::star(10),
            topology::grid(3, 3),
            topology::binary_tree(10),
        ] {
            let colors = dsatur(&g);
            validate(&g, &colors).unwrap();
            assert!(palette_size(&colors) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn dsatur_colors_odd_ring_with_three() {
        let colors = dsatur(&topology::ring(9));
        assert_eq!(palette_size(&colors), 3);
    }

    #[test]
    fn greedy_colors_bipartite_grid_with_two() {
        let colors = greedy(&topology::grid(4, 4));
        assert_eq!(palette_size(&colors), 2);
    }

    #[test]
    fn validate_catches_length_mismatch() {
        let g = topology::ring(4);
        assert_eq!(
            validate(&g, &[0, 1, 0]),
            Err(ColoringError::LengthMismatch {
                colors: 3,
                vertices: 4
            })
        );
    }

    #[test]
    fn validate_catches_monochromatic_edge() {
        let g = topology::path(3);
        let err = validate(&g, &[1, 1, 0]).unwrap_err();
        assert!(matches!(
            err,
            ColoringError::MonochromaticEdge { color: 1, .. }
        ));
        assert!(err.to_string().contains("share color"));
    }

    #[test]
    fn clique_needs_n_colors() {
        let g = topology::clique(6);
        assert_eq!(palette_size(&greedy(&g)), 6);
        assert_eq!(palette_size(&dsatur(&g)), 6);
    }

    #[test]
    fn empty_graph_coloring() {
        let g = crate::ConflictGraph::from_pairs(0, &[]);
        assert!(greedy(&g).is_empty());
        assert!(dsatur(&g).is_empty());
        validate(&g, &[]).unwrap();
    }
}
