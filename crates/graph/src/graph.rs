use std::fmt;

/// Identifier of a process (diner) in the conflict graph.
///
/// Process ids are dense indices `0..n` assigned at graph construction;
/// they double as vector indices throughout the workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the id as a `usize` suitable for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(v: usize) -> Self {
        ProcessId(u32::try_from(v).expect("process id exceeds u32::MAX"))
    }
}

/// An undirected edge of the conflict graph, stored in canonical
/// (smaller-endpoint-first) order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// The endpoint with the smaller process id.
    pub lo: ProcessId,
    /// The endpoint with the larger process id.
    pub hi: ProcessId,
}

impl Edge {
    /// Creates the canonical edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (the conflict graph has no self-loops).
    pub fn new(a: ProcessId, b: ProcessId) -> Self {
        assert!(a != b, "conflict graph has no self-loops");
        if a < b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// Returns the endpoint opposite to `p`, or `None` if `p` is not an
    /// endpoint of this edge.
    pub fn other(&self, p: ProcessId) -> Option<ProcessId> {
        if p == self.lo {
            Some(self.hi)
        } else if p == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

/// Errors produced when constructing a [`ConflictGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: ProcessId,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An edge connected a vertex to itself.
    SelfLoop(ProcessId),
    /// The same edge appeared twice.
    DuplicateEdge(Edge),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph of {n} vertices")
            }
            GraphError::SelfLoop(p) => write!(f, "self-loop at {p}"),
            GraphError::DuplicateEdge(e) => write!(f, "duplicate edge {e:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable undirected conflict graph over processes `0..n`.
///
/// Neighbor lists are kept sorted, and edges are deduplicated and
/// validated at construction, so downstream code can rely on canonical
/// iteration order — essential for deterministic simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictGraph {
    n: usize,
    adjacency: Vec<Vec<ProcessId>>,
    edges: Vec<Edge>,
}

impl ConflictGraph {
    /// Builds a conflict graph over `n` vertices from an edge list.
    ///
    /// Edges may be given in either orientation; they are canonicalized.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an edge is out of range, a self-loop, or
    /// a duplicate.
    pub fn new(
        n: usize,
        edge_list: impl IntoIterator<Item = (ProcessId, ProcessId)>,
    ) -> Result<Self, GraphError> {
        let mut edges = Vec::new();
        for (a, b) in edge_list {
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            for v in [a, b] {
                if v.index() >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v, n });
                }
            }
            edges.push(Edge::new(a, b));
        }
        edges.sort_unstable();
        if let Some(w) = edges.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateEdge(w[0]));
        }
        let mut adjacency = vec![Vec::new(); n];
        for e in &edges {
            adjacency[e.lo.index()].push(e.hi);
            adjacency[e.hi.index()].push(e.lo);
        }
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }
        Ok(ConflictGraph {
            n,
            adjacency,
            edges,
        })
    }

    /// Builds a graph from `usize` pairs; convenience for literals.
    ///
    /// # Panics
    ///
    /// Panics on invalid edges; use [`ConflictGraph::new`] for fallible
    /// construction.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        Self::new(
            n,
            pairs
                .iter()
                .map(|&(a, b)| (ProcessId::from(a), ProcessId::from(b))),
        )
        .expect("invalid edge list")
    }

    /// Number of vertices (processes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All canonical edges in sorted order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sorted neighbor list of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn neighbors(&self, p: ProcessId) -> &[ProcessId] {
        &self.adjacency[p.index()]
    }

    /// Degree of `p`.
    pub fn degree(&self, p: ProcessId) -> usize {
        self.adjacency[p.index()].len()
    }

    /// Maximum degree `δ` of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `a` and `b` are neighbors.
    pub fn are_neighbors(&self, a: ProcessId, b: ProcessId) -> bool {
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// Iterator over all process ids `0..n`.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.n).map(ProcessId::from)
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![ProcessId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(p) = stack.pop() {
            for &q in self.neighbors(p) {
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    count += 1;
                    stack.push(q);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn edge_canonicalizes_orientation() {
        assert_eq!(Edge::new(p(3), p(1)), Edge::new(p(1), p(3)));
        let e = Edge::new(p(2), p(5));
        assert_eq!(e.lo, p(2));
        assert_eq!(e.hi, p(5));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(p(1), p(4));
        assert_eq!(e.other(p(1)), Some(p(4)));
        assert_eq!(e.other(p(4)), Some(p(1)));
        assert_eq!(e.other(p(2)), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(p(2), p(2));
    }

    #[test]
    fn graph_construction_and_queries() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(p(1)), &[p(0), p(2)]);
        assert_eq!(g.degree(p(0)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.are_neighbors(p(0), p(3)));
        assert!(!g.are_neighbors(p(0), p(2)));
        assert!(g.is_connected());
    }

    #[test]
    fn graph_rejects_out_of_range() {
        let err = ConflictGraph::new(2, vec![(p(0), p(2))]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: p(2), n: 2 });
    }

    #[test]
    fn graph_rejects_self_loop() {
        let err = ConflictGraph::new(3, vec![(p(1), p(1))]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(p(1)));
    }

    #[test]
    fn graph_rejects_duplicate_even_reversed() {
        let err = ConflictGraph::new(3, vec![(p(0), p(1)), (p(1), p(0))]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge(Edge::new(p(0), p(1))));
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g0 = ConflictGraph::from_pairs(0, &[]);
        assert!(g0.is_empty());
        assert!(g0.is_connected());
        let g1 = ConflictGraph::from_pairs(1, &[]);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1.max_degree(), 0);
        assert!(g1.is_connected());
    }

    #[test]
    fn edges_sorted_canonically() {
        let g = ConflictGraph::from_pairs(4, &[(3, 2), (1, 0), (2, 0)]);
        assert_eq!(
            g.edges(),
            &[
                Edge::new(p(0), p(1)),
                Edge::new(p(0), p(2)),
                Edge::new(p(2), p(3)),
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", p(7)), "p7");
        assert_eq!(format!("{:?}", p(7)), "p7");
        let err = GraphError::SelfLoop(p(1));
        assert!(err.to_string().contains("self-loop"));
    }
}
