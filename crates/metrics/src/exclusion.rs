use crate::{intervals_of, SchedEvent};
use ekbd_dining::DiningObs;
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_sim::Time;

/// One scheduling mistake: two live neighbors eating simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mistake {
    /// One of the overlapping eaters.
    pub a: ProcessId,
    /// The other.
    pub b: ProcessId,
    /// Start of the overlap.
    pub from: Time,
    /// End of the overlap (exclusive).
    pub until: Time,
}

/// Theorem 1 (◇WX): for every run there is a time after which no two live
/// neighbors eat simultaneously — equivalently, only finitely many
/// scheduling mistakes, all before some bound.
///
/// The checker intersects the eating intervals of every neighbor pair.
/// Intervals are trimmed at crash times: the paper's exclusion clause only
/// covers *live* processes, so an eater that crashed mid-bite stops counting
/// at its crash.
#[derive(Clone, Debug, Default)]
pub struct ExclusionReport {
    /// Every overlap found, in no particular order.
    pub mistakes: Vec<Mistake>,
}

impl ExclusionReport {
    /// Builds the report for a run over `graph` with the given events,
    /// crash schedule, and horizon.
    pub fn analyze(
        graph: &ConflictGraph,
        events: &[SchedEvent],
        crash_time: &dyn Fn(ProcessId) -> Option<Time>,
        horizon: Time,
    ) -> Self {
        let eats = intervals_of(
            events,
            graph.len(),
            DiningObs::StartedEating,
            DiningObs::StoppedEating,
            crash_time,
            horizon,
        );
        let mut mistakes = Vec::new();
        for e in graph.edges() {
            for ia in &eats[e.lo.index()] {
                for ib in &eats[e.hi.index()] {
                    if ia.overlaps(ib) {
                        mistakes.push(Mistake {
                            a: e.lo,
                            b: e.hi,
                            from: ia.start.max(ib.start),
                            until: ia.end.min(ib.end),
                        });
                    }
                }
            }
        }
        ExclusionReport { mistakes }
    }

    /// Total number of scheduling mistakes in the run.
    pub fn total(&self) -> usize {
        self.mistakes.len()
    }

    /// Number of mistakes whose overlap begins at or after `cutoff` —
    /// Theorem 1 demands this be zero once the detector has converged.
    pub fn after(&self, cutoff: Time) -> usize {
        self.mistakes.iter().filter(|m| m.from >= cutoff).count()
    }

    /// The instant the last mistake ended, if any — a witness for the
    /// "there exists a time after which…" quantifier.
    pub fn last_mistake_end(&self) -> Option<Time> {
        self.mistakes.iter().map(|m| m.until).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedEvent;
    use ekbd_graph::topology;

    fn ev(t: u64, p: usize, o: DiningObs) -> SchedEvent {
        SchedEvent::new(Time(t), ProcessId::from(p), o)
    }

    #[test]
    fn detects_neighbor_overlap() {
        let g = topology::path(3);
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(5, 1, DiningObs::StartedEating),
            ev(8, 0, DiningObs::StoppedEating),
            ev(9, 1, DiningObs::StoppedEating),
        ];
        let r = ExclusionReport::analyze(&g, &events, &|_| None, Time(100));
        assert_eq!(r.total(), 1);
        let m = r.mistakes[0];
        assert_eq!((m.from, m.until), (Time(5), Time(8)));
        assert_eq!(r.after(Time(5)), 1);
        assert_eq!(r.after(Time(6)), 0);
        assert_eq!(r.last_mistake_end(), Some(Time(8)));
    }

    #[test]
    fn non_neighbors_may_eat_together() {
        let g = topology::path(3); // 0-1-2: 0 and 2 are independent
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(0, 2, DiningObs::StartedEating),
            ev(10, 0, DiningObs::StoppedEating),
            ev(10, 2, DiningObs::StoppedEating),
        ];
        let r = ExclusionReport::analyze(&g, &events, &|_| None, Time(100));
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn crash_trims_the_eating_interval() {
        let g = topology::path(2);
        // p0 starts eating at 0 and crashes at 4 (never stops); p1 eats 5..9.
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(5, 1, DiningObs::StartedEating),
            ev(9, 1, DiningObs::StoppedEating),
        ];
        let crashed = |p: ProcessId| (p == ProcessId(0)).then_some(Time(4));
        let r = ExclusionReport::analyze(&g, &events, &crashed, Time(100));
        assert_eq!(r.total(), 0, "a dead holder is not a live eater");
    }

    #[test]
    fn sequential_eating_is_clean() {
        let g = topology::ring(3);
        let mut events = Vec::new();
        for round in 0..5u64 {
            for p in 0..3usize {
                let t = round * 30 + p as u64 * 10;
                events.push(ev(t, p, DiningObs::StartedEating));
                events.push(ev(t + 9, p, DiningObs::StoppedEating));
            }
        }
        let r = ExclusionReport::analyze(&g, &events, &|_| None, Time(1_000));
        assert_eq!(r.total(), 0);
    }
}
