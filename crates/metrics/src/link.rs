//! Aggregated link-layer health of one run.

/// System-wide totals of the `ekbd-link` recovery layer's counters — what
/// the fault-injection experiments (e14) report alongside the paper's
/// theorem checks. Counter fields sum over all processes; `max_unacked`
/// takes the maximum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkSummary {
    /// Logical payloads handed to the link layer by the application.
    pub payloads_sent: u64,
    /// First transmissions of data frames.
    pub data_sent: u64,
    /// Frames sent again by retransmission timers or post-suspicion
    /// recovery.
    pub retransmissions: u64,
    /// Ack frames sent.
    pub acks_sent: u64,
    /// Received frames discarded as already-delivered duplicates.
    pub duplicates_suppressed: u64,
    /// Received frames parked out of order awaiting a gap fill.
    pub out_of_order_buffered: u64,
    /// Payloads released to the application (exactly once each).
    pub delivered: u64,
    /// Pause-then-resume cycles triggered by retracted suspicions.
    pub recoveries: u64,
    /// High-water mark of distinct unacked payloads from any process to any
    /// single peer — the per-edge channel-occupancy bound of §7 restated
    /// for lossy channels (in *distinct payloads* rather than in-flight
    /// copies).
    pub max_unacked: usize,
}

impl LinkSummary {
    /// Folds one process's counters into the system-wide summary.
    #[allow(clippy::too_many_arguments)]
    pub fn absorb(
        &mut self,
        payloads_sent: u64,
        data_sent: u64,
        retransmissions: u64,
        acks_sent: u64,
        duplicates_suppressed: u64,
        out_of_order_buffered: u64,
        delivered: u64,
        recoveries: u64,
        max_unacked: usize,
    ) {
        self.payloads_sent += payloads_sent;
        self.data_sent += data_sent;
        self.retransmissions += retransmissions;
        self.acks_sent += acks_sent;
        self.duplicates_suppressed += duplicates_suppressed;
        self.out_of_order_buffered += out_of_order_buffered;
        self.delivered += delivered;
        self.recoveries += recoveries;
        self.max_unacked = self.max_unacked.max(max_unacked);
    }

    /// Retransmissions per first transmission — the channel's effective
    /// redundancy overhead (0 on a clean channel).
    pub fn retransmit_ratio(&self) -> f64 {
        if self.data_sent == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.data_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_maxes_the_high_water() {
        let mut s = LinkSummary::default();
        s.absorb(10, 10, 2, 8, 1, 3, 8, 1, 2);
        s.absorb(5, 5, 0, 5, 0, 0, 5, 0, 4);
        assert_eq!(s.payloads_sent, 15);
        assert_eq!(s.data_sent, 15);
        assert_eq!(s.retransmissions, 2);
        assert_eq!(s.acks_sent, 13);
        assert_eq!(s.duplicates_suppressed, 1);
        assert_eq!(s.out_of_order_buffered, 3);
        assert_eq!(s.delivered, 13);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.max_unacked, 4, "high-water takes the max, not the sum");
    }

    #[test]
    fn retransmit_ratio_handles_zero() {
        let mut s = LinkSummary::default();
        assert_eq!(s.retransmit_ratio(), 0.0);
        s.absorb(10, 10, 5, 0, 0, 0, 0, 0, 0);
        assert!((s.retransmit_ratio() - 0.5).abs() < 1e-12);
    }
}
