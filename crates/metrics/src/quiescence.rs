use ekbd_graph::ProcessId;
use ekbd_sim::Time;

/// §7, quiescence: "processes eventually stop communicating with crashed
/// processes". The checker consumes the simulator's record of messages sent
/// to already-crashed destinations and, per crashed process, reports the
/// count and the last such send — which must exist finitely (the count is
/// bounded) and stop growing.
#[derive(Clone, Debug, Default)]
pub struct QuiescenceReport {
    /// Per crashed process: `(crashed, messages sent to it after its crash,
    /// time of the last such send)`.
    pub per_crashed: Vec<(ProcessId, u64, Option<Time>)>,
}

impl QuiescenceReport {
    /// Builds the report from the simulator's `sends_to_crashed` record and
    /// the crash schedule.
    pub fn analyze(
        sends_to_crashed: &[(Time, ProcessId, ProcessId)],
        crashes: &[(ProcessId, Time)],
    ) -> Self {
        let per_crashed = crashes
            .iter()
            .map(|&(p, _)| {
                let mut count = 0;
                let mut last = None;
                for &(t, _, to) in sends_to_crashed {
                    if to == p {
                        count += 1;
                        last = Some(last.map_or(t, |l: Time| l.max(t)));
                    }
                }
                (p, count, last)
            })
            .collect();
        QuiescenceReport { per_crashed }
    }

    /// Total number of messages sent to crashed destinations.
    pub fn total(&self) -> u64 {
        self.per_crashed.iter().map(|&(_, c, _)| c).sum()
    }

    /// The last time any live process sent anything to any crashed one.
    pub fn last_send(&self) -> Option<Time> {
        self.per_crashed.iter().filter_map(|&(_, _, t)| t).max()
    }

    /// Whether communication with the crashed had ceased by `cutoff` —
    /// i.e. no send to a crashed destination at or after it.
    pub fn quiescent_by(&self, cutoff: Time) -> bool {
        self.last_send().is_none_or(|t| t < cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn counts_and_last_send_per_crashed() {
        let sends = vec![
            (Time(10), p(0), p(2)),
            (Time(12), p(1), p(2)),
            (Time(30), p(0), p(3)),
        ];
        let crashes = vec![(p(2), Time(5)), (p(3), Time(20))];
        let r = QuiescenceReport::analyze(&sends, &crashes);
        assert_eq!(r.total(), 3);
        assert_eq!(r.per_crashed[0], (p(2), 2, Some(Time(12))));
        assert_eq!(r.per_crashed[1], (p(3), 1, Some(Time(30))));
        assert_eq!(r.last_send(), Some(Time(30)));
        assert!(r.quiescent_by(Time(31)));
        assert!(!r.quiescent_by(Time(30)));
    }

    #[test]
    fn no_crashes_is_trivially_quiescent() {
        let r = QuiescenceReport::analyze(&[], &[]);
        assert_eq!(r.total(), 0);
        assert!(r.quiescent_by(Time(0)));
    }
}
