use crate::{intervals_of, ExclusionReport, SchedEvent};
use ekbd_dining::DiningObs;
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_sim::Time;

/// Renders an ASCII Gantt chart of eating intervals — the visual form of
/// eventual weak exclusion: overlapping `#` runs in neighbor lanes before
/// convergence, a clean schedule after.
///
/// Legend: `#` eating, `!` an exclusion mistake begins at this column,
/// `×` the process crashes here, `.` idle.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Render window `[from, until)`.
    pub from: Time,
    /// End of the window (exclusive).
    pub until: Time,
    /// Characters per lane.
    pub width: usize,
    /// Optional marker column (e.g. detector convergence).
    pub marker: Option<Time>,
}

impl Timeline {
    /// A timeline over `[0, until)` with the default width of 96 columns.
    pub fn until(until: Time) -> Self {
        Timeline {
            from: Time::ZERO,
            until,
            width: 96,
            marker: None,
        }
    }

    /// Sets the render window start.
    pub fn from(mut self, t: Time) -> Self {
        self.from = t;
        self
    }

    /// Sets the lane width in characters.
    pub fn width(mut self, w: usize) -> Self {
        self.width = w.max(8);
        self
    }

    /// Adds a vertical marker (rendered as `v` on the ruler line).
    pub fn marker(mut self, t: Time) -> Self {
        self.marker = Some(t);
        self
    }

    fn col(&self, t: Time) -> Option<usize> {
        if t < self.from || t >= self.until {
            return None;
        }
        let span = self.until.since(self.from).max(1);
        Some(((t.since(self.from)) * self.width as u64 / span) as usize)
    }

    /// Renders the timeline for a run over `graph`.
    pub fn render(
        &self,
        graph: &ConflictGraph,
        events: &[SchedEvent],
        crash_time: &dyn Fn(ProcessId) -> Option<Time>,
        horizon: Time,
    ) -> String {
        let n = graph.len();
        let eats = intervals_of(
            events,
            n,
            DiningObs::StartedEating,
            DiningObs::StoppedEating,
            crash_time,
            horizon,
        );
        let mut lanes = vec![vec![b'.'; self.width]; n];
        for (i, lane_intervals) in eats.iter().enumerate() {
            for iv in lane_intervals {
                if iv.end <= self.from || iv.start >= self.until {
                    continue; // entirely outside the window
                }
                let a = self.col(iv.start.max(self.from)).unwrap_or(0);
                let b = if iv.end >= self.until {
                    self.width
                } else {
                    self.col(iv.end).unwrap_or(self.width)
                };
                let end = b.max(a + 1).min(self.width);
                for cell in &mut lanes[i][a..end] {
                    *cell = b'#';
                }
            }
        }
        let mistakes = ExclusionReport::analyze(graph, events, crash_time, horizon);
        for m in &mistakes.mistakes {
            if let Some(c) = self.col(m.from) {
                lanes[m.a.index()][c] = b'!';
                lanes[m.b.index()][c] = b'!';
            }
        }
        for (i, lane) in lanes.iter_mut().enumerate() {
            if let Some(ct) = crash_time(ProcessId::from(i)) {
                if let Some(c) = self.col(ct) {
                    lane[c] = b'\xc3'; // placeholder, replaced below
                }
            }
        }
        let mut out = String::new();
        if let Some(mt) = self.marker {
            let mut ruler = vec![b' '; self.width];
            if let Some(c) = self.col(mt) {
                ruler[c] = b'v';
            }
            out.push_str("      ");
            out.push_str(&String::from_utf8_lossy(&ruler));
            out.push('\n');
        }
        for (i, lane) in lanes.iter().enumerate() {
            out.push_str(&format!("  p{i:<3} "));
            for &b in lane {
                out.push(if b == b'\xc3' { '×' } else { b as char });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;

    fn ev(t: u64, p: usize, o: DiningObs) -> SchedEvent {
        SchedEvent::new(Time(t), ProcessId::from(p), o)
    }

    #[test]
    fn renders_eating_runs_and_mistakes() {
        let g = topology::path(2);
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(40, 0, DiningObs::StoppedEating),
            ev(20, 1, DiningObs::StartedEating), // overlaps p0: mistake
            ev(60, 1, DiningObs::StoppedEating),
        ];
        let tl = Timeline::until(Time(100)).width(10).marker(Time(50));
        let s = tl.render(&g, &events, &|_| None, Time(100));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "ruler + two lanes");
        assert!(lines[0].contains('v'));
        assert!(lines[1].contains('#'));
        assert!(lines[1].contains('!'), "mistake marked: {s}");
        assert!(lines[2].contains('!'));
    }

    #[test]
    fn renders_crash_marker() {
        let g = topology::path(2);
        let events = vec![ev(0, 0, DiningObs::StartedEating)];
        let tl = Timeline::until(Time(100)).width(10);
        let s = tl.render(
            &g,
            &events,
            &|p| (p == ProcessId(1)).then_some(Time(50)),
            Time(100),
        );
        assert!(s.contains('×'), "{s}");
    }

    #[test]
    fn window_clips_out_of_range_events() {
        let g = topology::path(2);
        let events = vec![
            ev(500, 0, DiningObs::StartedEating),
            ev(600, 0, DiningObs::StoppedEating),
        ];
        let tl = Timeline::until(Time(100)).width(10);
        let s = tl.render(&g, &events, &|_| None, Time(1_000));
        assert!(!s.contains('#'), "out-of-window eating not drawn: {s}");
    }
}
