use crate::{intervals_of, SchedEvent};
use ekbd_dining::DiningObs;
use ekbd_graph::ProcessId;
use ekbd_sim::Time;

/// How much parallelism the daemon actually extracted.
///
/// A daemon should schedule *non-conflicting* processes concurrently; the
/// paper's scheduler is judged not only by safety/liveness but by how
/// much simultaneous eating it allows. This report integrates the number
/// of concurrent eaters over time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConcurrencyReport {
    /// ∫ (number of simultaneous eaters) dt, in eater-ticks.
    pub eater_ticks: u64,
    /// Ticks during which at least one process was eating.
    pub busy_ticks: u64,
    /// Maximum simultaneous eaters observed.
    pub max_simultaneous: usize,
}

impl ConcurrencyReport {
    /// Builds the report from a run's event stream.
    pub fn analyze(
        n: usize,
        events: &[SchedEvent],
        crash_time: &dyn Fn(ProcessId) -> Option<Time>,
        horizon: Time,
    ) -> Self {
        let eats = intervals_of(
            events,
            n,
            DiningObs::StartedEating,
            DiningObs::StoppedEating,
            crash_time,
            horizon,
        );
        // Sweep line over interval endpoints.
        let mut points: Vec<(Time, i64)> = Vec::new();
        for ivs in &eats {
            for iv in ivs {
                points.push((iv.start, 1));
                points.push((iv.end, -1));
            }
        }
        // Ends sort before starts at the same instant: the intervals are
        // half-open, so back-to-back sessions never overlap.
        points.sort_by_key(|&(t, delta)| (t, delta));
        let mut level: i64 = 0;
        let mut last = Time::ZERO;
        let mut eater_ticks = 0u64;
        let mut busy_ticks = 0u64;
        let mut max_simultaneous = 0usize;
        for (t, delta) in points {
            let dt = t.since(last);
            eater_ticks += level.max(0) as u64 * dt;
            if level > 0 {
                busy_ticks += dt;
            }
            level += delta;
            max_simultaneous = max_simultaneous.max(level.max(0) as usize);
            last = t;
        }
        ConcurrencyReport {
            eater_ticks,
            busy_ticks,
            max_simultaneous,
        }
    }

    /// Average eaters while anyone was eating (≥ 1.0 when busy_ticks > 0).
    pub fn avg_concurrency_while_busy(&self) -> f64 {
        if self.busy_ticks == 0 {
            0.0
        } else {
            self.eater_ticks as f64 / self.busy_ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, p: usize, o: DiningObs) -> SchedEvent {
        SchedEvent::new(Time(t), ProcessId::from(p), o)
    }

    #[test]
    fn counts_parallel_eaters() {
        // p0 eats 0..10; p1 eats 5..15: levels 1,2,1 over 5-tick spans.
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(5, 1, DiningObs::StartedEating),
            ev(10, 0, DiningObs::StoppedEating),
            ev(15, 1, DiningObs::StoppedEating),
        ];
        let r = ConcurrencyReport::analyze(2, &events, &|_| None, Time(100));
        assert_eq!(r.eater_ticks, 5 + 10 + 5);
        assert_eq!(r.busy_ticks, 15);
        assert_eq!(r.max_simultaneous, 2);
        assert!((r.avg_concurrency_while_busy() - 20.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_eating_has_concurrency_one() {
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(10, 0, DiningObs::StoppedEating),
            ev(10, 1, DiningObs::StartedEating),
            ev(20, 1, DiningObs::StoppedEating),
        ];
        let r = ConcurrencyReport::analyze(2, &events, &|_| None, Time(100));
        assert_eq!(r.max_simultaneous, 1);
        assert_eq!(r.busy_ticks, 20);
        assert_eq!(r.avg_concurrency_while_busy(), 1.0);
    }

    #[test]
    fn empty_run_is_zero() {
        let r = ConcurrencyReport::analyze(3, &[], &|_| None, Time(100));
        assert_eq!(r, ConcurrencyReport::default());
        assert_eq!(r.avg_concurrency_while_busy(), 0.0);
    }
}
