//! Property checkers for dining-based distributed daemons.
//!
//! Every theorem and quantitative claim of Song & Pike (DSN 2007) is checked
//! here against the observation stream of an actual run:
//!
//! * [`ExclusionReport`] — Theorem 1 (◇WX safety): counts *scheduling
//!   mistakes* (pairs of live neighbors eating simultaneously) and locates
//!   the last one; after detector convergence there must be none.
//! * [`FairnessReport`] — Theorem 3 (◇2-BW): the maximum number of times a
//!   neighbor starts eating within one continuous hungry session; in the
//!   convergence suffix this may not exceed 2.
//! * [`ProgressReport`] — Theorem 2 (wait-freedom): every correct hungry
//!   process eats; also hungry-session latency statistics.
//! * [`QuiescenceReport`] — §7: correct processes eventually stop sending
//!   to crashed neighbors.
//!
//! The input is the stream of [`SchedEvent`]s a harness host emits by
//! diffing its algorithm's externally visible state, so the checkers apply
//! uniformly to Algorithm 1 and to every baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concurrency;
mod detector_quality;
mod exclusion;
mod fairness;
mod link;
mod progress;
mod quiescence;
mod readmission;
mod stats;
mod timeline;

pub use concurrency::ConcurrencyReport;
pub use detector_quality::DetectorQualityReport;
pub use exclusion::{ExclusionReport, Mistake};
pub use fairness::{FairnessReport, Overtake};
pub use link::LinkSummary;
pub use progress::{ProgressReport, SessionStats};
pub use quiescence::QuiescenceReport;
pub use readmission::ReadmissionBreakdown;
pub use stats::Summary;
pub use timeline::Timeline;

use ekbd_dining::DiningObs;
use ekbd_graph::ProcessId;
use ekbd_sim::Time;

/// One scheduling-relevant event of a run: at `time`, `process` underwent
/// `obs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedEvent {
    /// When it happened.
    pub time: Time,
    /// Which process.
    pub process: ProcessId,
    /// What happened.
    pub obs: DiningObs,
}

impl SchedEvent {
    /// Convenience constructor.
    pub fn new(time: Time, process: ProcessId, obs: DiningObs) -> Self {
        SchedEvent { time, process, obs }
    }
}

/// A half-open interval `[start, end)` in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive start.
    pub start: Time,
    /// Exclusive end.
    pub end: Time,
}

impl Interval {
    /// Whether two half-open intervals overlap in at least one instant.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Extracts per-process half-open intervals `[when obs_open, when obs_close)`
/// from an event stream. Intervals still open at `horizon` (or cut short by
/// a crash) are closed at `min(horizon, crash_time)`.
pub(crate) fn intervals_of(
    events: &[SchedEvent],
    n: usize,
    open: DiningObs,
    close: DiningObs,
    crash_time: &dyn Fn(ProcessId) -> Option<Time>,
    horizon: Time,
) -> Vec<Vec<Interval>> {
    let mut result = vec![Vec::new(); n];
    let mut open_at: Vec<Option<Time>> = vec![None; n];
    for e in events {
        let i = e.process.index();
        if e.obs == open {
            debug_assert!(open_at[i].is_none(), "nested {open:?} for {}", e.process);
            open_at[i] = Some(e.time);
        } else if e.obs == close {
            if let Some(start) = open_at[i].take() {
                result[i].push(Interval { start, end: e.time });
            }
        }
    }
    for i in 0..n {
        if let Some(start) = open_at[i].take() {
            let end = crash_time(ProcessId::from(i))
                .unwrap_or(horizon)
                .min(horizon);
            if end > start {
                result[i].push(Interval { start, end });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_overlap_semantics() {
        let a = Interval {
            start: Time(0),
            end: Time(10),
        };
        let b = Interval {
            start: Time(10),
            end: Time(20),
        };
        assert!(!a.overlaps(&b), "touching endpoints do not overlap");
        let c = Interval {
            start: Time(9),
            end: Time(11),
        };
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }

    #[test]
    fn intervals_close_at_crash_or_horizon() {
        let events = vec![
            SchedEvent::new(Time(5), ProcessId(0), DiningObs::StartedEating),
            SchedEvent::new(Time(7), ProcessId(1), DiningObs::StartedEating),
        ];
        let iv = intervals_of(
            &events,
            2,
            DiningObs::StartedEating,
            DiningObs::StoppedEating,
            &|p| (p == ProcessId(0)).then_some(Time(8)),
            Time(100),
        );
        assert_eq!(
            iv[0],
            vec![Interval {
                start: Time(5),
                end: Time(8)
            }]
        );
        assert_eq!(
            iv[1],
            vec![Interval {
                start: Time(7),
                end: Time(100)
            }]
        );
    }
}
