use crate::{intervals_of, SchedEvent};
use ekbd_dining::DiningObs;
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_sim::Time;

/// A record of a hungry session being overtaken by a neighbor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overtake {
    /// The continuously hungry process.
    pub hungry: ProcessId,
    /// The neighbor that kept eating.
    pub eater: ProcessId,
    /// Start of the hungry session.
    pub session_start: Time,
    /// How many times `eater` started eating during the session.
    pub count: usize,
}

/// Theorem 3 (◇2-BW): for each execution there is a time after which no
/// live process goes to eat more than twice while any live neighbor is
/// hungry.
///
/// For every *hungry session* of every process `j` (from `BecameHungry` to
/// the matching `StartedEating`), the checker counts how many times each
/// neighbor `i` started eating inside that window. The paper's bound: in
/// the convergence suffix, that count never exceeds 2.
#[derive(Clone, Debug, Default)]
pub struct FairnessReport {
    /// One record per (session, neighbor) pair with `count > 0`.
    pub overtakes: Vec<Overtake>,
}

impl FairnessReport {
    /// Builds the report. `crash_time` trims sessions and discounts eaters
    /// that crashed (the bound concerns live processes).
    pub fn analyze(
        graph: &ConflictGraph,
        events: &[SchedEvent],
        crash_time: &dyn Fn(ProcessId) -> Option<Time>,
        horizon: Time,
    ) -> Self {
        let n = graph.len();
        // Hungry sessions: BecameHungry .. StartedEating (or crash/horizon).
        let sessions = intervals_of(
            events,
            n,
            DiningObs::BecameHungry,
            DiningObs::StartedEating,
            crash_time,
            horizon,
        );
        // Eating start times per process.
        let mut eat_starts = vec![Vec::new(); n];
        for e in events {
            if e.obs == DiningObs::StartedEating {
                eat_starts[e.process.index()].push(e.time);
            }
        }
        let mut overtakes = Vec::new();
        for (j, proc_sessions) in sessions.iter().enumerate() {
            let pj = ProcessId::from(j);
            for s in proc_sessions {
                for &pi in graph.neighbors(pj) {
                    let count = eat_starts[pi.index()]
                        .iter()
                        .filter(|&&t| {
                            // An eat-start counts only while both are live.
                            s.start <= t && t < s.end && crash_time(pi).is_none_or(|c| t < c)
                        })
                        .count();
                    if count > 0 {
                        overtakes.push(Overtake {
                            hungry: pj,
                            eater: pi,
                            session_start: s.start,
                            count,
                        });
                    }
                }
            }
        }
        FairnessReport { overtakes }
    }

    /// The worst overtaking count across the whole run.
    pub fn max_overtakes(&self) -> usize {
        self.overtakes.iter().map(|o| o.count).max().unwrap_or(0)
    }

    /// The worst overtaking count among sessions starting at or after
    /// `cutoff` — Theorem 3 demands ≤ 2 for k = 2 once the suffix begins.
    pub fn max_overtakes_after(&self, cutoff: Time) -> usize {
        self.overtakes
            .iter()
            .filter(|o| o.session_start >= cutoff)
            .map(|o| o.count)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;

    fn ev(t: u64, p: usize, o: DiningObs) -> SchedEvent {
        SchedEvent::new(Time(t), ProcessId::from(p), o)
    }

    #[test]
    fn counts_eats_within_hungry_session() {
        let g = topology::path(2);
        let mut events = vec![ev(0, 1, DiningObs::BecameHungry)];
        // p0 eats three times while p1 is continuously hungry.
        for k in 0..3u64 {
            events.push(ev(1 + 10 * k, 0, DiningObs::StartedEating));
            events.push(ev(9 + 10 * k, 0, DiningObs::StoppedEating));
        }
        events.push(ev(40, 1, DiningObs::StartedEating));
        let r = FairnessReport::analyze(&g, &events, &|_| None, Time(100));
        assert_eq!(r.max_overtakes(), 3);
        assert_eq!(r.max_overtakes_after(Time(50)), 0);
        assert_eq!(
            r.overtakes,
            vec![Overtake {
                hungry: ProcessId(1),
                eater: ProcessId(0),
                session_start: Time(0),
                count: 3
            }]
        );
    }

    #[test]
    fn eats_outside_session_do_not_count() {
        let g = topology::path(2);
        let events = vec![
            ev(0, 0, DiningObs::StartedEating),
            ev(5, 0, DiningObs::StoppedEating),
            ev(10, 1, DiningObs::BecameHungry),
            ev(20, 1, DiningObs::StartedEating),
            ev(30, 0, DiningObs::StartedEating),
        ];
        let r = FairnessReport::analyze(&g, &events, &|_| None, Time(100));
        assert_eq!(r.max_overtakes(), 0);
    }

    #[test]
    fn crashed_eater_does_not_count_after_crash() {
        let g = topology::path(2);
        let events = vec![
            ev(0, 1, DiningObs::BecameHungry),
            ev(5, 0, DiningObs::StartedEating),
            ev(8, 0, DiningObs::StoppedEating),
            ev(20, 0, DiningObs::StartedEating), // after p0's crash: impossible in a real run, defensive here
        ];
        let crashed = |p: ProcessId| (p == ProcessId(0)).then_some(Time(15));
        let r = FairnessReport::analyze(&g, &events, &crashed, Time(100));
        assert_eq!(r.max_overtakes(), 1);
    }

    #[test]
    fn starving_session_truncates_at_horizon() {
        let g = topology::path(2);
        let events = vec![
            ev(0, 1, DiningObs::BecameHungry),
            ev(10, 0, DiningObs::StartedEating),
            ev(12, 0, DiningObs::StoppedEating),
            ev(20, 0, DiningObs::StartedEating),
            ev(22, 0, DiningObs::StoppedEating),
        ];
        // p1 never eats: its session runs to the horizon and records both
        // overtakes — how starvation shows up in this metric.
        let r = FairnessReport::analyze(&g, &events, &|_| None, Time(100));
        assert_eq!(r.max_overtakes(), 2);
    }
}
