use crate::stats::Summary;

/// Time-to-readmission statistics split by restart path (experiment E16).
///
/// Pairs each recovery with the path its restart took — `true` for a
/// journal replay that fast-resumed at least part of its edge set, `false`
/// for a blank reboot that ran the full rejoin handshake — and summarizes
/// the two populations separately so their medians can be compared.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReadmissionBreakdown {
    /// Readmission times of journal-replay restarts.
    pub journal: Summary,
    /// Readmission times of blank (full-rejoin) restarts.
    pub blank: Summary,
    /// Recoveries that never ate again before the horizon (excluded from
    /// both summaries).
    pub unreadmitted: usize,
}

impl ReadmissionBreakdown {
    /// Builds a breakdown from `(journaled, time_to_readmission)` samples;
    /// a `None` time counts toward [`unreadmitted`](Self::unreadmitted).
    pub fn of(samples: impl IntoIterator<Item = (bool, Option<u64>)>) -> Self {
        let mut journal = Vec::new();
        let mut blank = Vec::new();
        let mut unreadmitted = 0;
        for (journaled, ticks) in samples {
            match (journaled, ticks) {
                (true, Some(t)) => journal.push(t),
                (false, Some(t)) => blank.push(t),
                (_, None) => unreadmitted += 1,
            }
        }
        ReadmissionBreakdown {
            journal: Summary::of(journal),
            blank: Summary::of(blank),
            unreadmitted,
        }
    }

    /// Whether the journal population's median readmission is strictly
    /// faster than the blank population's — `None` when either population
    /// is empty and the comparison is meaningless.
    pub fn journal_faster(&self) -> Option<bool> {
        (self.journal.count > 0 && self.blank.count > 0)
            .then_some(self.journal.p50 < self.blank.p50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_populations_and_compares_medians() {
        let b = ReadmissionBreakdown::of([
            (true, Some(10)),
            (true, Some(20)),
            (false, Some(50)),
            (false, Some(70)),
            (true, None),
        ]);
        assert_eq!(b.journal.count, 2);
        assert_eq!(b.blank.count, 2);
        assert_eq!(b.unreadmitted, 1);
        assert_eq!(b.journal_faster(), Some(true));
    }

    #[test]
    fn empty_population_yields_no_verdict() {
        let b = ReadmissionBreakdown::of([(true, Some(10))]);
        assert_eq!(b.journal_faster(), None);
        assert_eq!(ReadmissionBreakdown::of([]).journal_faster(), None);
    }

    #[test]
    fn slower_journal_is_reported_honestly() {
        let b = ReadmissionBreakdown::of([(true, Some(90)), (false, Some(30))]);
        assert_eq!(b.journal_faster(), Some(false));
    }
}
