use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_sim::Time;

/// Quality metrics for a ◇P₁ history, computed from the suspicion event
/// stream `(when, observer, target, suspected)` of a run.
///
/// These quantify the two properties of the oracle class (§2): how often
/// eventual strong accuracy was violated before convergence (false
/// positives), and how quickly strong completeness kicked in after each
/// crash (detection latency).
#[derive(Clone, Debug, Default)]
pub struct DetectorQualityReport {
    /// Suspicions of a correct target raised by a correct observer.
    pub false_positives: u64,
    /// `(observer, crashed, latency)` — delay from the crash until the
    /// observer's suspicion became permanent. `None` latency means the
    /// crash was never permanently suspected within the horizon (a
    /// completeness violation if the run was long enough).
    pub detection: Vec<(ProcessId, ProcessId, Option<u64>)>,
}

impl DetectorQualityReport {
    /// Analyzes the suspicion history of a run.
    pub fn analyze(
        graph: &ConflictGraph,
        suspicions: &[(Time, ProcessId, ProcessId, bool)],
        crashes: &[(ProcessId, Time)],
        horizon: Time,
    ) -> Self {
        let crash_time = |p: ProcessId| {
            crashes
                .iter()
                .find(|&&(q, t)| q == p && t <= horizon)
                .map(|&(_, t)| t)
        };
        let correct = |p: ProcessId| crash_time(p).is_none();

        let false_positives = suspicions
            .iter()
            .filter(|&&(_, o, t, s)| s && correct(o) && correct(t))
            .count() as u64;

        let mut detection = Vec::new();
        for &(q, crashed_at) in crashes {
            if crashed_at > horizon {
                continue;
            }
            for &o in graph.neighbors(q) {
                if !correct(o) {
                    continue;
                }
                // The suspicion is permanent iff the LAST event for (o, q)
                // is a suspicion; its time is the detection instant.
                let last = suspicions
                    .iter()
                    .rfind(|&&(_, ob, tg, _)| ob == o && tg == q);
                let latency = match last {
                    Some(&(t, _, _, true)) => Some(t.since(crashed_at)),
                    _ => None,
                };
                detection.push((o, q, latency));
            }
        }
        DetectorQualityReport {
            false_positives,
            detection,
        }
    }

    /// Whether every crashed process was permanently suspected by every
    /// correct neighbor (strong completeness, as visible in this run).
    pub fn complete(&self) -> bool {
        self.detection.iter().all(|&(_, _, l)| l.is_some())
    }

    /// Worst-case detection latency, if completeness held.
    pub fn max_detection_latency(&self) -> Option<u64> {
        self.detection
            .iter()
            .map(|&(_, _, l)| l)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekbd_graph::topology;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn counts_false_positives_and_latency() {
        let g = topology::path(3);
        let crashes = vec![(p(2), Time(100))];
        let suspicions = vec![
            (Time(10), p(0), p(1), true),  // FP (both correct)
            (Time(20), p(0), p(1), false), // withdrawal
            (Time(50), p(1), p(2), true),  // premature, but target crashes later
            (Time(60), p(1), p(2), false),
            (Time(130), p(1), p(2), true), // permanent detection
        ];
        let r = DetectorQualityReport::analyze(&g, &suspicions, &crashes, Time(1_000));
        assert_eq!(r.false_positives, 1, "only the correct-correct suspicion");
        assert!(r.complete());
        assert_eq!(r.detection, vec![(p(1), p(2), Some(30))]);
        assert_eq!(r.max_detection_latency(), Some(30));
    }

    #[test]
    fn incomplete_detection_is_reported() {
        let g = topology::path(2);
        let crashes = vec![(p(1), Time(100))];
        let r = DetectorQualityReport::analyze(&g, &[], &crashes, Time(1_000));
        assert!(!r.complete());
        assert_eq!(r.max_detection_latency(), None);
        assert_eq!(r.detection, vec![(p(0), p(1), None)]);
    }

    #[test]
    fn withdrawn_suspicion_of_crashed_is_not_detection() {
        let g = topology::path(2);
        let crashes = vec![(p(1), Time(100))];
        let suspicions = vec![
            (Time(150), p(0), p(1), true),
            (Time(160), p(0), p(1), false), // withdrawn: not permanent
        ];
        let r = DetectorQualityReport::analyze(&g, &suspicions, &crashes, Time(1_000));
        assert!(!r.complete());
    }
}
