/// Summary statistics over a set of `u64` samples (latencies, counts).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Arithmetic mean (0.0 if empty).
    pub mean: f64,
    /// Median (0 if empty).
    pub p50: u64,
    /// 99th percentile, nearest-rank (0 if empty).
    pub p99: u64,
    /// 99.9th percentile, nearest-rank (0 if empty).
    pub p999: u64,
}

impl Summary {
    /// Computes a summary of `samples`.
    pub fn of(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut v: Vec<u64> = samples.into_iter().collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_unstable();
        let count = v.len();
        let sum: u128 = v.iter().map(|&x| x as u128).sum();
        let rank = |q: f64| -> u64 {
            let idx = ((q * count as f64).ceil() as usize).clamp(1, count) - 1;
            v[idx]
        };
        Summary {
            count,
            min: v[0],
            max: v[count - 1],
            mean: sum as f64 / count as f64,
            p50: rank(0.50),
            p99: rank(0.99),
            p999: rank(0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn basic_statistics() {
        let s = Summary::of([5, 1, 9, 3, 7]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.p50, 5);
        assert_eq!(s.p99, 9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::of(1..=100u64);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p99, 99);
        // With 100 samples the 99.9th nearest rank is the max.
        assert_eq!(s.p999, 100);
    }

    #[test]
    fn p999_separates_from_p99_at_scale() {
        // 1..=1000: rank(0.99) = sample 990, rank(0.999) = sample 999.
        let s = Summary::of(1..=1000u64);
        assert_eq!(s.p99, 990);
        assert_eq!(s.p999, 999);
        assert_eq!(s.max, 1000);
    }
}
