use crate::stats::Summary;
use crate::{intervals_of, SchedEvent};
use ekbd_dining::DiningObs;
use ekbd_graph::ProcessId;
use ekbd_sim::Time;

/// Per-process hungry-session statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Completed hungry sessions (ended in eating).
    pub completed: usize,
    /// A hungry session still open at the horizon (starvation witness if
    /// the process is correct and the run was long enough).
    pub starving_since: Option<Time>,
    /// Durations of the completed sessions.
    pub latencies: Vec<u64>,
}

/// Theorem 2 (wait-freedom): every correct hungry process eventually eats,
/// regardless of crashes.
///
/// In a finite run, "eventually" is witnessed by every hungry session of a
/// correct process completing before the horizon; a correct process still
/// hungry at the horizon of a generously long run is reported as starving
/// (which is how the crash-oblivious baseline fails).
#[derive(Clone, Debug, Default)]
pub struct ProgressReport {
    /// Indexed by process.
    pub per_process: Vec<SessionStats>,
}

impl ProgressReport {
    /// Builds the report for `n` processes.
    pub fn analyze(
        n: usize,
        events: &[SchedEvent],
        crash_time: &dyn Fn(ProcessId) -> Option<Time>,
        horizon: Time,
    ) -> Self {
        let sessions = intervals_of(
            events,
            n,
            DiningObs::BecameHungry,
            DiningObs::StartedEating,
            crash_time,
            horizon,
        );
        // Which sessions actually completed (ended in StartedEating, not
        // trimmed at crash/horizon): recompute open sessions.
        let mut open_at: Vec<Option<Time>> = vec![None; n];
        for e in events {
            match e.obs {
                DiningObs::BecameHungry => open_at[e.process.index()] = Some(e.time),
                DiningObs::StartedEating => open_at[e.process.index()] = None,
                _ => {}
            }
        }
        let per_process = (0..n)
            .map(|i| {
                let p = ProcessId::from(i);
                let all = &sessions[i];
                let open = open_at[i];
                let completed = all.len() - open.is_some() as usize;
                let latencies = all
                    .iter()
                    .take(completed)
                    .map(|iv| iv.end.since(iv.start))
                    .collect();
                // A crashed process cannot starve — it is not correct.
                let starving_since = match (open, crash_time(p)) {
                    (Some(t), None) => Some(t),
                    _ => None,
                };
                SessionStats {
                    completed,
                    starving_since,
                    latencies,
                }
            })
            .collect();
        ProgressReport { per_process }
    }

    /// Processes (correct ones only, by construction) with an unfinished
    /// hungry session at the horizon.
    pub fn starving(&self) -> Vec<ProcessId> {
        self.per_process
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.starving_since.map(|_| ProcessId::from(i)))
            .collect()
    }

    /// Whether every correct hungry process was scheduled in this run.
    pub fn wait_free(&self) -> bool {
        self.starving().is_empty()
    }

    /// Total completed eat-slots across all processes.
    pub fn total_sessions(&self) -> usize {
        self.per_process.iter().map(|s| s.completed).sum()
    }

    /// Summary of all hungry-session latencies.
    pub fn latency_summary(&self) -> Summary {
        Summary::of(
            self.per_process
                .iter()
                .flat_map(|s| s.latencies.iter().copied()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, p: usize, o: DiningObs) -> SchedEvent {
        SchedEvent::new(Time(t), ProcessId::from(p), o)
    }

    #[test]
    fn completed_sessions_and_latencies() {
        let events = vec![
            ev(0, 0, DiningObs::BecameHungry),
            ev(4, 0, DiningObs::StartedEating),
            ev(6, 0, DiningObs::StoppedEating),
            ev(10, 0, DiningObs::BecameHungry),
            ev(22, 0, DiningObs::StartedEating),
        ];
        let r = ProgressReport::analyze(1, &events, &|_| None, Time(100));
        assert_eq!(r.per_process[0].completed, 2);
        assert_eq!(r.per_process[0].latencies, vec![4, 12]);
        assert!(r.wait_free());
        assert_eq!(r.total_sessions(), 2);
        assert_eq!(r.latency_summary().max, 12);
    }

    #[test]
    fn starvation_is_reported_for_correct_processes() {
        let events = vec![ev(5, 0, DiningObs::BecameHungry)];
        let r = ProgressReport::analyze(1, &events, &|_| None, Time(1_000));
        assert_eq!(r.starving(), vec![ProcessId(0)]);
        assert!(!r.wait_free());
        assert_eq!(r.per_process[0].starving_since, Some(Time(5)));
    }

    #[test]
    fn crashed_processes_cannot_starve() {
        let events = vec![ev(5, 0, DiningObs::BecameHungry)];
        let crashed = |p: ProcessId| (p == ProcessId(0)).then_some(Time(50));
        let r = ProgressReport::analyze(1, &events, &crashed, Time(1_000));
        assert!(r.wait_free());
        assert_eq!(r.per_process[0].completed, 0);
    }
}
