use ekbd_cli::commands::{dispatch, USAGE};
use ekbd_cli::Parsed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "help" {
        print!("{USAGE}");
        return;
    }
    match Parsed::parse(args).and_then(|p| dispatch(&p)) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}
