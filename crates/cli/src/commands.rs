//! Subcommand implementations: build a scenario from parsed flags, run
//! it, and print a human-readable report.

use crate::args::{ArgError, Parsed};
use crate::spec::{
    parse_churn_plan, parse_corrupt_state, parse_crash, parse_link, parse_partition, parse_recover,
    parse_reorder, parse_storage_fault, AlgorithmSpec, OracleArg, ProtocolSpec, TopologySpec,
};
use ekbd_baselines::{ChoySinghProcess, NaivePriorityProcess};
use ekbd_dining::{BudgetedDiningProcess, DiningProcess, RestartPath};
use ekbd_graph::ProcessId;
use ekbd_harness::{Campaign, MembershipTag, RunReport, Scenario, Workload};
use ekbd_journal::StorageFaultPlan;
use ekbd_metrics::{DetectorQualityReport, Timeline};
use ekbd_sim::{EngineKind, Time};
use ekbd_stabilize::{
    ColoringProtocol, LeaderProtocol, MisProtocol, Protocol, ScheduledRun, SpanningTreeProtocol,
    StabilizationConfig, TokenRingProtocol,
};

/// Usage text printed on `--help`-ish failures.
pub const USAGE: &str = "\
ekbd — eventually k-bounded wait-free distributed daemons (Song & Pike, DSN 2007)

USAGE:
  ekbd run       --topology SPEC [--algorithm alg1|choy-singh|naive|budgeted:m]
                 [--oracle silent|perfect|adversarial:conv:burst|heartbeat:p:t:i]
                 [--seed N] [--sessions N] [--think lo:hi] [--eat lo:hi]
                 [--crash proc:time]... [--recover proc:time[:corrupt]]...
                 [--corrupt-state proc:time]... [--horizon N] [--timeline N]
                 [--loss P] [--dup P] [--reorder P:WINDOW]
                 [--partition procs:start-heal]... [--link on|base:cap]
                 [--journal on|off] [--storage-fault proc:torn|rot|stale|dropped]...
                 [--audit-period N] [--audit-strikes N]
                 [--churn-rate N] [--churn-plan EV[,EV...]]
                 [--engine indexed|legacy] [--dump-journal DIR]
                 [--obs dense|streaming] [--shards N]
                 (--obs streaming aggregates metrics online in O(n) memory;
                  --shards N runs the fault-free packed scale kernel over N
                  worker threads — built for 10⁵+-process graphs)
  ekbd stabilize --protocol coloring|coloring-adv|mis|token-ring:k|bfs-tree|leader
                 --topology SPEC [--algorithm ...] [--oracle ...] [--seed N]
                 [--crash proc:time]... [--faults N] [--horizon N]
  ekbd threaded  [--n N] [--window-ms N] [--crash PROC] [--recover-ms N]
  ekbd campaign  --topology SPEC [--seeds N] [--workers N|auto] [--verify on]
                 [common `run` flags: --seed (base), --sessions, --think, --eat,
                  --oracle, --crash, --recover, --corrupt-state, --loss, --dup,
                  --reorder, --partition, --link, --horizon, --engine]
  ekbd replay    --dir DIR    (post-mortem narrative from a journal directory
                  written by `run --dump-journal DIR` or the threaded runtime)
  ekbd chaos     [--topology SPEC]... [--count N] [--seed BASE]
                 [--intensity light|default|heavy] [--out DIR]
                 (explore: run seeded composite schedules; failures become
                  shrunk replayable artifacts under --out)
  ekbd chaos     --replay FILE   (re-run a committed .chaos artifact and
                  check it reproduces its `expect` class)
  ekbd chaos     --shrink FILE [--out FILE]   (ddmin a failing schedule to
                  a locally-minimal artifact)
  ekbd serve     --listen HOST:PORT | --uds PATH [--topology SPEC]
                 [--serve-ms N] [--max-sessions N] [--send-queue N]
                 [--heartbeat-ms N] [--journal-dir DIR]
                 [--reactor-threads N] [--backend threaded|scale[:SEED]]
                 (daemon as a service: a readiness reactor multiplexes
                  sessions over TCP or a Unix socket; connection deaths
                  crash the bound processes, reconnects ride the journal
                  resume path; the scale backend fronts the bit-packed
                  kernel instead of the threaded runtime)
  ekbd loadgen   --connect HOST:PORT | --uds PATH --clients N
                 [--sessions N] [--kill FRAC] [--think-ms N] [--seed N]
                 [--multiplex K]
                 (drive hungry/eat churn against a serve instance, killing
                  FRAC of the fleet mid-session; --multiplex K binds K
                  processes per connection; prints grant latency
                  p50/p99/p999 and the readmission table)

TOPOLOGY SPECS:
  ring:n path:n star:n clique:n grid:RxC torus:RxC tree:n wheel:n
  hypercube:d gnp:n:p:seed powerlaw:n:m:seed
  (chaos schedules use the dash form: ring-8 grid-3x4 gnp-12-0.3)

CHURN: --churn-rate N schedules seeded membership churn at roughly one
  event every N ticks; --churn-plan takes explicit comma-separated events
  join:p:t | leave:p:t | crash-leave:p:t | replace:old:new:t.
";

/// Builds a [`Scenario`] from the common flags.
fn scenario_from(parsed: &Parsed) -> Result<Scenario, ArgError> {
    let topology = TopologySpec::parse(parsed.get("topology").unwrap_or("ring:5"))?;
    let mut s = Scenario::new(topology.build())
        .seed(parsed.get_parsed("seed", 0u64)?)
        .horizon(Time(parsed.get_parsed("horizon", 200_000u64)?));
    s.workload = Workload {
        sessions: parsed.get_parsed("sessions", 20u32)?,
        think: parsed.get_range("think", (1, 60))?,
        eat: parsed.get_range("eat", (1, 15))?,
    };
    match OracleArg::parse(parsed.get("oracle").unwrap_or("silent"))? {
        OracleArg::Silent => {}
        OracleArg::Perfect => s = s.perfect_oracle(),
        OracleArg::Adversarial { converge, burst } => {
            s = s.adversarial_oracle(converge, burst);
        }
        OracleArg::Heartbeat(cfg) => s = s.heartbeat_oracle(cfg),
        OracleArg::Probe(cfg) => s = s.probe_oracle(cfg),
    }
    // Channel faults first: the plan is *replaced* here, while the
    // --crash/--recover/--corrupt-state schedules below extend it.
    let mut faults = ekbd_sim::FaultPlan::new();
    if parsed.get("loss").is_some() {
        faults = faults.loss(parsed.get_parsed("loss", 0.0f64)?);
    }
    if parsed.get("dup").is_some() {
        faults = faults.duplication(parsed.get_parsed("dup", 0.0f64)?);
    }
    if let Some(spec) = parsed.get("reorder") {
        let (p, window) = parse_reorder(spec)?;
        faults = faults.reorder(p, window);
    }
    for spec in parsed.get_all("partition") {
        let (side, start, heal) = parse_partition(spec)?;
        faults = faults.partition(side, start, heal);
    }
    if !faults.is_inert() {
        s = s.faults(faults);
    }
    for c in parsed.get_all("crash") {
        let (p, t) = parse_crash(c)?;
        s = s.crash(p, t);
    }
    for r in parsed.get_all("recover") {
        let (p, t, corrupt) = parse_recover(r)?;
        s = if corrupt {
            s.recover_corrupted(p, t)
        } else {
            s.recover(p, t)
        };
    }
    for c in parsed.get_all("corrupt-state") {
        let (p, t) = parse_corrupt_state(c)?;
        s = s.corrupt_state(p, t);
    }
    if let Some(spec) = parsed.get("journal") {
        s = match spec {
            "on" => s.journal(true),
            "off" => s,
            other => {
                return Err(ArgError::BadValue {
                    flag: "--journal".into(),
                    value: other.to_string(),
                    expected: "on | off",
                })
            }
        };
    }
    let mut storage = StorageFaultPlan::new().seed(s.seed);
    for spec in parsed.get_all("storage-fault") {
        let (p, mode) = parse_storage_fault(spec)?;
        storage = storage.fault(p, mode);
    }
    if !storage.is_inert() {
        s = s.storage_faults(storage);
    }
    if parsed.get("audit-period").is_some() {
        s = s.audit_period(parsed.get_parsed("audit-period", ekbd_harness::AUDIT_PERIOD)?);
    }
    if parsed.get("audit-strikes").is_some() {
        s = s.audit_strikes(parsed.get_parsed("audit-strikes", 2u8)?);
    }
    // Dynamic membership: a seeded churn stream or an explicit plan, not
    // both. `Scenario::membership` recomputes the coloring online and
    // asserts plan validity, so validate explicit plans here first to get
    // a diagnosable error instead of a panic.
    match (parsed.get("churn-rate"), parsed.get("churn-plan")) {
        (Some(_), Some(_)) => {
            return Err(ArgError::BadValue {
                flag: "--churn-plan".into(),
                value: "combined with --churn-rate".into(),
                expected: "either a seeded churn rate or an explicit plan, not both",
            })
        }
        (Some(_), None) => {
            let period: u64 = parsed.get_parsed("churn-rate", 400u64)?;
            if period == 0 {
                return Err(ArgError::BadValue {
                    flag: "--churn-rate".into(),
                    value: "0".into(),
                    expected: "a mean ticks-per-membership-event period of at least 1",
                });
            }
            s = s.churn(period);
        }
        (None, Some(spec)) => {
            let plan = parse_churn_plan(spec)?;
            if let Err(e) = plan.validate(s.graph.len()) {
                return Err(ArgError::BadValue {
                    flag: "--churn-plan".into(),
                    value: format!("{spec}: {e}"),
                    expected: "a membership plan that fits the scenario population",
                });
            }
            s = s.membership(plan);
        }
        (None, None) => {}
    }
    if let Some(spec) = parsed.get("link") {
        s = s.reliable_link(parse_link(spec)?);
    }
    s = s.engine(parse_engine(parsed)?);
    Ok(s)
}

fn parse_engine(parsed: &Parsed) -> Result<EngineKind, ArgError> {
    match parsed.get("engine").unwrap_or("indexed") {
        "indexed" => Ok(EngineKind::Indexed),
        "legacy" => Ok(EngineKind::Legacy),
        other => Err(ArgError::BadValue {
            flag: "--engine".into(),
            value: other.to_string(),
            expected: "indexed | legacy",
        }),
    }
}

fn run_with_algorithm(s: &Scenario, alg: &AlgorithmSpec) -> Result<RunReport, ArgError> {
    let has_state_faults = !s.recoveries().is_empty()
        || !s.corruptions().is_empty()
        || s.journal
        || !s.storage_faults.is_inert();
    // Membership churn rides the same recovery machinery: joins reuse the
    // rejoin handshake, so a non-inert plan also needs the recoverable run.
    let has_membership = !s.membership.is_inert();
    if (has_state_faults || has_membership) && *alg != AlgorithmSpec::Algorithm1 {
        return Err(ArgError::BadValue {
            flag: "--algorithm".into(),
            value: format!("{alg:?}"),
            expected: "alg1 (only the crash-recovery variant of Algorithm 1 \
                       supports --recover / --corrupt-state / --journal / \
                       --storage-fault / --churn-rate / --churn-plan)",
        });
    }
    Ok(match alg {
        AlgorithmSpec::Algorithm1 if has_state_faults || has_membership => s.run_recoverable(),
        AlgorithmSpec::Algorithm1 => s.run_algorithm1(),
        AlgorithmSpec::ChoySingh => {
            s.run_with(|sc, p| ChoySinghProcess::from_graph(&sc.graph, &sc.colors, p))
        }
        AlgorithmSpec::Naive => {
            s.run_with(|sc, p| NaivePriorityProcess::from_graph(&sc.graph, &sc.colors, p))
        }
        AlgorithmSpec::Budgeted(m) => {
            let m = *m;
            s.run_with(move |sc, p| BudgetedDiningProcess::from_graph(&sc.graph, &sc.colors, p, m))
        }
    })
}

fn print_report(report: &RunReport) {
    let progress = report.progress();
    let exclusion = report.exclusion();
    let conv = report.detector_convergence();
    println!("processes ................... {}", report.graph.len());
    println!("events processed ............ {}", report.events_processed);
    println!("messages .................... {}", report.total_messages);
    println!(
        "eat sessions ................ {}",
        report.total_eat_sessions()
    );
    println!("starving (correct) .......... {:?}", progress.starving());
    let lat = progress.latency_summary();
    println!(
        "hungry latency .............. p50={} p99={} p999={} max={}",
        lat.p50, lat.p99, lat.p999, lat.max
    );
    println!("detector convergence ........ {conv}");
    println!(
        "exclusion mistakes .......... total={} after-convergence={}",
        exclusion.total(),
        exclusion.after(conv)
    );
    println!(
        "max overtakes (suffix) ...... {}",
        report.fairness().max_overtakes_after(conv)
    );
    println!(
        "channel high-water .......... {} (paper bound: 4 dining msgs)",
        report.max_channel_high_water
    );
    if report.messages_dropped > 0 || report.messages_duplicated > 0 {
        println!(
            "channel faults .............. dropped={} duplicated={}",
            report.messages_dropped, report.messages_duplicated
        );
    }
    if let Some(link) = &report.link {
        println!(
            "link delivered/sent ......... {}/{} (retransmissions={}, ratio {:.2})",
            link.delivered,
            link.payloads_sent,
            link.retransmissions,
            link.retransmit_ratio()
        );
        println!(
            "link dup-suppressed ......... {} (max unacked per edge: {})",
            link.duplicates_suppressed, link.max_unacked
        );
    }
    if !report.crashes.is_empty() {
        let q = report.quiescence();
        println!(
            "msgs to crashed ............. {} (last at {:?})",
            q.total(),
            q.last_send()
        );
        let quality = DetectorQualityReport::analyze(
            &report.graph,
            &report.suspicions,
            &report.crashes,
            report.horizon,
        );
        println!(
            "detector .................... false-positives={} complete={} max-latency={:?}",
            quality.false_positives,
            quality.complete(),
            quality.max_detection_latency()
        );
    }
    if !report.recoveries.is_empty() || !report.corruptions.is_empty() {
        println!(
            "state faults ................ recoveries={} corruptions={}",
            report.recoveries.len(),
            report.corruptions.len()
        );
        let readmissions = report.readmissions();
        for r in &readmissions {
            let path = match r.path {
                Some(RestartPath::Journal {
                    resumed,
                    rejoined,
                    stale,
                }) => {
                    format!(
                        " [journal: {resumed} resumed, {rejoined} rejoined, {stale} stale-refuted]"
                    )
                }
                Some(RestartPath::Blank { reason }) => format!(" [blank: {reason:?}]"),
                None => String::new(),
            };
            let tag = if r.membership == MembershipTag::Departed {
                " [departed]"
            } else {
                ""
            };
            match r.first_eat {
                Some(t) => println!(
                    "  p{} restarted at {} ........ readmitted (first eats {} ticks later){}{}",
                    r.process.index(),
                    r.restarted.0,
                    t.0.saturating_sub(r.restarted.0),
                    path,
                    tag
                ),
                None => println!(
                    "  p{} restarted at {} ........ never ate again{}{}",
                    r.process.index(),
                    r.restarted.0,
                    path,
                    tag
                ),
            }
        }
        // Departed processes stop eating because they left, not because
        // readmission was slow; their records would skew the median.
        let mut latencies: Vec<u64> = readmissions
            .iter()
            .filter(|r| r.membership != MembershipTag::Departed)
            .filter_map(|r| r.time_to_readmission())
            .collect();
        latencies.sort_unstable();
        if !latencies.is_empty() {
            println!(
                "readmission latency ......... median={} ticks over {} restart(s), \
                 departed excluded",
                latencies[latencies.len() / 2],
                latencies.len()
            );
        }
        if let Some(stats) = &report.recovery {
            println!(
                "recovery layer .............. resyncs={} repairs={} local-repairs={} \
                 stale-dropped={} suppressed={} fast-resumes={}",
                stats.resyncs,
                stats.repairs,
                stats.local_repairs,
                stats.stale_dropped,
                stats.suppressed,
                stats.fast_resumes
            );
        }
    }
    if !report.joins.is_empty() || !report.departures.is_empty() {
        let graceful = report.departures.iter().filter(|&&(_, _, g)| g).count();
        println!(
            "membership .................. joins={} departures={} ({} graceful)",
            report.joins.len(),
            report.departures.len(),
            graceful
        );
        for a in report.admissions() {
            match a.time_to_first_eat() {
                Some(lat) => println!(
                    "  p{} joined at {} ........... admitted (first eats {} ticks later)",
                    a.process.index(),
                    a.joined.0,
                    lat
                ),
                None => println!(
                    "  p{} joined at {} ........... never ate before the horizon",
                    a.process.index(),
                    a.joined.0
                ),
            }
        }
    }
}

/// `ekbd run … --shards N`: the packed scale tier — bit-packed S1 state,
/// streaming aggregation, sharded drive loop. Fault-free by construction,
/// so every fault/oracle flag is rejected rather than silently ignored.
fn cmd_run_scale(parsed: &Parsed, shards: usize) -> Result<(), ArgError> {
    const INCOMPATIBLE: &[&str] = &[
        "crash",
        "recover",
        "corrupt-state",
        "loss",
        "dup",
        "reorder",
        "partition",
        "link",
        "journal",
        "storage-fault",
        "churn-rate",
        "churn-plan",
        "timeline",
        "dump-journal",
        "engine",
    ];
    for flag in INCOMPATIBLE {
        if parsed.get(flag).is_some() {
            return Err(ArgError::BadValue {
                flag: format!("--{flag}"),
                value: "combined with --shards".into(),
                expected: "the packed scale tier is fault-free; drop --shards to \
                           run the dense tier, which supports this flag",
            });
        }
    }
    if parsed.get("oracle").is_some_and(|o| o != "silent") {
        return Err(ArgError::BadValue {
            flag: "--oracle".into(),
            value: parsed.get("oracle").unwrap_or_default().to_string(),
            expected: "silent (the packed scale tier runs crash-free)",
        });
    }
    if parsed.get("algorithm").is_some_and(|a| a != "alg1") {
        return Err(ArgError::BadValue {
            flag: "--algorithm".into(),
            value: parsed.get("algorithm").unwrap_or_default().to_string(),
            expected: "alg1 (the packed kernel implements Algorithm 1 only)",
        });
    }
    if shards == 0 || shards > 256 {
        return Err(ArgError::BadValue {
            flag: "--shards".into(),
            value: shards.to_string(),
            expected: "1..=256 worker shards",
        });
    }
    let eat = parsed.get_range("eat", (1, 10))?;
    if eat.1 > 8191 {
        return Err(ArgError::BadValue {
            flag: "--eat".into(),
            value: format!("{}:{}", eat.0, eat.1),
            expected: "an upper bound of at most 8191 ticks (the packed \
                       event word's aux field)",
        });
    }
    let think = parsed.get_range("think", (1, 40))?;
    let topology = TopologySpec::parse(parsed.get("topology").unwrap_or("ring:5"))?;
    let g = topology.build();
    let colors = ekbd_graph::coloring::greedy(&g);
    let part = ekbd_graph::partition::greedy_edge_cut(&g, shards);
    let cfg = ekbd_sim::ScaleConfig::default()
        .seed(parsed.get_parsed("seed", 0u64)?)
        .horizon(parsed.get_parsed("horizon", 1_000_000u64)?)
        .sessions(parsed.get_parsed("sessions", 3u32)?)
        .think(think.0, think.1)
        .eat(eat.0, eat.1);
    let kernel = ekbd_sim::PackedKernel::new(&g, &colors, &part, cfg);
    let state_bytes = kernel.state_bytes();
    let report = ekbd_sim::run_sharded(kernel);
    println!("== ekbd run: packed scale tier (Algorithm 1) ==\n");
    println!(
        "processes ................... {} ({} edges, max degree {})",
        report.n,
        g.edge_count(),
        g.max_degree()
    );
    println!(
        "shards ...................... {} ({} cut edges)",
        report.shards,
        part.cut_edges(&g)
    );
    println!(
        "packed state ................ {state_bytes} bytes ({:.1} per process)",
        state_bytes as f64 / report.n as f64
    );
    println!(
        "events processed ............ {} ({:.0} events/s)",
        report.events,
        report.events_per_sec()
    );
    println!("protocol messages ........... {}", report.messages);
    println!("final tick .................. {}", report.final_tick);
    println!(
        "eat sessions ................ total={} min/process={}",
        report.eats.iter().map(|&e| e as u64).sum::<u64>(),
        report.min_eats()
    );
    println!("scheduling mistakes ......... {}", report.mistakes);
    println!("starving processes .......... {}", report.starving);
    println!("hungry→eat latency .......... {}", report.latency.brief());
    println!(
        "verdict ..................... {}",
        if report.verdict() { "PASS" } else { "FAIL" }
    );
    println!("fingerprint ................. {}", report.fingerprint());
    Ok(())
}

/// `ekbd run … --obs streaming`: the full simulator with streaming
/// aggregation instead of a dense observation log.
fn cmd_run_streaming(parsed: &Parsed) -> Result<(), ArgError> {
    let s = scenario_from(parsed)?;
    if parsed.get("algorithm").is_some_and(|a| a != "alg1") {
        return Err(ArgError::BadValue {
            flag: "--algorithm".into(),
            value: parsed.get("algorithm").unwrap_or_default().to_string(),
            expected: "alg1 (--obs streaming aggregates Algorithm 1 runs)",
        });
    }
    if !s.recoveries().is_empty() || !s.corruptions().is_empty() || !s.membership.is_inert() {
        return Err(ArgError::BadValue {
            flag: "--obs".into(),
            value: "streaming with recovery or membership faults".into(),
            expected: "crash-stop scenarios only (dense observation can \
                       sanitize interrupted lives; a streaming pass cannot)",
        });
    }
    let report = s.run_algorithm1_streaming();
    println!("== ekbd run: Algorithm1 (streaming observers) ==\n");
    println!("processes ................... {}", report.n);
    println!(
        "eat sessions ................ total={}",
        report.total_sessions()
    );
    println!("scheduling mistakes ......... {}", report.mistakes);
    println!(
        "wait-free ................... {} ({} starving)",
        report.wait_free(),
        report.starving.len()
    );
    println!(
        "detector convergence ........ {} / horizon {}",
        report.convergence.0, report.horizon.0
    );
    println!("hungry→eat latency .......... {}", report.latency.brief());
    println!("dining messages ............. {}", report.dining_sends);
    for e in &report.excerpts {
        println!(
            "  excerpt: p{} started eating at {} after {} hungry ticks",
            e.process, e.tick, e.latency
        );
    }
    Ok(())
}

/// `ekbd run …`
pub fn cmd_run(parsed: &Parsed) -> Result<(), ArgError> {
    if let Some(spec) = parsed.get("shards") {
        let shards: usize = spec.parse().map_err(|_| ArgError::BadValue {
            flag: "--shards".into(),
            value: spec.to_string(),
            expected: "a shard count in 1..=256",
        })?;
        if parsed.get("obs").is_some_and(|o| o == "dense") {
            return Err(ArgError::BadValue {
                flag: "--obs".into(),
                value: "dense".into(),
                expected: "streaming (the packed scale tier never stores \
                           dense observations)",
            });
        }
        return cmd_run_scale(parsed, shards);
    }
    match parsed.get("obs").unwrap_or("dense") {
        "dense" => {}
        "streaming" => return cmd_run_streaming(parsed),
        other => {
            return Err(ArgError::BadValue {
                flag: "--obs".into(),
                value: other.to_string(),
                expected: "dense | streaming",
            })
        }
    }
    let s = scenario_from(parsed)?;
    let alg = AlgorithmSpec::parse(parsed.get("algorithm").unwrap_or("alg1"))?;
    let report = run_with_algorithm(&s, &alg)?;
    println!("== ekbd run: {alg:?} ==\n");
    print_report(&report);
    if let Some(dir) = parsed.get("dump-journal") {
        let dir = std::path::PathBuf::from(dir);
        report.dump_journals(&dir).map_err(|e| ArgError::BadValue {
            flag: "--dump-journal".into(),
            value: format!("{}: {e}", dir.display()),
            expected: "a writable directory",
        })?;
        let dumped = report.journals.iter().filter(|j| !j.is_empty()).count();
        println!(
            "\njournals dumped ............. {} file(s) in {}",
            dumped,
            dir.display()
        );
    }
    if let Some(until) = parsed.get("timeline") {
        let until: u64 = until.parse().map_err(|_| ArgError::BadValue {
            flag: "--timeline".into(),
            value: until.to_string(),
            expected: "u64 ticks",
        })?;
        println!("\neating timeline 0..{until} ('#' eating, '!' mistake, '×' crash):");
        print!(
            "{}",
            Timeline::until(Time(until))
                .marker(report.detector_convergence())
                .render(
                    &report.graph,
                    &report.events,
                    &|p| report.crash_time(p),
                    report.horizon
                )
        );
    }
    Ok(())
}

fn stabilize_with<P: Protocol>(
    protocol: &P,
    s: Scenario,
    cfg: &StabilizationConfig,
    alg: &AlgorithmSpec,
) -> ekbd_stabilize::StabilizationReport {
    match alg {
        AlgorithmSpec::Algorithm1 => ScheduledRun::execute(protocol, s, cfg, |sc, p| {
            DiningProcess::from_graph(&sc.graph, &sc.colors, p)
        }),
        AlgorithmSpec::ChoySingh => ScheduledRun::execute(protocol, s, cfg, |sc, p| {
            ChoySinghProcess::from_graph(&sc.graph, &sc.colors, p)
        }),
        AlgorithmSpec::Naive => ScheduledRun::execute(protocol, s, cfg, |sc, p| {
            NaivePriorityProcess::from_graph(&sc.graph, &sc.colors, p)
        }),
        AlgorithmSpec::Budgeted(m) => {
            let m = *m;
            ScheduledRun::execute(protocol, s, cfg, move |sc, p| {
                BudgetedDiningProcess::from_graph(&sc.graph, &sc.colors, p, m)
            })
        }
    }
}

/// `ekbd stabilize …`
pub fn cmd_stabilize(parsed: &Parsed) -> Result<(), ArgError> {
    let s = scenario_from(parsed)?;
    let alg = AlgorithmSpec::parse(parsed.get("algorithm").unwrap_or("alg1"))?;
    let protocol = ProtocolSpec::parse(parsed.get("protocol").unwrap_or("coloring"))?;
    let n = s.graph.len();
    let fault_count: u64 = parsed.get_parsed("faults", 6u64)?;
    let cfg = StabilizationConfig {
        seed: parsed.get_parsed("seed", 0u64)? + 1000,
        think: (1, 8),
        transient_faults: (0..fault_count)
            .map(|k| {
                (
                    Time(2_000 + 400 * k),
                    ProcessId::from((k as usize * 5 + 1) % n),
                )
            })
            .collect(),
    };
    let report = match &protocol {
        ProtocolSpec::Coloring => stabilize_with(&ColoringProtocol::default(), s, &cfg, &alg),
        ProtocolSpec::ColoringAdversarial => {
            stabilize_with(&ColoringProtocol::adversarial(), s, &cfg, &alg)
        }
        ProtocolSpec::Mis => stabilize_with(&MisProtocol, s, &cfg, &alg),
        ProtocolSpec::TokenRing(k) => stabilize_with(&TokenRingProtocol::new(*k), s, &cfg, &alg),
        ProtocolSpec::BfsTree => stabilize_with(&SpanningTreeProtocol, s, &cfg, &alg),
        ProtocolSpec::Leader => stabilize_with(&LeaderProtocol, s, &cfg, &alg),
    };
    println!("== ekbd stabilize: {} via {:?} ==\n", report.protocol, alg);
    println!("steps executed .............. {}", report.steps_executed);
    println!("no-op slots ................. {}", report.steps_skipped);
    println!("faults injected ............. {}", report.faults_injected);
    println!(
        "converged ................... {} (at {:?})",
        report.legitimate_at_end, report.converged_at
    );
    println!(
        "starving (correct) .......... {:?}",
        report.dining.progress().starving()
    );
    Ok(())
}

/// `ekbd threaded …`
pub fn cmd_threaded(parsed: &Parsed) -> Result<(), ArgError> {
    use ekbd_metrics::SchedEvent;
    use ekbd_runtime::{RuntimeConfig, ThreadedDining};

    fn drive<M: Clone + Send + 'static>(
        sys: ThreadedDining<M>,
        n: usize,
        window_ms: u64,
        crash: Option<usize>,
        recover_ms: Option<u64>,
    ) -> Vec<SchedEvent> {
        if let Some(victim) = crash {
            sys.crash(ProcessId::from(victim));
        }
        let rounds = (window_ms / 25).max(1);
        for _ in 0..rounds {
            if let (Some(victim), Some(at)) = (crash, recover_ms) {
                if sys.elapsed_ms() >= at {
                    sys.recover(ProcessId::from(victim));
                }
            }
            for i in 0..n {
                sys.make_hungry(ProcessId::from(i));
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        sys.shutdown_after(std::time::Duration::from_millis(150))
    }

    let n: usize = parsed.get_parsed("n", 5usize)?;
    let window_ms: u64 = parsed.get_parsed("window-ms", 400u64)?;
    let crash: Option<usize> = match parsed.get("crash") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| ArgError::BadValue {
            flag: "--crash".into(),
            value: v.to_string(),
            expected: "process index",
        })?),
    };
    let recover_ms: Option<u64> = match parsed.get("recover-ms") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| ArgError::BadValue {
            flag: "--recover-ms".into(),
            value: v.to_string(),
            expected: "milliseconds after start",
        })?),
    };
    let graph = ekbd_graph::topology::ring(n.max(3));
    // A recovery schedule needs the crash-recovery variant of Algorithm 1;
    // plain runs keep the crash-stop original.
    let events = if recover_ms.is_some() {
        drive(
            ThreadedDining::spawn_recoverable(graph, RuntimeConfig::default()),
            n,
            window_ms,
            crash,
            recover_ms,
        )
    } else {
        drive(
            ThreadedDining::spawn(graph, RuntimeConfig::default()),
            n,
            window_ms,
            crash,
            recover_ms,
        )
    };
    println!("== ekbd threaded: ring of {n}, {window_ms} ms ==\n");
    let mut eats = vec![0u32; n];
    for e in &events {
        if e.obs == ekbd_dining::DiningObs::StartedEating {
            eats[e.process.index()] += 1;
        }
    }
    for (i, c) in eats.iter().enumerate() {
        let marker = if crash == Some(i) {
            if recover_ms.is_some() {
                " (crashed, recovered)"
            } else {
                " (crashed)"
            }
        } else {
            ""
        };
        println!("p{i}: {c} eat sessions{marker}");
    }
    Ok(())
}

/// `ekbd campaign …` — fan one scenario shape across a block of seeds on
/// worker threads and print the deterministic merged digest.
pub fn cmd_campaign(parsed: &Parsed) -> Result<(), ArgError> {
    let base = scenario_from(parsed)?;
    let count: u64 = parsed.get_parsed("seeds", 16u64)?;
    if count == 0 {
        return Err(ArgError::BadValue {
            flag: "--seeds".into(),
            value: "0".into(),
            expected: "a positive seed count",
        });
    }
    let workers: usize = match parsed.get("workers") {
        None | Some("auto") => 0,
        Some(v) => v.parse().map_err(|_| ArgError::BadValue {
            flag: "--workers".into(),
            value: v.to_string(),
            expected: "a worker count, or 'auto'",
        })?,
    };
    let label = parsed.get("topology").unwrap_or("ring:5").to_string();
    let base_seed = base.seed;
    let campaign = Campaign::new().seeds(&label, &base, base_seed..base_seed + count);
    let report = if workers == 0 {
        campaign.run()
    } else {
        campaign.run_with_workers(workers)
    };
    println!("== ekbd campaign: {label} × {count} seeds (base seed {base_seed}) ==\n");
    print!("{}", report.merged());
    println!("\nworkers ..................... {}", report.workers);
    println!(
        "wall ........................ {:.3}s",
        report.wall.as_secs_f64()
    );
    println!(
        "throughput .................. {:.0} events/s",
        report.total_events() as f64 / report.wall.as_secs_f64().max(1e-9)
    );
    if parsed.get("verify").is_some() {
        let serial = campaign.run_serial();
        let identical = serial.merged() == report.merged();
        println!(
            "serial check ................ identical={} serial-wall={:.3}s speedup={:.2}x",
            identical,
            serial.wall.as_secs_f64(),
            serial.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9)
        );
        if !identical {
            return Err(ArgError::BadValue {
                flag: "--verify".into(),
                value: "mismatch".into(),
                expected: "parallel merged report byte-identical to serial \
                           (determinism violation — please report)",
            });
        }
    }
    Ok(())
}

/// `ekbd replay --dir DIR` — reconstruct the restart narrative from a
/// journal directory (written by `run --dump-journal` or by the threaded
/// runtime's `journal_dir`). Read-only and deterministic: the same
/// directory always renders byte-identically.
pub fn cmd_replay(parsed: &Parsed) -> Result<(), ArgError> {
    let dir = parsed.get("dir").ok_or(ArgError::MissingValue(
        "--dir (a journal directory)".to_string(),
    ))?;
    let dir = std::path::PathBuf::from(dir);
    // Distinguish "the path is wrong" from "the run journaled nothing":
    // the former points at a typo, the latter at a run without --journal.
    if !dir.exists() {
        return Err(ArgError::BadValue {
            flag: "--dir".into(),
            value: dir.display().to_string(),
            expected: "an existing journal directory (no such path; point --dir at a \
                       directory written by `run --dump-journal` or the threaded runtime)",
        });
    }
    let replays = ekbd_journal::replay::load_dir(&dir).map_err(|e| ArgError::BadValue {
        flag: "--dir".into(),
        value: format!("{}: {e}", dir.display()),
        expected: "a readable journal directory",
    })?;
    if replays.is_empty() {
        return Err(ArgError::BadValue {
            flag: "--dir".into(),
            value: dir.display().to_string(),
            expected: "a directory containing *.ekj journal files (the directory exists \
                       but holds none — was the run journaled with --journal on?)",
        });
    }
    print!("{}", ekbd_journal::replay::render(&replays));
    Ok(())
}

/// Maps a chaos-layer error onto the flag that caused it.
fn chaos_arg_err(flag: &'static str, e: ekbd_chaos::ScheduleError) -> ArgError {
    ArgError::BadValue {
        flag: flag.into(),
        value: e.to_string(),
        expected: "a valid chaos schedule",
    }
}

/// Prints the watchdog's verdict for one schedule.
fn print_chaos_outcome(schedule: &ekbd_chaos::FaultSchedule, o: &ekbd_harness::ChaosOutcome) {
    let axes: Vec<&str> = schedule.axes().iter().map(|a| a.name()).collect();
    println!(
        "schedule .................... {} seed {} ({} events; {})",
        schedule.topology,
        schedule.seed,
        schedule.events.len(),
        axes.join("+")
    );
    println!("class ....................... {}", o.class);
    println!("stabilized at ............... t={}", o.stabilized_at.0);
    println!(
        "mistakes (total / after) .... {} / {}",
        o.mistakes_total, o.mistakes_after
    );
    println!("deterministic rerun ......... {}", o.deterministic);
    if !o.starving.is_empty() {
        println!("starving .................... {:?}", o.starving);
    }
}

/// `ekbd chaos --replay FILE` — re-run a committed artifact; if it
/// carries an `expect` line, reproducing any other class is an error.
fn chaos_replay(path: &std::path::Path) -> Result<(), ArgError> {
    let schedule =
        ekbd_chaos::codec::read_artifact(path).map_err(|e| chaos_arg_err("--replay", e))?;
    let outcome = ekbd_harness::run_chaos(&schedule).map_err(|e| chaos_arg_err("--replay", e))?;
    println!("== ekbd chaos replay: {} ==\n", path.display());
    print_chaos_outcome(&schedule, &outcome);
    match schedule.expect {
        Some(expected) if outcome.class == expected => {
            println!("\nexpected class reproduced ({expected})");
            Ok(())
        }
        Some(expected) => Err(ArgError::BadValue {
            flag: "--replay".into(),
            value: format!("ran {} but artifact expects {}", outcome.class, expected),
            expected: "the artifact's recorded run class to reproduce",
        }),
        None => {
            if outcome.is_failure() {
                eprintln!(
                    "chaos invariant failure ({}); reproduce with: {}",
                    outcome.class,
                    ekbd_chaos::codec::replay_command(path)
                );
            }
            Ok(())
        }
    }
}

/// `ekbd chaos --shrink FILE [--out FILE]` — ddmin a failing schedule to
/// a locally-minimal artifact that reproduces the same class.
fn chaos_shrink(parsed: &Parsed, path: &std::path::Path) -> Result<(), ArgError> {
    let schedule =
        ekbd_chaos::codec::read_artifact(path).map_err(|e| chaos_arg_err("--shrink", e))?;
    let outcome = ekbd_harness::run_chaos(&schedule).map_err(|e| chaos_arg_err("--shrink", e))?;
    if !outcome.is_failure() {
        return Err(ArgError::BadValue {
            flag: "--shrink".into(),
            value: format!("{} runs {}", path.display(), outcome.class),
            expected: "a failing schedule (nothing to shrink)",
        });
    }
    let class = outcome.class;
    println!(
        "== ekbd chaos shrink: {} ({} events, {class}) ==",
        path.display(),
        schedule.events.len()
    );
    let (small, stats) = ekbd_harness::shrink_failing(&schedule, class);
    let out = parsed
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| path.with_extension("min.chaos"));
    ekbd_chaos::codec::write_artifact(&small.expecting(class), &out)
        .map_err(|e| chaos_arg_err("--out", e))?;
    println!(
        "shrunk {} -> {} events in {} oracle runs",
        stats.original, stats.shrunk, stats.tests
    );
    println!(
        "wrote {}; replay with: {}",
        out.display(),
        ekbd_chaos::codec::replay_command(&out)
    );
    Ok(())
}

/// `ekbd chaos` (explore) — generate and run seeded composite schedules
/// across topologies; every failure is persisted, shrunk, and reported
/// with its exact replay command, then the axis-coverage summary prints.
fn chaos_explore(parsed: &Parsed) -> Result<(), ArgError> {
    let flagged = parsed.get_all("topology");
    let topologies: Vec<String> = if flagged.is_empty() {
        ["ring-8", "clique-6", "grid-3x4", "gnp-12-0.3"]
            .map(String::from)
            .to_vec()
    } else {
        flagged.to_vec()
    };
    let count: u64 = parsed.get_parsed("count", 8u64)?;
    if count == 0 {
        return Err(ArgError::BadValue {
            flag: "--count".into(),
            value: "0".into(),
            expected: "a positive schedule count per topology",
        });
    }
    let base: u64 = parsed.get_parsed("seed", 1u64)?;
    let intensity = match parsed.get("intensity") {
        None => ekbd_chaos::Intensity::default_mix(),
        Some(name) => ekbd_chaos::Intensity::parse(name).ok_or_else(|| ArgError::BadValue {
            flag: "--intensity".into(),
            value: name.to_string(),
            expected: "light | default | heavy",
        })?,
    };
    let out_dir = std::path::PathBuf::from(parsed.get("out").unwrap_or("chaos-artifacts"));
    println!(
        "== ekbd chaos explore: {} topologies × {count} seeds ({} intensity, base seed {base}) ==\n",
        topologies.len(),
        intensity.name
    );
    let mut coverage = ekbd_chaos::Coverage::new();
    let mut failures = 0usize;
    for topo in &topologies {
        for k in 0..count {
            let seed = base + k;
            let schedule = ekbd_chaos::FaultSchedule::generate(topo, seed, &intensity)
                .map_err(|e| chaos_arg_err("--topology", e))?;
            let outcome =
                ekbd_harness::run_chaos(&schedule).map_err(|e| chaos_arg_err("--topology", e))?;
            coverage.record(&schedule);
            let axes: Vec<&str> = schedule.axes().iter().map(|a| a.name()).collect();
            println!(
                "  {topo} seed {seed:<4} {:<32} {}",
                axes.join("+"),
                outcome.class
            );
            if outcome.is_failure() {
                failures += 1;
                ekbd_harness::emit_repro_artifact(&schedule, outcome.class, &out_dir)
                    .map_err(|e| chaos_arg_err("--out", e))?;
                let (small, stats) = ekbd_harness::shrink_failing(&schedule, outcome.class);
                let min_path = out_dir.join(format!(
                    "{topo}-seed{seed}-{}.min.chaos",
                    outcome.class.as_str()
                ));
                ekbd_chaos::codec::write_artifact(&small.expecting(outcome.class), &min_path)
                    .map_err(|e| chaos_arg_err("--out", e))?;
                println!(
                    "    shrunk {} -> {} events; replay with: {}",
                    stats.original,
                    stats.shrunk,
                    ekbd_chaos::codec::replay_command(&min_path)
                );
            }
        }
    }
    println!("\n{}", coverage.summary());
    let total = topologies.len() as u64 * count;
    if failures > 0 {
        Err(ArgError::BadValue {
            flag: "--out".into(),
            value: format!("{failures}/{total} schedules failed"),
            expected: "every schedule wait-free (shrunk repro artifacts written; see above)",
        })
    } else {
        println!("all {total} schedules wait-free");
        Ok(())
    }
}

/// `ekbd chaos` — explore (default), `--replay FILE`, or `--shrink FILE`.
pub fn cmd_chaos(parsed: &Parsed) -> Result<(), ArgError> {
    match (parsed.get("replay"), parsed.get("shrink")) {
        (Some(_), Some(_)) => Err(ArgError::BadValue {
            flag: "--replay".into(),
            value: "--shrink".into(),
            expected: "at most one of --replay / --shrink per invocation",
        }),
        (Some(path), None) => chaos_replay(std::path::Path::new(path)),
        (None, Some(path)) => chaos_shrink(parsed, std::path::Path::new(path)),
        (None, None) => chaos_explore(parsed),
    }
}

/// Reads the transport address from `--<flag>` (TCP) or `--uds` (Unix
/// socket path); exactly one must be present.
fn net_addr(parsed: &Parsed, tcp_flag: &'static str) -> Result<ekbd_net::ServerAddr, ArgError> {
    match (parsed.get(tcp_flag), parsed.get("uds")) {
        (Some(hostport), None) => Ok(ekbd_net::ServerAddr::Tcp(hostport.to_string())),
        (None, Some(path)) => Ok(ekbd_net::ServerAddr::Uds(std::path::PathBuf::from(path))),
        (Some(_), Some(_)) => Err(ArgError::BadValue {
            flag: format!("--{tcp_flag}"),
            value: "combined with --uds".into(),
            expected: "exactly one transport: --listen/--connect HOST:PORT or --uds PATH",
        }),
        (None, None) => Err(ArgError::MissingValue(format!(
            "--{tcp_flag} HOST:PORT or --uds PATH"
        ))),
    }
}

/// Reads `--backend threaded | scale | scale:SEED`.
fn backend_spec(parsed: &Parsed) -> Result<ekbd_net::BackendSpec, ArgError> {
    match parsed.get("backend") {
        None | Some("threaded") => Ok(ekbd_net::BackendSpec::Threaded),
        Some("scale") => Ok(ekbd_net::BackendSpec::Scale { seed: 1 }),
        Some(v) => match v.strip_prefix("scale:").and_then(|s| s.parse().ok()) {
            Some(seed) => Ok(ekbd_net::BackendSpec::Scale { seed }),
            None => Err(ArgError::BadValue {
                flag: "--backend".into(),
                value: v.to_string(),
                expected: "threaded | scale | scale:SEED",
            }),
        },
    }
}

/// `ekbd serve …` — expose a dining system as a network daemon.
pub fn cmd_serve(parsed: &Parsed) -> Result<(), ArgError> {
    use ekbd_net::{DaemonServer, ServerConfig};

    let addr = net_addr(parsed, "listen")?;
    let topology = TopologySpec::parse(parsed.get("topology").unwrap_or("ring:8"))?;
    let serve_ms: u64 = parsed.get_parsed("serve-ms", 2_000u64)?;
    let backend = backend_spec(parsed)?;
    let reactor_threads = parsed.get_parsed("reactor-threads", 2usize)?.max(1);
    let mut cfg = ServerConfig {
        backend: backend.clone(),
        reactor_threads,
        max_sessions: parsed.get_parsed("max-sessions", 64usize)?,
        send_queue: parsed.get_parsed("send-queue", 64usize)?,
        heartbeat_ms: parsed.get_parsed("heartbeat-ms", 200u64)?,
        ..ServerConfig::default()
    };
    if let Some(dir) = parsed.get("journal-dir") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).map_err(|e| ArgError::BadValue {
            flag: "--journal-dir".into(),
            value: format!("{}: {e}", dir.display()),
            expected: "a creatable journal directory",
        })?;
        cfg.runtime.journal_dir = Some(dir);
    }
    let server =
        DaemonServer::start(topology.build(), &addr, cfg).map_err(|e| ArgError::BadValue {
            flag: "--listen".into(),
            value: format!("{addr}: {e}"),
            expected: "a bindable address",
        })?;
    println!("== ekbd serve ==\n");
    println!("listening ................... {}", server.local_addr());
    println!(
        "topology .................... {}",
        parsed.get("topology").unwrap_or("ring:8")
    );
    println!("backend ..................... {backend:?}");
    println!("reactor threads ............. {reactor_threads}");
    println!("serving for ................. {serve_ms} ms");
    std::thread::sleep(std::time::Duration::from_millis(serve_ms));
    let run = server.shutdown();
    let eats = run
        .events
        .iter()
        .filter(|e| e.obs == ekbd_dining::DiningObs::StartedEating)
        .count();
    println!();
    println!(
        "sessions admitted ........... fresh={} resumed={} rejoined={}",
        run.stats.fresh, run.stats.resumed, run.stats.rejoined
    );
    println!(
        "overload shed ............... busy={} slow-reader={} heartbeat={}",
        run.stats.shed_busy, run.stats.shed_slow, run.stats.heartbeat_drops
    );
    println!(
        "protocol errors ............. {} (handshake timeouts: {})",
        run.stats.protocol_errors, run.stats.handshake_timeouts
    );
    println!("sessions reaped ............. {}", run.stats.reaped);
    println!("grants served ............... {eats}");
    println!("runtime restarts ............ {}", run.restarts.len());
    if let Some(scale) = &run.scale {
        println!(
            "scale kernel ................ n={} eats={} mistakes={} final_tick={}",
            scale.n,
            scale.eats.iter().map(|&e| u64::from(e)).sum::<u64>(),
            scale.mistakes,
            scale.final_tick
        );
    }
    Ok(())
}

/// `ekbd loadgen …` — drive a client fleet against a serve instance.
pub fn cmd_loadgen(parsed: &Parsed) -> Result<(), ArgError> {
    use ekbd_metrics::Summary;
    use ekbd_net::{run_load, LoadPlan};

    let addr = net_addr(parsed, "connect")?;
    let clients: usize = parsed.get_parsed("clients", 4usize)?;
    if clients == 0 {
        return Err(ArgError::BadValue {
            flag: "--clients".into(),
            value: "0".into(),
            expected: "a positive fleet size",
        });
    }
    let kill: f64 = parsed.get_parsed("kill", 0.0f64)?;
    if !(0.0..=1.0).contains(&kill) {
        return Err(ArgError::BadValue {
            flag: "--kill".into(),
            value: kill.to_string(),
            expected: "a fraction in [0, 1]",
        });
    }
    let multiplex: usize = parsed.get_parsed("multiplex", 1usize)?;
    if multiplex == 0 {
        return Err(ArgError::BadValue {
            flag: "--multiplex".into(),
            value: "0".into(),
            expected: "at least one process per connection",
        });
    }
    let plan = LoadPlan {
        clients,
        sessions_per_client: parsed.get_parsed("sessions", 10usize)?,
        think_ms: parsed.get_parsed("think-ms", 5u64)?,
        kill_fraction: kill,
        seed: parsed.get_parsed("seed", 7u64)?,
        multiplex,
        ..LoadPlan::default()
    };
    let report = run_load(&addr, &plan);
    let lat = Summary::of(report.latencies_ms.iter().copied());
    println!(
        "== ekbd loadgen: {clients} clients × {} processes × {} sessions ==\n",
        multiplex, plan.sessions_per_client
    );
    println!(
        "sessions completed .......... {}/{}",
        report.completed_sessions, report.planned_sessions
    );
    println!(
        "grant latency (ms) .......... p50={} p99={} p999={} max={}",
        lat.p50, lat.p99, lat.p999, lat.max
    );
    println!(
        "kills / reconnects .......... {}/{}",
        report.killed, report.reconnected
    );
    for r in &report.readmissions {
        println!("  p{} readmitted via {} in {} ms", r.process, r.path, r.ms);
    }
    println!("busy retries absorbed ....... {}", report.busy_retries);
    for e in &report.errors {
        println!("error: {e}");
    }
    if report.errors.is_empty() && report.completed_sessions == report.planned_sessions {
        println!("\nverdict ..................... PASS");
    } else {
        println!("\nverdict ..................... FAIL");
    }
    Ok(())
}

/// Dispatches a parsed command line.
pub fn dispatch(parsed: &Parsed) -> Result<(), ArgError> {
    match parsed.command.as_str() {
        "run" => cmd_run(parsed),
        "stabilize" => cmd_stabilize(parsed),
        "threaded" => cmd_threaded(parsed),
        "campaign" => cmd_campaign(parsed),
        "replay" => cmd_replay(parsed),
        "chaos" => cmd_chaos(parsed),
        "serve" => cmd_serve(parsed),
        "loadgen" => cmd_loadgen(parsed),
        other => Err(ArgError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(s: &str) -> Parsed {
        Parsed::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn scenario_builder_defaults() {
        let s = scenario_from(&parsed("run")).unwrap();
        assert_eq!(s.graph.len(), 5);
        assert_eq!(s.workload.sessions, 20);
    }

    #[test]
    fn scenario_builder_full() {
        let s = scenario_from(&parsed(
            "run --topology grid:3x3 --seed 4 --oracle adversarial:2000:40 \
             --sessions 7 --think 1:9 --eat 2:5 --crash 4:100 --horizon 9999",
        ))
        .unwrap();
        assert_eq!(s.graph.len(), 9);
        assert_eq!(s.seed, 4);
        assert_eq!(s.workload.sessions, 7);
        assert_eq!(s.workload.think, (1, 9));
        assert_eq!(s.crashes, vec![(ProcessId(4), Time(100))]);
        assert_eq!(s.horizon, Time(9999));
    }

    #[test]
    fn run_command_executes_each_algorithm() {
        for alg in ["alg1", "choy-singh", "naive", "budgeted:2"] {
            let p = parsed(&format!(
                "run --topology ring:4 --sessions 3 --horizon 20000 --algorithm {alg}"
            ));
            cmd_run(&p).unwrap();
        }
    }

    #[test]
    fn scenario_builder_faults_and_link() {
        let s = scenario_from(&parsed(
            "run --topology ring:6 --loss 0.1 --dup 0.05 --reorder 0.2:10 \
             --partition 0,1:500-3000 --link on",
        ))
        .unwrap();
        assert!(!s.faults.is_inert());
        assert!(s.link.is_some());
        let s = scenario_from(&parsed("run --topology ring:4")).unwrap();
        assert!(s.faults.is_inert());
        assert!(s.link.is_none());
    }

    #[test]
    fn run_command_with_faults_executes() {
        let p = parsed(
            "run --topology ring:4 --sessions 3 --horizon 40000 \
             --loss 0.1 --link on",
        );
        cmd_run(&p).unwrap();
    }

    #[test]
    fn net_commands_validate_their_transport() {
        // No transport at all.
        assert!(matches!(
            cmd_loadgen(&parsed("loadgen --clients 2")),
            Err(ArgError::MissingValue(_))
        ));
        // Both transports at once.
        assert!(matches!(
            cmd_serve(&parsed("serve --listen 127.0.0.1:0 --uds /tmp/x.sock")),
            Err(ArgError::BadValue { .. })
        ));
        // Degenerate fleet and out-of-range kill fraction.
        assert!(matches!(
            cmd_loadgen(&parsed("loadgen --connect 127.0.0.1:1 --clients 0")),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            cmd_loadgen(&parsed(
                "loadgen --connect 127.0.0.1:1 --clients 2 --kill 1.5"
            )),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn loadgen_drives_a_live_server_end_to_end() {
        // Full stack: a real server on an ephemeral port, the loadgen
        // command pointed at it, kills included.
        let server = ekbd_net::DaemonServer::start(
            ekbd_graph::topology::ring(3),
            &ekbd_net::ServerAddr::Tcp("127.0.0.1:0".into()),
            ekbd_net::ServerConfig::default(),
        )
        .unwrap();
        let ekbd_net::ServerAddr::Tcp(addr) = server.local_addr().clone() else {
            unreachable!("tcp server")
        };
        let p = parsed(&format!(
            "loadgen --connect {addr} --clients 3 --sessions 2 --kill 0.3 --seed 5"
        ));
        cmd_loadgen(&p).unwrap();
        let run = server.shutdown();
        assert_eq!(run.stats.fresh, 3, "every client bound: {:?}", run.stats);
        assert_eq!(
            run.stats.resumed + run.stats.rejoined,
            1,
            "exactly one kill was readmitted: {:?}",
            run.stats
        );
    }

    #[test]
    fn run_command_with_recovery_faults() {
        let p = parsed(
            "run --topology ring:5 --sessions 4 --horizon 60000 --oracle perfect \
             --crash 2:300 --recover 2:2000:corrupt --corrupt-state 4:3000",
        );
        cmd_run(&p).unwrap();
    }

    #[test]
    fn recovery_flags_require_algorithm1() {
        let p = parsed(
            "run --topology ring:4 --algorithm naive --crash 1:100 --recover 1:500 \
             --horizon 5000",
        );
        assert!(cmd_run(&p).is_err());
    }

    #[test]
    fn scenario_builder_journal_and_audit_knobs() {
        let s = scenario_from(&parsed(
            "run --topology ring:5 --journal on --storage-fault 2:torn \
             --storage-fault 3:stale --audit-period 25 --audit-strikes 3",
        ))
        .unwrap();
        assert!(s.journal);
        assert_eq!(
            s.storage_faults.fault_for(ProcessId(2)),
            Some(ekbd_journal::StorageFault::TornWrite)
        );
        assert_eq!(
            s.storage_faults.fault_for(ProcessId(3)),
            Some(ekbd_journal::StorageFault::StaleSnapshot)
        );
        assert_eq!(s.audit_period, 25);
        assert_eq!(s.audit_strikes, 3);
        assert!(scenario_from(&parsed("run --journal sideways")).is_err());
        assert!(scenario_from(&parsed("run --storage-fault 2:melted")).is_err());
    }

    #[test]
    fn recover_schedule_survives_channel_fault_flags() {
        // --loss/--partition replace the fault plan; the --recover schedule
        // must still be applied on top of it, not wiped by it.
        let s = scenario_from(&parsed(
            "run --topology ring:5 --loss 0.05 --partition 2:500-3000 \
             --crash 2:300 --recover 2:2000",
        ))
        .unwrap();
        assert_eq!(s.recoveries(), vec![(ProcessId(2), Time(2000))]);
        assert!(!s.faults.is_inert());
    }

    #[test]
    fn run_command_with_journal_and_storage_faults() {
        let p = parsed(
            "run --topology ring:5 --sessions 4 --horizon 60000 --oracle perfect \
             --crash 2:300 --recover 2:2000 --journal on --storage-fault 2:rot",
        );
        cmd_run(&p).unwrap();
    }

    #[test]
    fn journal_flags_require_algorithm1() {
        let p = parsed("run --topology ring:4 --algorithm naive --journal on --horizon 5000");
        assert!(cmd_run(&p).is_err());
    }

    #[test]
    fn dump_journal_then_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("ekbd-cli-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = parsed(&format!(
            "run --topology ring:5 --sessions 4 --horizon 60000 --oracle perfect \
             --crash 2:300 --recover 2:2000 --journal on --dump-journal {}",
            dir.display()
        ));
        cmd_run(&p).unwrap();
        let r = parsed(&format!("replay --dir {}", dir.display()));
        cmd_replay(&r).unwrap();
        // Replay of an empty/missing directory is an error, not silence.
        assert!(cmd_replay(&parsed("replay --dir /nonexistent-ekbd")).is_err());
        assert!(cmd_replay(&parsed("replay")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_builder_churn_flags() {
        let s = scenario_from(&parsed(
            "run --topology ring:6 --seed 3 --horizon 40000 --churn-rate 800",
        ))
        .unwrap();
        assert!(!s.membership.is_inert());
        let s = scenario_from(&parsed(
            "run --topology ring:6 --churn-plan join:2:5000,leave:4:20000",
        ))
        .unwrap();
        assert_eq!(s.membership.events().len(), 2);
        assert!(
            scenario_from(&parsed("run --churn-rate 500 --churn-plan join:2:100")).is_err(),
            "seeded churn and an explicit plan are mutually exclusive"
        );
        assert!(scenario_from(&parsed("run --churn-rate 0")).is_err());
        assert!(scenario_from(&parsed("run --churn-plan evict:2:100")).is_err());
        assert!(
            scenario_from(&parsed("run --topology ring:4 --churn-plan join:9:100")).is_err(),
            "plan must fit the population"
        );
    }

    #[test]
    fn run_command_with_churn_executes() {
        let p = parsed(
            "run --topology ring:6 --sessions 3 --horizon 60000 --oracle perfect \
             --churn-rate 4000",
        );
        cmd_run(&p).unwrap();
        let p = parsed(
            "run --topology ring:5 --sessions 3 --horizon 60000 --oracle perfect \
             --churn-plan join:2:5000,crash-leave:4:20000",
        );
        cmd_run(&p).unwrap();
    }

    #[test]
    fn churn_requires_algorithm1() {
        let p = parsed("run --topology ring:4 --algorithm naive --churn-rate 800 --horizon 5000");
        assert!(cmd_run(&p).is_err());
    }

    #[test]
    fn replay_distinguishes_missing_from_empty_directory() {
        let missing = cmd_replay(&parsed("replay --dir /nonexistent-ekbd"))
            .unwrap_err()
            .to_string();
        assert!(missing.contains("no such path"), "got: {missing}");
        let dir = std::env::temp_dir().join(format!("ekbd-cli-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let empty = cmd_replay(&parsed(&format!("replay --dir {}", dir.display())))
            .unwrap_err()
            .to_string();
        assert!(empty.contains("holds none"), "got: {empty}");
        assert_ne!(missing, empty, "the two failure modes read differently");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_command_with_timeline() {
        let p = parsed("run --topology ring:4 --sessions 3 --horizon 20000 --timeline 2000");
        cmd_run(&p).unwrap();
    }

    #[test]
    fn stabilize_command_executes_each_protocol() {
        for proto in ["coloring", "mis", "leader", "bfs-tree"] {
            let p = parsed(&format!(
                "stabilize --topology ring:4 --horizon 60000 --protocol {proto} --faults 2"
            ));
            cmd_stabilize(&p).unwrap();
        }
        let p = parsed(
            "stabilize --topology ring:4 --horizon 60000 --protocol token-ring:6 --faults 1",
        );
        cmd_stabilize(&p).unwrap();
    }

    #[test]
    fn bad_flags_surface_errors() {
        assert!(cmd_run(&parsed("run --topology blob:2")).is_err());
        assert!(cmd_run(&parsed("run --timeline soon")).is_err());
        assert!(cmd_stabilize(&parsed("stabilize --protocol sorting")).is_err());
        assert!(cmd_run(&parsed("run --engine turbo")).is_err());
        assert!(cmd_campaign(&parsed("campaign --seeds 0")).is_err());
        assert!(cmd_campaign(&parsed("campaign --seeds 2 --workers few")).is_err());
    }

    #[test]
    fn scale_tier_error_names_the_offending_flag() {
        // The packed tier must say *which* flag is incompatible and point
        // at the dense tier, not just blame --shards generically.
        let err = cmd_run(&parsed("run --topology ring:8 --shards 2 --crash 1:100"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--crash"), "got: {err}");
        assert!(err.contains("dense tier"), "got: {err}");
        let err = cmd_run(&parsed("run --topology ring:8 --shards 2 --journal on"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--journal"), "got: {err}");
    }

    #[test]
    fn engine_flag_selects_kernel() {
        let s = scenario_from(&parsed("run --topology ring:4")).unwrap();
        assert_eq!(s.engine, EngineKind::Indexed, "indexed is the default");
        let s = scenario_from(&parsed("run --topology ring:4 --engine legacy")).unwrap();
        assert_eq!(s.engine, EngineKind::Legacy);
        let p = parsed("run --topology ring:4 --sessions 2 --horizon 10000 --engine legacy");
        cmd_run(&p).unwrap();
    }

    #[test]
    fn campaign_command_executes_and_verifies() {
        let p = parsed(
            "campaign --topology ring:4 --seeds 3 --sessions 2 --horizon 10000 \
             --workers 2 --verify on",
        );
        cmd_campaign(&p).unwrap();
    }

    #[test]
    fn campaign_command_with_recovery_faults() {
        let p = parsed(
            "campaign --topology ring:5 --seeds 2 --sessions 2 --horizon 30000 \
             --oracle perfect --crash 2:300 --recover 2:2000 --workers auto",
        );
        cmd_campaign(&p).unwrap();
    }

    /// A small planted failure: one never-healing partition wedges the
    /// isolated process's ring neighbors (stalled), padded with noise so
    /// the shrinker has something to discard.
    fn planted_stall() -> ekbd_chaos::FaultSchedule {
        ekbd_chaos::FaultSchedule::new("ring-5", 11, Time(60_000))
            .event(ekbd_chaos::ChaosEvent::Noise(ekbd_chaos::ChannelNoise {
                loss: 0.02,
                dup: 0.0,
                reorder: 0.0,
                reorder_window: 0,
            }))
            .event(ekbd_chaos::ChaosEvent::Partition {
                side: vec![ProcessId(2)],
                start: Time(50),
                heal: Time(60_000),
            })
    }

    #[test]
    fn chaos_explore_small_campaign_is_wait_free() {
        let dir = std::env::temp_dir().join(format!("ekbd-chaos-cli-{}", std::process::id()));
        let p = parsed(&format!(
            "chaos --topology ring-5 --count 2 --seed 3 --intensity light --out {}",
            dir.display()
        ));
        cmd_chaos(&p).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_replay_checks_the_expected_class() {
        let dir = std::env::temp_dir().join(format!("ekbd-chaos-replay-{}", std::process::id()));
        let ok = dir.join("stall.chaos");
        let schedule = planted_stall().expecting(ekbd_chaos::RunClass::Stalled);
        ekbd_chaos::codec::write_artifact(&schedule, &ok).unwrap();
        cmd_chaos(&parsed(&format!("chaos --replay {}", ok.display()))).unwrap();
        // The same schedule tagged with the wrong class must fail loudly.
        let wrong = dir.join("wrong.chaos");
        let mistagged = planted_stall().expecting(ekbd_chaos::RunClass::ExclusionMistake);
        ekbd_chaos::codec::write_artifact(&mistagged, &wrong).unwrap();
        let err = cmd_chaos(&parsed(&format!("chaos --replay {}", wrong.display())))
            .unwrap_err()
            .to_string();
        assert!(err.contains("stalled"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_shrink_writes_a_minimal_artifact() {
        let dir = std::env::temp_dir().join(format!("ekbd-chaos-shrink-{}", std::process::id()));
        let big = dir.join("stall.chaos");
        ekbd_chaos::codec::write_artifact(&planted_stall(), &big).unwrap();
        let out = dir.join("minimal.chaos");
        cmd_chaos(&parsed(&format!(
            "chaos --shrink {} --out {}",
            big.display(),
            out.display()
        )))
        .unwrap();
        let small = ekbd_chaos::codec::read_artifact(&out).unwrap();
        assert_eq!(
            small.events.len(),
            1,
            "the noise padding must be shrunk away"
        );
        assert_eq!(small.expect, Some(ekbd_chaos::RunClass::Stalled));
        // The shrunk artifact replays to the same class.
        cmd_chaos(&parsed(&format!("chaos --replay {}", out.display()))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_flag_errors_surface() {
        assert!(cmd_chaos(&parsed("chaos --replay a --shrink b")).is_err());
        assert!(cmd_chaos(&parsed("chaos --replay /nonexistent-ekbd.chaos")).is_err());
        assert!(cmd_chaos(&parsed("chaos --count 0")).is_err());
        assert!(cmd_chaos(&parsed("chaos --intensity brutal")).is_err());
        assert!(cmd_chaos(&parsed("chaos --topology blob-2 --count 1")).is_err());
        // Shrinking a healthy schedule is a usage error, not a crash.
        let dir = std::env::temp_dir().join(format!("ekbd-chaos-healthy-{}", std::process::id()));
        let path = dir.join("healthy.chaos");
        let healthy = ekbd_chaos::FaultSchedule::new("ring-5", 1, Time(60_000));
        ekbd_chaos::codec::write_artifact(&healthy, &path).unwrap();
        let err = cmd_chaos(&parsed(&format!("chaos --shrink {}", path.display())))
            .unwrap_err()
            .to_string();
        assert!(err.contains("nothing to shrink"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
