//! Minimal `--flag value` argument parsing.

use std::collections::BTreeMap;
use std::fmt;

/// Errors from command-line parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not one of `run`, `stabilize`, `threaded`,
    /// `campaign`, `replay`, `chaos`, `serve`, `loadgen`.
    UnknownCommand(String),
    /// A flag was given without a value.
    MissingValue(String),
    /// A positional token appeared where a `--flag` was expected.
    UnexpectedToken(String),
    /// A value failed to parse.
    BadValue {
        /// The flag concerned.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => {
                write!(
                    f,
                    "missing subcommand (run | stabilize | threaded | campaign | replay | chaos | serve | loadgen)"
                )
            }
            ArgError::UnknownCommand(c) => write!(f, "unknown subcommand '{c}'"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected token '{t}'"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "bad value '{value}' for {flag}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line: the subcommand plus its `--flag value` pairs
/// (repeated flags accumulate, e.g. `--crash`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand.
    pub command: String,
    /// Flag → values, in the order given.
    pub flags: BTreeMap<String, Vec<String>>,
}

impl Parsed {
    /// Parses `args` (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Parsed, ArgError> {
        let mut it = args.into_iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if ![
            "run",
            "stabilize",
            "threaded",
            "campaign",
            "replay",
            "chaos",
            "serve",
            "loadgen",
        ]
        .contains(&command.as_str())
        {
            return Err(ArgError::UnknownCommand(command));
        }
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedToken(tok));
            };
            let value = it
                .next()
                .ok_or_else(|| ArgError::MissingValue(tok.clone()))?;
            flags.entry(name.to_string()).or_default().push(value);
        }
        Ok(Parsed { command, flags })
    }

    /// The last value of `flag`, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags
            .get(flag)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of `flag`.
    pub fn get_all(&self, flag: &str) -> &[String] {
        self.flags.get(flag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last value of `flag`, parsed, or `default`.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: format!("--{flag}"),
                value: v.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A `lo:hi` range flag, or `default`.
    pub fn get_range(&self, flag: &str, default: (u64, u64)) -> Result<(u64, u64), ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => {
                let bad = || ArgError::BadValue {
                    flag: format!("--{flag}"),
                    value: v.to_string(),
                    expected: "lo:hi",
                };
                let (lo, hi) = v.split_once(':').ok_or_else(bad)?;
                let lo = lo.parse().map_err(|_| bad())?;
                let hi = hi.parse().map_err(|_| bad())?;
                Ok((lo, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Parsed, ArgError> {
        Parsed::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse("run --topology ring:8 --seed 7 --crash 1:100 --crash 2:200").unwrap();
        assert_eq!(p.command, "run");
        assert_eq!(p.get("topology"), Some("ring:8"));
        assert_eq!(p.get("seed"), Some("7"));
        assert_eq!(
            p.get_all("crash"),
            &["1:100".to_string(), "2:200".to_string()]
        );
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert_eq!(parse(""), Err(ArgError::MissingCommand));
        assert!(matches!(parse("fly"), Err(ArgError::UnknownCommand(_))));
        assert!(matches!(
            parse("run --seed"),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            parse("run stray"),
            Err(ArgError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn typed_getters() {
        let p = parse("run --seed 9 --think 1:30").unwrap();
        assert_eq!(p.get_parsed("seed", 0u64).unwrap(), 9);
        assert_eq!(p.get_parsed("horizon", 5u64).unwrap(), 5, "default");
        assert_eq!(p.get_range("think", (0, 0)).unwrap(), (1, 30));
        assert_eq!(p.get_range("eat", (2, 4)).unwrap(), (2, 4), "default");
        let p = parse("run --seed nope").unwrap();
        assert!(p.get_parsed("seed", 0u64).is_err());
        let p = parse("run --think 1-30").unwrap();
        assert!(p.get_range("think", (0, 0)).is_err());
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingCommand.to_string().contains("subcommand"));
        let e = ArgError::BadValue {
            flag: "--x".into(),
            value: "y".into(),
            expected: "z",
        };
        assert!(e.to_string().contains("expected z"));
    }
}
