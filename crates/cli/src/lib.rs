//! Command-line front end for the EKBD workspace.
//!
//! The `ekbd` binary runs dining scenarios, daemon-scheduled stabilization
//! runs, and threaded-runtime demos from the shell:
//!
//! ```sh
//! ekbd run --topology ring:8 --oracle adversarial:2000:40 \
//!          --crash 2:1500 --sessions 30 --timeline 3000
//! ekbd stabilize --protocol coloring --topology grid:3x3 \
//!          --crash 4:1000 --faults 10
//! ekbd threaded --n 5 --window-ms 400 --crash 0
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! keeps external crates to the approved list; a CLI parser is not on
//! it), with the parsing logic in this library crate so it is unit
//! tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod spec;

pub use args::{ArgError, Parsed};
pub use spec::{AlgorithmSpec, OracleArg, ProtocolSpec, TopologySpec};
