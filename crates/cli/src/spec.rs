//! Textual specifications for topologies, oracles, algorithms, and
//! protocols, as used by the CLI flags.

use crate::args::ArgError;
use ekbd_detector::{HeartbeatConfig, ProbeConfig};
use ekbd_graph::{random, topology, ConflictGraph, ProcessId};
use ekbd_journal::StorageFault;
use ekbd_link::LinkConfig;
use ekbd_sim::{MembershipPlan, Time};

fn bad(flag: &'static str, value: &str, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value: value.to_string(),
        expected,
    }
}

/// A topology specification, e.g. `ring:8`, `grid:3x4`, `gnp:12:0.3:7`.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// `ring:n`
    Ring(usize),
    /// `path:n`
    Path(usize),
    /// `star:n`
    Star(usize),
    /// `clique:n`
    Clique(usize),
    /// `grid:RxC`
    Grid(usize, usize),
    /// `torus:RxC`
    Torus(usize, usize),
    /// `tree:n`
    Tree(usize),
    /// `wheel:n`
    Wheel(usize),
    /// `hypercube:d`
    Hypercube(u32),
    /// `gnp:n:p:seed` (connected variant)
    Gnp(usize, f64, u64),
    /// `powerlaw:n:m:seed` (Barabási–Albert preferential attachment)
    Powerlaw(usize, usize, u64),
}

/// Node count above which `gnp:` builds through the O(n + edges)
/// geometric-skip sampler instead of the O(n²) coin-flip walk. The two
/// samplers draw different RNG streams, so the threshold keeps every
/// paper-scale graph — and with it every golden trace — byte-identical
/// while making 10⁵-node specs tractable.
const SPARSE_GNP_THRESHOLD: usize = 2_048;

impl TopologySpec {
    /// Parses a topology spec string.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        const EXPECT: &str =
            "ring:n | path:n | star:n | clique:n | grid:RxC | torus:RxC | tree:n | wheel:n | hypercube:d | gnp:n:p:seed | powerlaw:n:m:seed";
        let err = || bad("--topology", s, EXPECT);
        let mut parts = s.split(':');
        let kind = parts.next().ok_or_else(err)?;
        let rest: Vec<&str> = parts.collect();
        let one = |rest: &[&str]| -> Result<usize, ArgError> {
            rest.first().ok_or_else(err)?.parse().map_err(|_| err())
        };
        let dims = |rest: &[&str]| -> Result<(usize, usize), ArgError> {
            let (a, b) = rest
                .first()
                .ok_or_else(err)?
                .split_once('x')
                .ok_or_else(err)?;
            Ok((a.parse().map_err(|_| err())?, b.parse().map_err(|_| err())?))
        };
        Ok(match kind {
            "ring" => TopologySpec::Ring(one(&rest)?),
            "path" => TopologySpec::Path(one(&rest)?),
            "star" => TopologySpec::Star(one(&rest)?),
            "clique" => TopologySpec::Clique(one(&rest)?),
            "tree" => TopologySpec::Tree(one(&rest)?),
            "wheel" => TopologySpec::Wheel(one(&rest)?),
            "hypercube" => TopologySpec::Hypercube(one(&rest)? as u32),
            "grid" => {
                let (r, c) = dims(&rest)?;
                TopologySpec::Grid(r, c)
            }
            "torus" => {
                let (r, c) = dims(&rest)?;
                TopologySpec::Torus(r, c)
            }
            "gnp" => {
                if rest.len() != 3 {
                    return Err(err());
                }
                TopologySpec::Gnp(
                    rest[0].parse().map_err(|_| err())?,
                    rest[1].parse().map_err(|_| err())?,
                    rest[2].parse().map_err(|_| err())?,
                )
            }
            "powerlaw" => {
                if rest.len() != 3 {
                    return Err(err());
                }
                let m: usize = rest[1].parse().map_err(|_| err())?;
                if m == 0 {
                    return Err(err());
                }
                TopologySpec::Powerlaw(
                    rest[0].parse().map_err(|_| err())?,
                    m,
                    rest[2].parse().map_err(|_| err())?,
                )
            }
            _ => return Err(err()),
        })
    }

    /// Builds the conflict graph.
    pub fn build(&self) -> ConflictGraph {
        match *self {
            TopologySpec::Ring(n) => topology::ring(n),
            TopologySpec::Path(n) => topology::path(n),
            TopologySpec::Star(n) => topology::star(n),
            TopologySpec::Clique(n) => topology::clique(n),
            TopologySpec::Grid(r, c) => topology::grid(r, c),
            TopologySpec::Torus(r, c) => topology::torus(r, c),
            TopologySpec::Tree(n) => topology::binary_tree(n),
            TopologySpec::Wheel(n) => topology::wheel(n),
            TopologySpec::Hypercube(d) => topology::hypercube(d),
            TopologySpec::Gnp(n, p, seed) if n <= SPARSE_GNP_THRESHOLD => {
                random::connected_gnp(n, p, seed)
            }
            TopologySpec::Gnp(n, p, seed) => random::sparse_gnp(n, p, seed),
            TopologySpec::Powerlaw(n, m, seed) => random::powerlaw(n, m, seed),
        }
    }
}

/// An oracle specification: `silent`, `perfect`,
/// `adversarial:<converge>:<burst>`, or
/// `heartbeat:<period>:<timeout>:<increment>`.
#[derive(Clone, Debug, PartialEq)]
pub enum OracleArg {
    /// Never suspects.
    Silent,
    /// Exact crash knowledge.
    Perfect,
    /// Scripted worst case.
    Adversarial {
        /// Convergence time.
        converge: Time,
        /// Burst length.
        burst: u64,
    },
    /// Real heartbeat implementation.
    Heartbeat(HeartbeatConfig),
    /// Real pull-based probe/echo implementation.
    Probe(ProbeConfig),
}

impl OracleArg {
    /// Parses an oracle spec string.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        const EXPECT: &str = "silent | perfect | adversarial:converge:burst | \
             heartbeat:period:timeout:increment | probe:period:timeout:increment";
        let err = || bad("--oracle", s, EXPECT);
        let parts: Vec<&str> = s.split(':').collect();
        Ok(match parts.as_slice() {
            ["silent"] => OracleArg::Silent,
            ["perfect"] => OracleArg::Perfect,
            ["adversarial", c, b] => OracleArg::Adversarial {
                converge: Time(c.parse().map_err(|_| err())?),
                burst: b.parse().map_err(|_| err())?,
            },
            ["heartbeat", p, t, i] => OracleArg::Heartbeat(HeartbeatConfig {
                period: p.parse().map_err(|_| err())?,
                initial_timeout: t.parse().map_err(|_| err())?,
                timeout_increment: i.parse().map_err(|_| err())?,
            }),
            ["probe", p, t, i] => OracleArg::Probe(ProbeConfig {
                period: p.parse().map_err(|_| err())?,
                initial_timeout: t.parse().map_err(|_| err())?,
                timeout_increment: i.parse().map_err(|_| err())?,
            }),
            _ => return Err(err()),
        })
    }
}

/// A dining-algorithm specification: `alg1`, `choy-singh`, `naive`, or
/// `budgeted:<m>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// The paper's Algorithm 1.
    Algorithm1,
    /// The crash-oblivious Choy–Singh baseline.
    ChoySingh,
    /// Naive priority dining (no doorway).
    Naive,
    /// Algorithm 1 with a generalized ack budget.
    Budgeted(u32),
}

impl AlgorithmSpec {
    /// Parses an algorithm spec string.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        const EXPECT: &str = "alg1 | choy-singh | naive | budgeted:m";
        let err = || bad("--algorithm", s, EXPECT);
        Ok(match s {
            "alg1" => AlgorithmSpec::Algorithm1,
            "choy-singh" => AlgorithmSpec::ChoySingh,
            "naive" => AlgorithmSpec::Naive,
            other => match other.split_once(':') {
                Some(("budgeted", m)) => AlgorithmSpec::Budgeted(m.parse().map_err(|_| err())?),
                _ => return Err(err()),
            },
        })
    }
}

/// A stabilizing-protocol specification: `coloring`, `coloring-adv`,
/// `mis`, `token-ring:<k>`, `bfs-tree`, `leader`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// (δ+1)-coloring with random faults.
    Coloring,
    /// (δ+1)-coloring with adversarial (conflict-creating) faults.
    ColoringAdversarial,
    /// Maximal independent set.
    Mis,
    /// Dijkstra's K-state ring.
    TokenRing(u32),
    /// BFS distances from p0.
    BfsTree,
    /// Max-id leader election.
    Leader,
}

impl ProtocolSpec {
    /// Parses a protocol spec string.
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        const EXPECT: &str = "coloring | coloring-adv | mis | token-ring:k | bfs-tree | leader";
        let err = || bad("--protocol", s, EXPECT);
        Ok(match s {
            "coloring" => ProtocolSpec::Coloring,
            "coloring-adv" => ProtocolSpec::ColoringAdversarial,
            "mis" => ProtocolSpec::Mis,
            "bfs-tree" => ProtocolSpec::BfsTree,
            "leader" => ProtocolSpec::Leader,
            other => match other.split_once(':') {
                Some(("token-ring", k)) => ProtocolSpec::TokenRing(k.parse().map_err(|_| err())?),
                _ => return Err(err()),
            },
        })
    }
}

/// Parses a `--reorder p:window` spec, e.g. `0.15:12`.
pub fn parse_reorder(s: &str) -> Result<(f64, u64), ArgError> {
    let err = || bad("--reorder", s, "probability:window (e.g. 0.15:12)");
    let (p, w) = s.split_once(':').ok_or_else(err)?;
    Ok((p.parse().map_err(|_| err())?, w.parse().map_err(|_| err())?))
}

/// Parses a `--partition procs:start-heal` spec, e.g. `0,1:500-3000`:
/// processes 0 and 1 are cut off from the rest between ticks 500 and 3000.
pub fn parse_partition(s: &str) -> Result<(Vec<ProcessId>, Time, Time), ArgError> {
    let err = || bad("--partition", s, "procs:start-heal (e.g. 0,1:500-3000)");
    let (procs, window) = s.split_once(':').ok_or_else(err)?;
    let side: Vec<ProcessId> = procs
        .split(',')
        .map(|p| p.parse::<usize>().map(ProcessId::from).map_err(|_| err()))
        .collect::<Result<_, _>>()?;
    let (start, heal) = window.split_once('-').ok_or_else(err)?;
    let start = Time(start.parse().map_err(|_| err())?);
    let heal = Time(heal.parse().map_err(|_| err())?);
    if side.is_empty() || start >= heal {
        return Err(err());
    }
    Ok((side, start, heal))
}

/// Parses a `--link on|base:cap` spec: `on` for the default retransmission
/// tuning, or an explicit `retransmit_base:max_backoff_exp` pair.
pub fn parse_link(s: &str) -> Result<LinkConfig, ArgError> {
    let err = || bad("--link", s, "on | retransmit_base:max_backoff_exp");
    if s == "on" {
        return Ok(LinkConfig::default());
    }
    let (base, cap) = s.split_once(':').ok_or_else(err)?;
    Ok(LinkConfig::default()
        .retransmit_base(base.parse().map_err(|_| err())?)
        .max_backoff_exp(cap.parse().map_err(|_| err())?))
}

/// Parses a `process:time` crash spec.
pub fn parse_crash(s: &str) -> Result<(ProcessId, Time), ArgError> {
    let err = || bad("--crash", s, "process:time");
    let (p, t) = s.split_once(':').ok_or_else(err)?;
    Ok((
        ProcessId::from(p.parse::<usize>().map_err(|_| err())?),
        Time(t.parse().map_err(|_| err())?),
    ))
}

/// Parses a `--recover process:time[:corrupt]` spec: restart a crashed
/// process at `time` with blank state, or (with the `corrupt` suffix) with
/// adversarially scrambled state.
pub fn parse_recover(s: &str) -> Result<(ProcessId, Time, bool), ArgError> {
    let err = || bad("--recover", s, "process:time[:corrupt]");
    let mut parts = s.split(':');
    let p = parts.next().ok_or_else(err)?;
    let t = parts.next().ok_or_else(err)?;
    let corrupt = match parts.next() {
        None => false,
        Some("corrupt") => true,
        Some(_) => return Err(err()),
    };
    if parts.next().is_some() {
        return Err(err());
    }
    Ok((
        ProcessId::from(p.parse::<usize>().map_err(|_| err())?),
        Time(t.parse().map_err(|_| err())?),
        corrupt,
    ))
}

/// Parses a `--corrupt-state process:time` spec: flip fork/token/request
/// bits of a live process mid-run.
pub fn parse_corrupt_state(s: &str) -> Result<(ProcessId, Time), ArgError> {
    let err = || bad("--corrupt-state", s, "process:time");
    let (p, t) = s.split_once(':').ok_or_else(err)?;
    Ok((
        ProcessId::from(p.parse::<usize>().map_err(|_| err())?),
        Time(t.parse().map_err(|_| err())?),
    ))
}

/// Parses a `--churn-plan` membership schedule: comma-separated events,
/// each `join:p:t` (the initially-absent `p` joins at `t`), `leave:p:t`
/// (graceful departure), `crash-leave:p:t` (crash-stop departure), or
/// `replace:old:new:t` (`old` crash-stops and the fresh id `new` joins in
/// its place). Population fit is validated against the scenario later.
pub fn parse_churn_plan(s: &str) -> Result<MembershipPlan, ArgError> {
    let err = || {
        bad(
            "--churn-plan",
            s,
            "comma-separated membership events: join:p:t | leave:p:t | \
             crash-leave:p:t | replace:old:new:t",
        )
    };
    let pid = |f: &str| f.parse::<usize>().map(ProcessId::from).map_err(|_| err());
    let time = |f: &str| f.parse::<u64>().map(Time).map_err(|_| err());
    let mut plan = MembershipPlan::new();
    for ev in s.split(',') {
        let fields: Vec<&str> = ev.split(':').collect();
        plan = match fields.as_slice() {
            ["join", p, t] => plan.join(pid(p)?, time(t)?),
            ["leave", p, t] => plan.leave(pid(p)?, time(t)?),
            ["crash-leave", p, t] => plan.crash_leave(pid(p)?, time(t)?),
            ["replace", old, new, t] => plan.replace(pid(old)?, pid(new)?, time(t)?),
            _ => return Err(err()),
        };
    }
    if plan.is_inert() {
        return Err(err());
    }
    Ok(plan)
}

/// Parses a `--storage-fault process:mode` spec: corrupt the named
/// process's stable-storage journal at load time.
pub fn parse_storage_fault(s: &str) -> Result<(ProcessId, StorageFault), ArgError> {
    let err = || bad("--storage-fault", s, "process:torn|rot|stale|dropped");
    let (p, mode) = s.split_once(':').ok_or_else(err)?;
    let mode = match mode {
        "torn" => StorageFault::TornWrite,
        "rot" => StorageFault::BitRot,
        "stale" => StorageFault::StaleSnapshot,
        "dropped" => StorageFault::DroppedSync,
        _ => return Err(err()),
    };
    Ok((
        ProcessId::from(p.parse::<usize>().map_err(|_| err())?),
        mode,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_round_trip() {
        assert_eq!(TopologySpec::parse("ring:8"), Ok(TopologySpec::Ring(8)));
        assert_eq!(
            TopologySpec::parse("grid:3x4"),
            Ok(TopologySpec::Grid(3, 4))
        );
        assert_eq!(
            TopologySpec::parse("gnp:12:0.3:7"),
            Ok(TopologySpec::Gnp(12, 0.3, 7))
        );
        assert_eq!(
            TopologySpec::parse("hypercube:3"),
            Ok(TopologySpec::Hypercube(3))
        );
        assert!(TopologySpec::parse("blob:3").is_err());
        assert!(TopologySpec::parse("grid:3").is_err());
        assert_eq!(TopologySpec::parse("torus:3x4").unwrap().build().len(), 12);
        assert_eq!(TopologySpec::parse("wheel:6").unwrap().build().len(), 6);
        assert_eq!(
            TopologySpec::parse("tree:7").unwrap().build().edge_count(),
            6
        );
        assert_eq!(
            TopologySpec::parse("path:5").unwrap().build().edge_count(),
            4
        );
        assert_eq!(
            TopologySpec::parse("star:5").unwrap().build().max_degree(),
            4
        );
        assert_eq!(
            TopologySpec::parse("clique:4")
                .unwrap()
                .build()
                .edge_count(),
            6
        );
        assert!(TopologySpec::parse("gnp:12:0.3:7")
            .unwrap()
            .build()
            .is_connected());
        assert_eq!(
            TopologySpec::parse("powerlaw:100:2:5"),
            Ok(TopologySpec::Powerlaw(100, 2, 5))
        );
        let pl = TopologySpec::parse("powerlaw:100:2:5").unwrap().build();
        assert_eq!(pl.len(), 100);
        assert!(pl.is_connected());
        assert!(TopologySpec::parse("powerlaw:100:0:5").is_err());
        assert!(TopologySpec::parse("powerlaw:100:2").is_err());
    }

    #[test]
    fn gnp_spec_keeps_the_legacy_sampler_at_paper_scale() {
        // The golden traces pin the small-graph RNG stream: below the
        // sparse threshold the spec must keep building via connected_gnp.
        let spec = TopologySpec::parse("gnp:60:0.08:3").unwrap();
        let direct = random::connected_gnp(60, 0.08, 3);
        assert_eq!(spec.build().edges(), direct.edges());
    }

    #[test]
    fn oracle_specs() {
        assert_eq!(OracleArg::parse("silent"), Ok(OracleArg::Silent));
        assert_eq!(OracleArg::parse("perfect"), Ok(OracleArg::Perfect));
        assert_eq!(
            OracleArg::parse("adversarial:2000:40"),
            Ok(OracleArg::Adversarial {
                converge: Time(2000),
                burst: 40
            })
        );
        assert!(matches!(
            OracleArg::parse("heartbeat:10:50:25"),
            Ok(OracleArg::Heartbeat(_))
        ));
        assert!(matches!(
            OracleArg::parse("probe:10:50:25"),
            Ok(OracleArg::Probe(_))
        ));
        assert!(OracleArg::parse("psychic").is_err());
        assert!(OracleArg::parse("adversarial:2000").is_err());
    }

    #[test]
    fn algorithm_specs() {
        assert_eq!(AlgorithmSpec::parse("alg1"), Ok(AlgorithmSpec::Algorithm1));
        assert_eq!(
            AlgorithmSpec::parse("choy-singh"),
            Ok(AlgorithmSpec::ChoySingh)
        );
        assert_eq!(AlgorithmSpec::parse("naive"), Ok(AlgorithmSpec::Naive));
        assert_eq!(
            AlgorithmSpec::parse("budgeted:3"),
            Ok(AlgorithmSpec::Budgeted(3))
        );
        assert!(AlgorithmSpec::parse("budgeted:x").is_err());
        assert!(AlgorithmSpec::parse("dijkstra").is_err());
    }

    #[test]
    fn protocol_specs() {
        assert_eq!(ProtocolSpec::parse("coloring"), Ok(ProtocolSpec::Coloring));
        assert_eq!(
            ProtocolSpec::parse("coloring-adv"),
            Ok(ProtocolSpec::ColoringAdversarial)
        );
        assert_eq!(
            ProtocolSpec::parse("token-ring:7"),
            Ok(ProtocolSpec::TokenRing(7))
        );
        assert_eq!(ProtocolSpec::parse("bfs-tree"), Ok(ProtocolSpec::BfsTree));
        assert_eq!(ProtocolSpec::parse("leader"), Ok(ProtocolSpec::Leader));
        assert!(ProtocolSpec::parse("sorting").is_err());
    }

    #[test]
    fn crash_spec() {
        assert_eq!(parse_crash("2:1500"), Ok((ProcessId(2), Time(1500))));
        assert!(parse_crash("2").is_err());
        assert!(parse_crash("x:1").is_err());
    }

    #[test]
    fn recovery_specs() {
        assert_eq!(
            parse_recover("2:1500"),
            Ok((ProcessId(2), Time(1500), false))
        );
        assert_eq!(
            parse_recover("2:1500:corrupt"),
            Ok((ProcessId(2), Time(1500), true))
        );
        assert!(parse_recover("2:1500:blank").is_err());
        assert!(parse_recover("2:1500:corrupt:x").is_err());
        assert!(parse_recover("2").is_err());
        assert_eq!(parse_corrupt_state("3:900"), Ok((ProcessId(3), Time(900))));
        assert!(parse_corrupt_state("3").is_err());
    }

    #[test]
    fn fault_specs() {
        assert_eq!(parse_reorder("0.15:12"), Ok((0.15, 12)));
        assert!(parse_reorder("0.15").is_err());
        assert_eq!(
            parse_partition("0,1:500-3000"),
            Ok((vec![ProcessId(0), ProcessId(1)], Time(500), Time(3000)))
        );
        assert!(
            parse_partition("0,1:3000-500").is_err(),
            "must heal after start"
        );
        assert!(parse_partition(":500-3000").is_err());
        assert!(parse_partition("0:500").is_err());
    }

    #[test]
    fn link_specs() {
        assert_eq!(parse_link("on"), Ok(LinkConfig::default()));
        assert_eq!(
            parse_link("32:4"),
            Ok(LinkConfig::default().retransmit_base(32).max_backoff_exp(4))
        );
        assert!(parse_link("soon").is_err());
    }
    #[test]
    fn churn_plan_specs() {
        let plan = parse_churn_plan("join:2:500,leave:1:700,crash-leave:3:900").unwrap();
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.join_time(ProcessId(2)), Some(Time(500)));
        assert_eq!(plan.departure_time(ProcessId(1)), Some(Time(700)));
        let plan = parse_churn_plan("replace:0:4:1200").unwrap();
        assert_eq!(plan.departure_time(ProcessId(0)), Some(Time(1200)));
        assert_eq!(plan.join_time(ProcessId(4)), Some(Time(1200)));
        assert!(parse_churn_plan("").is_err(), "an inert plan is an error");
        assert!(parse_churn_plan("join:2").is_err());
        assert!(parse_churn_plan("evict:2:500").is_err());
        assert!(parse_churn_plan("join:two:500").is_err());
    }
}
