use ekbd_sim::{Duration, ProcessId, Time};
use std::collections::BTreeSet;

/// Wire messages exchanged by failure-detector modules.
///
/// Only the heartbeat implementation actually sends anything; oracles are
/// silent. Keeping the type shared lets host processes multiplex detector
/// traffic next to application traffic with a single envelope enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorMsg {
    /// "I am alive" — periodic push heartbeat.
    Heartbeat,
    /// "Are you alive?" — pull-based liveness query.
    Probe,
    /// "Yes" — the answer to a [`DetectorMsg::Probe`].
    Echo,
}

/// Inputs to a [`DetectorModule`], delivered by the host process.
#[derive(Clone, Copy, Debug)]
pub enum DetectorEvent {
    /// Delivered once before anything else.
    Start {
        /// Current time.
        now: Time,
    },
    /// A detector timer (set through [`DetectorOutput::timers`]) fired.
    Timer {
        /// Current time.
        now: Time,
        /// The tag given when the timer was set.
        tag: u64,
    },
    /// A detector message arrived.
    Message {
        /// Current time.
        now: Time,
        /// The sender.
        from: ProcessId,
        /// The payload.
        msg: DetectorMsg,
    },
}

/// Effects requested by a [`DetectorModule`] in response to an event.
#[derive(Debug, Default)]
pub struct DetectorOutput {
    /// Messages to send.
    pub sends: Vec<(ProcessId, DetectorMsg)>,
    /// Timers to set, as `(delay, tag)`; redelivered as
    /// [`DetectorEvent::Timer`].
    pub timers: Vec<(Duration, u64)>,
    /// Whether the suspect set changed while handling this event. Hosts use
    /// this to re-evaluate guards that mention the detector (Actions 5 and 9
    /// of Algorithm 1 are guarded on `j ∈ ◇P₁`).
    pub changed: bool,
}

impl DetectorOutput {
    /// An output with no effects.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A read-only view of a suspect set, as consumed by the dining layer.
///
/// Algorithm 1 queries its local ◇P₁ module in the guards of Actions 5
/// (enter the doorway) and 9 (eat); this trait is exactly that query.
pub trait SuspicionView {
    /// Whether `q` is currently suspected.
    fn suspects(&self, q: ProcessId) -> bool;
}

impl SuspicionView for BTreeSet<ProcessId> {
    fn suspects(&self, q: ProcessId) -> bool {
        self.contains(&q)
    }
}

/// A failure-detector module: a pure state machine hosted inside a process.
///
/// The host forwards [`DetectorEvent`]s, applies the requested
/// [`DetectorOutput`] effects, and consults [`DetectorModule::suspects`]
/// whenever the application layer evaluates an oracle-guarded action.
pub trait DetectorModule: SuspicionView {
    /// Handles one event, accumulating effects into `out`.
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput);

    /// Snapshot of the current suspect set (sorted).
    fn suspect_set(&self) -> BTreeSet<ProcessId>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btreeset_is_a_suspicion_view() {
        let mut s = BTreeSet::new();
        s.insert(ProcessId(3));
        assert!(s.suspects(ProcessId(3)));
        assert!(!s.suspects(ProcessId(1)));
    }

    #[test]
    fn default_output_is_empty() {
        let out = DetectorOutput::new();
        assert!(out.sends.is_empty());
        assert!(out.timers.is_empty());
        assert!(!out.changed);
    }
}
