use ekbd_sim::{Duration, ProcessId, Time};
use std::collections::BTreeSet;

/// Wire messages exchanged by failure-detector modules.
///
/// Only the heartbeat implementation actually sends anything; oracles are
/// silent. Keeping the type shared lets host processes multiplex detector
/// traffic next to application traffic with a single envelope enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorMsg {
    /// "I am alive" — periodic push heartbeat.
    Heartbeat,
    /// "Are you alive?" — pull-based liveness query.
    Probe,
    /// "Yes" — the answer to a [`DetectorMsg::Probe`].
    Echo,
    /// "I am back" — broadcast by a process restarting after a crash
    /// (crash-recovery fault model), stamped with its new incarnation
    /// epoch. Receivers withdraw their (correct!) suspicion of the sender,
    /// but only if the epoch is newer than any previously refuted one, so a
    /// late copy from an older incarnation cannot mask a later crash.
    Alive {
        /// The sender's incarnation epoch.
        epoch: u64,
    },
}

/// Inputs to a [`DetectorModule`], delivered by the host process.
#[derive(Clone, Copy, Debug)]
pub enum DetectorEvent {
    /// Delivered once before anything else.
    Start {
        /// Current time.
        now: Time,
    },
    /// A detector timer (set through [`DetectorOutput::timers`]) fired.
    Timer {
        /// Current time.
        now: Time,
        /// The tag given when the timer was set.
        tag: u64,
    },
    /// A detector message arrived.
    Message {
        /// Current time.
        now: Time,
        /// The sender.
        from: ProcessId,
        /// The payload.
        msg: DetectorMsg,
    },
    /// This process itself restarted after a crash with a new incarnation
    /// epoch. The module resets its volatile monitoring state and
    /// announces the restart ([`DetectorMsg::Alive`]) so neighbors can
    /// refute their suspicion of it.
    Recovered {
        /// Current time.
        now: Time,
        /// This process's new incarnation epoch.
        epoch: u64,
    },
}

/// Effects requested by a [`DetectorModule`] in response to an event.
#[derive(Debug, Default)]
pub struct DetectorOutput {
    /// Messages to send.
    pub sends: Vec<(ProcessId, DetectorMsg)>,
    /// Timers to set, as `(delay, tag)`; redelivered as
    /// [`DetectorEvent::Timer`].
    pub timers: Vec<(Duration, u64)>,
    /// Whether the suspect set changed while handling this event. Hosts use
    /// this to re-evaluate guards that mention the detector (Actions 5 and 9
    /// of Algorithm 1 are guarded on `j ∈ ◇P₁`).
    pub changed: bool,
}

impl DetectorOutput {
    /// An output with no effects.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stamps a detector timer tag with an incarnation epoch.
///
/// Periodic detectors re-arm their timer from the timer handler, which means
/// a timer chain armed before a crash would keep firing into the recovered
/// incarnation and drive suspicion checks against a grace period that no
/// longer exists. Stamping the epoch into the tag (and accepting only
/// current-epoch tags) kills the stale chain at its first post-restart
/// firing.
///
/// The epoch is masked to 30 bits so the stamped tag stays far below the
/// host (`1 << 40`) and link (`1 << 41`) tag namespaces; `base` occupies the
/// low byte.
pub fn epoch_timer_tag(base: u64, epoch: u64) -> u64 {
    debug_assert!(base < 0x100, "detector base tags live in the low byte");
    base | ((epoch & 0x3FFF_FFFF) << 8)
}

/// A read-only view of a suspect set, as consumed by the dining layer.
///
/// Algorithm 1 queries its local ◇P₁ module in the guards of Actions 5
/// (enter the doorway) and 9 (eat); this trait is exactly that query.
pub trait SuspicionView {
    /// Whether `q` is currently suspected.
    fn suspects(&self, q: ProcessId) -> bool;
}

impl SuspicionView for BTreeSet<ProcessId> {
    fn suspects(&self, q: ProcessId) -> bool {
        self.contains(&q)
    }
}

/// A failure-detector module: a pure state machine hosted inside a process.
///
/// The host forwards [`DetectorEvent`]s, applies the requested
/// [`DetectorOutput`] effects, and consults [`DetectorModule::suspects`]
/// whenever the application layer evaluates an oracle-guarded action.
pub trait DetectorModule: SuspicionView {
    /// Handles one event, accumulating effects into `out`.
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput);

    /// Snapshot of the current suspect set (sorted).
    fn suspect_set(&self) -> BTreeSet<ProcessId>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btreeset_is_a_suspicion_view() {
        let mut s = BTreeSet::new();
        s.insert(ProcessId(3));
        assert!(s.suspects(ProcessId(3)));
        assert!(!s.suspects(ProcessId(1)));
    }

    #[test]
    fn default_output_is_empty() {
        let out = DetectorOutput::new();
        assert!(out.sends.is_empty());
        assert!(out.timers.is_empty());
        assert!(!out.changed);
    }

    #[test]
    fn epoch_tags_are_distinct_per_epoch_and_below_host_namespace() {
        let t0 = epoch_timer_tag(1, 0);
        let t1 = epoch_timer_tag(1, 1);
        let t2 = epoch_timer_tag(2, 1);
        assert_eq!(t0, 1);
        assert_ne!(t0, t1);
        assert_ne!(t1, t2);
        // Even an absurd epoch stays out of the host/link tag namespaces.
        assert!(epoch_timer_tag(2, u64::MAX) < (1 << 40));
    }
}
