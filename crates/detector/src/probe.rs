use crate::module::{
    epoch_timer_tag, DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, SuspicionView,
};
use ekbd_sim::{Duration, ProcessId, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the [`ProbeDetector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    /// How often probes are sent and timeouts checked.
    pub period: Duration,
    /// Initial per-neighbor round-trip timeout.
    pub initial_timeout: Duration,
    /// Timeout growth after each false suspicion.
    pub timeout_increment: Duration,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            period: 10,
            initial_timeout: 40,
            timeout_increment: 25,
        }
    }
}

/// A *pull-based* ◇P₁: periodic probe/echo round trips with adaptive
/// timeouts (the Chen–Toueg style alternative to push heartbeats).
///
/// Every `period` the module probes each monitored neighbor; a live
/// neighbor echoes immediately. A neighbor whose last echo is older than
/// its timeout is suspected; an echo from a suspected neighbor withdraws
/// the suspicion (a false positive) and grows that neighbor's timeout.
///
/// Compared to [`HeartbeatDetector`](crate::HeartbeatDetector):
///
/// * twice the messages (probe + echo per round trip) — but monitoring is
///   *demand-driven*: only processes that monitor cause traffic;
/// * the adaptive timeout covers a full round trip (2Δ after GST), so
///   detection latency and the false-positive/latency trade-off sit at
///   roughly twice the one-way figures. Experiment E11 compares both.
///
/// The ◇P₁ argument mirrors the heartbeat case: a crashed neighbor never
/// echoes again (completeness), and after GST round trips are bounded by
/// `period + 2Δ`, so finitely many timeout bumps end the false positives
/// (eventual accuracy).
///
/// Crash-recovery handling mirrors the heartbeat detector: a restart of
/// *this* process ([`DetectorEvent::Recovered`]) rebuilds the volatile
/// monitoring state under a fresh grace period, broadcasts
/// [`DetectorMsg::Alive`], and moves the probe timer chain to an
/// epoch-stamped tag; an `Alive` from a restarted *neighbor* refutes the
/// correct suspicion of its dead incarnation without a false-positive count
/// or timeout growth, gated on the epoch being newer than any already
/// honored.
#[derive(Clone, Debug)]
pub struct ProbeDetector {
    cfg: ProbeConfig,
    neighbors: Vec<ProcessId>,
    last_echo: BTreeMap<ProcessId, Time>,
    timeout: BTreeMap<ProcessId, Duration>,
    suspects: BTreeSet<ProcessId>,
    false_positives: u64,
    /// This process's incarnation epoch (0 until the first recovery).
    epoch: u64,
    /// Highest neighbor epoch whose `Alive` we have already honored.
    refuted: BTreeMap<ProcessId, u64>,
}

/// The single timer tag used by the probe detector.
const PROBE_TIMER_TAG: u64 = 2;

impl ProbeDetector {
    /// Creates a detector monitoring `neighbors`.
    pub fn new(cfg: ProbeConfig, neighbors: impl IntoIterator<Item = ProcessId>) -> Self {
        let neighbors: Vec<ProcessId> = neighbors.into_iter().collect();
        let timeout = neighbors
            .iter()
            .map(|&q| (q, cfg.initial_timeout.max(1)))
            .collect();
        ProbeDetector {
            cfg,
            neighbors,
            last_echo: BTreeMap::new(),
            timeout,
            suspects: BTreeSet::new(),
            false_positives: 0,
            epoch: 0,
            refuted: BTreeMap::new(),
        }
    }

    /// Withdrawn suspicions so far.
    pub fn total_false_positives(&self) -> u64 {
        self.false_positives
    }

    fn probe_round(&mut self, now: Time, out: &mut DetectorOutput) {
        for &q in &self.neighbors {
            out.sends.push((q, DetectorMsg::Probe));
            let heard = self.last_echo.get(&q).copied().unwrap_or(Time::ZERO);
            if now.since(heard) > self.timeout[&q] && self.suspects.insert(q) {
                out.changed = true;
            }
        }
        out.timers.push((
            self.cfg.period.max(1),
            epoch_timer_tag(PROBE_TIMER_TAG, self.epoch),
        ));
    }
}

impl SuspicionView for ProbeDetector {
    fn suspects(&self, q: ProcessId) -> bool {
        self.suspects.contains(&q)
    }
}

impl DetectorModule for ProbeDetector {
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput) {
        match ev {
            DetectorEvent::Start { now } => {
                for &q in &self.neighbors.clone() {
                    self.last_echo.insert(q, now); // start-up grace
                }
                // First round goes out immediately; no timeout checks yet.
                for &q in &self.neighbors {
                    out.sends.push((q, DetectorMsg::Probe));
                }
                out.timers.push((
                    self.cfg.period.max(1),
                    epoch_timer_tag(PROBE_TIMER_TAG, self.epoch),
                ));
            }
            DetectorEvent::Timer { now, tag }
                if tag == epoch_timer_tag(PROBE_TIMER_TAG, self.epoch) =>
            {
                self.probe_round(now, out)
            }
            // Foreign tags and timer chains armed by a previous incarnation.
            DetectorEvent::Timer { .. } => {}
            DetectorEvent::Message {
                from,
                msg: DetectorMsg::Probe,
                ..
            } => {
                // Answer on the monitored side, whatever detector we are.
                out.sends.push((from, DetectorMsg::Echo));
            }
            DetectorEvent::Message {
                now,
                from,
                msg: DetectorMsg::Echo,
            } => {
                self.last_echo.insert(from, now);
                if self.suspects.remove(&from) {
                    out.changed = true;
                    self.false_positives += 1;
                    if let Some(t) = self.timeout.get_mut(&from) {
                        *t = t.saturating_add(self.cfg.timeout_increment);
                    }
                }
            }
            DetectorEvent::Message {
                msg: DetectorMsg::Heartbeat,
                ..
            } => {} // push traffic from a foreign detector: ignore
            DetectorEvent::Message {
                now,
                from,
                msg: DetectorMsg::Alive { epoch },
            } => {
                // Epoch-gated refutation of a correct suspicion; see the
                // heartbeat detector for the full rationale.
                if epoch > self.refuted.get(&from).copied().unwrap_or(0) {
                    self.refuted.insert(from, epoch);
                    self.last_echo.insert(from, now);
                    if self.suspects.remove(&from) {
                        out.changed = true;
                    }
                }
            }
            DetectorEvent::Recovered { now, epoch } => {
                self.epoch = epoch;
                if !self.suspects.is_empty() {
                    self.suspects.clear();
                    out.changed = true;
                }
                self.refuted.clear();
                for &q in &self.neighbors.clone() {
                    self.last_echo.insert(q, now);
                    self.timeout.insert(q, self.cfg.initial_timeout.max(1));
                    out.sends.push((q, DetectorMsg::Alive { epoch }));
                }
                // Fresh probe round under the new-epoch timer chain; the
                // grace period just set keeps it from suspecting anyone.
                self.probe_round(now, out);
            }
        }
    }

    fn suspect_set(&self) -> BTreeSet<ProcessId> {
        self.suspects.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn cfg() -> ProbeConfig {
        ProbeConfig {
            period: 10,
            initial_timeout: 25,
            timeout_increment: 15,
        }
    }

    #[test]
    fn start_probes_everyone() {
        let mut d = ProbeDetector::new(cfg(), [p(1), p(2)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        assert_eq!(
            out.sends,
            vec![(p(1), DetectorMsg::Probe), (p(2), DetectorMsg::Probe)]
        );
        assert_eq!(out.timers, vec![(10, PROBE_TIMER_TAG)]);
    }

    #[test]
    fn probes_are_echoed() {
        let mut d = ProbeDetector::new(cfg(), [p(1)]);
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(5),
                from: p(1),
                msg: DetectorMsg::Probe,
            },
            &mut out,
        );
        assert_eq!(out.sends, vec![(p(1), DetectorMsg::Echo)]);
    }

    #[test]
    fn silence_is_suspected_echo_withdraws_and_adapts() {
        let mut d = ProbeDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: PROBE_TIMER_TAG,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(d.suspects(p(1)));
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(31),
                from: p(1),
                msg: DetectorMsg::Echo,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(!d.suspects(p(1)));
        assert_eq!(d.total_false_positives(), 1);
    }

    #[test]
    fn crashed_neighbor_stays_suspected_forever() {
        let mut d = ProbeDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        for t in (10..400).step_by(10) {
            d.handle(
                DetectorEvent::Timer {
                    now: Time(t),
                    tag: PROBE_TIMER_TAG,
                },
                &mut DetectorOutput::new(),
            );
        }
        assert!(d.suspects(p(1)));
        assert_eq!(d.total_false_positives(), 0);
    }

    #[test]
    fn alive_refutes_without_false_positive_and_recovery_moves_the_timer() {
        let mut d = ProbeDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: PROBE_TIMER_TAG,
            },
            &mut DetectorOutput::new(),
        );
        assert!(d.suspects(p(1)));

        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(40),
                from: p(1),
                msg: DetectorMsg::Alive { epoch: 1 },
            },
            &mut out,
        );
        assert!(out.changed && !d.suspects(p(1)));
        assert_eq!(d.total_false_positives(), 0);

        // Recovery of this process: Alive broadcast + epoch-stamped timer.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Recovered {
                now: Time(50),
                epoch: 2,
            },
            &mut out,
        );
        let new_tag = epoch_timer_tag(PROBE_TIMER_TAG, 2);
        assert!(out.sends.contains(&(p(1), DetectorMsg::Alive { epoch: 2 })));
        assert_eq!(out.timers, vec![(10, new_tag)]);
        // Old-epoch chain is dead; new-epoch chain probes.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(55),
                tag: PROBE_TIMER_TAG,
            },
            &mut out,
        );
        assert!(out.sends.is_empty() && out.timers.is_empty());
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(60),
                tag: new_tag,
            },
            &mut out,
        );
        assert_eq!(out.sends, vec![(p(1), DetectorMsg::Probe)]);
        assert!(d.suspect_set().is_empty(), "grace covers the silence");
    }

    #[test]
    fn foreign_heartbeats_are_ignored() {
        let mut d = ProbeDetector::new(cfg(), [p(1)]);
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(5),
                from: p(1),
                msg: DetectorMsg::Heartbeat,
            },
            &mut out,
        );
        assert!(out.sends.is_empty() && !out.changed);
    }
}
