use crate::module::{
    epoch_timer_tag, DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, SuspicionView,
};
use ekbd_sim::{Duration, ProcessId, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the [`HeartbeatDetector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often heartbeats are sent and timeouts checked.
    pub period: Duration,
    /// Initial per-neighbor timeout.
    pub initial_timeout: Duration,
    /// How much a neighbor's timeout grows after each false suspicion.
    pub timeout_increment: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: 10,
            initial_timeout: 30,
            timeout_increment: 20,
        }
    }
}

/// The classic heartbeat + adaptive-timeout implementation of ◇P₁
/// (Chandra & Toueg 1996; Dwork–Lynch–Stockmeyer partial synchrony).
///
/// Every `period` ticks the module sends [`DetectorMsg::Heartbeat`] to each
/// monitored neighbor and suspects any neighbor not heard from within its
/// current timeout. When a heartbeat arrives from a suspected neighbor the
/// suspicion is withdrawn — a false positive — and that neighbor's timeout
/// is increased by `timeout_increment`.
///
/// Why this is ◇P₁ under the simulator's GST delay model:
///
/// * **Local strong completeness.** A crashed neighbor sends no further
///   heartbeats, so its silence gap grows without bound, it gets suspected,
///   and — since no heartbeat can ever withdraw the suspicion — remains
///   suspected permanently.
/// * **Local eventual strong accuracy.** After GST every delay is ≤ Δ, so
///   consecutive heartbeats from a correct neighbor arrive at most
///   `period + Δ` apart. Each false suspicion grows the timeout by a fixed
///   increment, so after finitely many mistakes the timeout exceeds
///   `period + Δ` and no correct neighbor is ever suspected again.
///
/// Under the crash-*recovery* fault model the module additionally handles
/// restarts on both sides of the monitoring relation:
///
/// * When *this* process restarts ([`DetectorEvent::Recovered`]), its
///   volatile monitoring state is rebuilt with a fresh grace period and it
///   broadcasts [`DetectorMsg::Alive`] stamped with the new incarnation
///   epoch. The periodic timer tag is epoch-stamped, so the pre-crash timer
///   chain is dead on arrival in the new incarnation.
/// * When a monitored *neighbor* restarts, its `Alive { epoch }` refutes the
///   (correct!) suspicion of the crashed incarnation — without counting a
///   false positive or growing the adaptive timeout, since the suspicion was
///   never a mistake. Refutation epochs are remembered per neighbor so a
///   late duplicate from an old incarnation cannot mask a newer crash.
#[derive(Clone, Debug)]
pub struct HeartbeatDetector {
    cfg: HeartbeatConfig,
    neighbors: Vec<ProcessId>,
    last_heard: BTreeMap<ProcessId, Time>,
    timeout: BTreeMap<ProcessId, Duration>,
    suspects: BTreeSet<ProcessId>,
    /// Count of withdrawn suspicions (false positives), per neighbor.
    false_positives: BTreeMap<ProcessId, u64>,
    /// This process's incarnation epoch (0 until the first recovery).
    epoch: u64,
    /// Highest neighbor epoch whose `Alive` we have already honored.
    refuted: BTreeMap<ProcessId, u64>,
}

/// The single timer tag used by the heartbeat detector.
const HB_TIMER_TAG: u64 = 1;

impl HeartbeatDetector {
    /// Creates a detector monitoring `neighbors`.
    pub fn new(cfg: HeartbeatConfig, neighbors: impl IntoIterator<Item = ProcessId>) -> Self {
        let neighbors: Vec<ProcessId> = neighbors.into_iter().collect();
        let timeout = neighbors
            .iter()
            .map(|&q| (q, cfg.initial_timeout.max(1)))
            .collect();
        HeartbeatDetector {
            cfg,
            neighbors,
            last_heard: BTreeMap::new(),
            timeout,
            suspects: BTreeSet::new(),
            false_positives: BTreeMap::new(),
            epoch: 0,
            refuted: BTreeMap::new(),
        }
    }

    /// Total false positives (suspicions later withdrawn) so far.
    pub fn total_false_positives(&self) -> u64 {
        self.false_positives.values().sum()
    }

    /// The current timeout for `q`, if monitored.
    pub fn timeout_of(&self, q: ProcessId) -> Option<Duration> {
        self.timeout.get(&q).copied()
    }

    fn beat(&mut self, out: &mut DetectorOutput) {
        for &q in &self.neighbors {
            out.sends.push((q, DetectorMsg::Heartbeat));
        }
        out.timers.push((
            self.cfg.period.max(1),
            epoch_timer_tag(HB_TIMER_TAG, self.epoch),
        ));
    }

    fn check(&mut self, now: Time, out: &mut DetectorOutput) {
        for &q in &self.neighbors {
            let heard = self.last_heard.get(&q).copied().unwrap_or(Time::ZERO);
            let quiet = now.since(heard);
            if quiet > self.timeout[&q] && self.suspects.insert(q) {
                out.changed = true;
            }
        }
    }
}

impl SuspicionView for HeartbeatDetector {
    fn suspects(&self, q: ProcessId) -> bool {
        self.suspects.contains(&q)
    }
}

impl DetectorModule for HeartbeatDetector {
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput) {
        match ev {
            DetectorEvent::Start { now } => {
                // Grace period: treat everyone as heard-from at start.
                for &q in &self.neighbors.clone() {
                    self.last_heard.insert(q, now);
                }
                self.beat(out);
            }
            DetectorEvent::Timer { now, tag }
                if tag == epoch_timer_tag(HB_TIMER_TAG, self.epoch) =>
            {
                self.beat(out);
                self.check(now, out);
            }
            // Foreign tags and timer chains armed by a previous incarnation.
            DetectorEvent::Timer { .. } => {}
            DetectorEvent::Message {
                from,
                msg: DetectorMsg::Probe,
                ..
            } => {
                // A pull-based peer is asking: answer so mixed deployments
                // stay safe.
                out.sends.push((from, DetectorMsg::Echo));
            }
            DetectorEvent::Message {
                now,
                from,
                msg: DetectorMsg::Heartbeat | DetectorMsg::Echo,
            } => {
                self.last_heard.insert(from, now);
                if self.suspects.remove(&from) {
                    // False positive: withdraw and adapt.
                    out.changed = true;
                    *self.false_positives.entry(from).or_insert(0) += 1;
                    if let Some(t) = self.timeout.get_mut(&from) {
                        *t = t.saturating_add(self.cfg.timeout_increment);
                    }
                }
            }
            DetectorEvent::Message {
                now,
                from,
                msg: DetectorMsg::Alive { epoch },
            } => {
                // Epoch-stamped refutation: the neighbor restarted. The
                // suspicion of its crashed incarnation was *correct*, so
                // withdrawing it is neither a false positive nor a reason to
                // grow the adaptive timeout. Stale copies (epoch already
                // honored) are ignored so they cannot mask a newer crash.
                if epoch > self.refuted.get(&from).copied().unwrap_or(0) {
                    self.refuted.insert(from, epoch);
                    self.last_heard.insert(from, now);
                    if self.suspects.remove(&from) {
                        out.changed = true;
                    }
                }
            }
            DetectorEvent::Recovered { now, epoch } => {
                // This process restarted: volatile monitoring state is gone.
                // Rebuild with a fresh grace period, announce the new
                // incarnation, and restart the (epoch-stamped) beat chain.
                self.epoch = epoch;
                if !self.suspects.is_empty() {
                    self.suspects.clear();
                    out.changed = true;
                }
                self.refuted.clear();
                for &q in &self.neighbors.clone() {
                    self.last_heard.insert(q, now);
                    self.timeout.insert(q, self.cfg.initial_timeout.max(1));
                    out.sends.push((q, DetectorMsg::Alive { epoch }));
                }
                self.beat(out);
            }
        }
    }

    fn suspect_set(&self) -> BTreeSet<ProcessId> {
        self.suspects.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn cfg() -> HeartbeatConfig {
        HeartbeatConfig {
            period: 10,
            initial_timeout: 25,
            timeout_increment: 15,
        }
    }

    #[test]
    fn start_sends_heartbeats_and_sets_timer() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1), p(2)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        assert_eq!(
            out.sends,
            vec![
                (p(1), DetectorMsg::Heartbeat),
                (p(2), DetectorMsg::Heartbeat)
            ]
        );
        assert_eq!(out.timers, vec![(10, HB_TIMER_TAG)]);
        assert!(!out.changed);
    }

    #[test]
    fn silence_leads_to_suspicion() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        // Quiet gap of 30 > timeout 25 → suspect.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: HB_TIMER_TAG,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(d.suspects(p(1)));
    }

    #[test]
    fn heartbeat_withdraws_suspicion_and_adapts_timeout() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: HB_TIMER_TAG,
            },
            &mut DetectorOutput::new(),
        );
        assert!(d.suspects(p(1)));
        assert_eq!(d.timeout_of(p(1)), Some(25));

        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(31),
                from: p(1),
                msg: DetectorMsg::Heartbeat,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(!d.suspects(p(1)));
        assert_eq!(d.timeout_of(p(1)), Some(40), "timeout grew by increment");
        assert_eq!(d.total_false_positives(), 1);
    }

    #[test]
    fn crashed_neighbor_stays_suspected() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        for t in (10..500).step_by(10) {
            d.handle(
                DetectorEvent::Timer {
                    now: Time(t),
                    tag: HB_TIMER_TAG,
                },
                &mut DetectorOutput::new(),
            );
        }
        assert!(d.suspects(p(1)));
        assert_eq!(d.total_false_positives(), 0, "never withdrawn");
    }

    #[test]
    fn regular_heartbeats_prevent_suspicion() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        for t in (5..300).step_by(10) {
            d.handle(
                DetectorEvent::Message {
                    now: Time(t),
                    from: p(1),
                    msg: DetectorMsg::Heartbeat,
                },
                &mut DetectorOutput::new(),
            );
            d.handle(
                DetectorEvent::Timer {
                    now: Time(t + 5),
                    tag: HB_TIMER_TAG,
                },
                &mut DetectorOutput::new(),
            );
        }
        assert!(d.suspect_set().is_empty());
    }

    #[test]
    fn timeout_growth_eventually_tolerates_any_fixed_gap() {
        // Simulate a neighbor whose heartbeats arrive every 60 ticks while
        // the timeout starts at 25: suspicion flaps at first, then the
        // adaptive timeout exceeds 60 and accuracy holds thereafter.
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        let mut last_fp_at = None;
        for t in 1..2_000u64 {
            if t % 10 == 0 {
                d.handle(
                    DetectorEvent::Timer {
                        now: Time(t),
                        tag: HB_TIMER_TAG,
                    },
                    &mut DetectorOutput::new(),
                );
            }
            if t % 60 == 0 {
                let before = d.total_false_positives();
                d.handle(
                    DetectorEvent::Message {
                        now: Time(t),
                        from: p(1),
                        msg: DetectorMsg::Heartbeat,
                    },
                    &mut DetectorOutput::new(),
                );
                if d.total_false_positives() > before {
                    last_fp_at = Some(t);
                }
            }
        }
        let fp = d.total_false_positives();
        assert!(fp >= 1, "initial timeout is too small, flaps expected");
        assert!(fp <= 4, "adaptation must stop the flapping, saw {fp}");
        assert!(d.timeout_of(p(1)).unwrap() > 60);
        assert!(last_fp_at.unwrap() < 500, "accuracy holds in the suffix");
        assert!(!d.suspects(p(1)));
    }

    #[test]
    fn alive_refutes_suspicion_without_counting_a_false_positive() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: HB_TIMER_TAG,
            },
            &mut DetectorOutput::new(),
        );
        assert!(d.suspects(p(1)), "crashed neighbor is suspected");

        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(40),
                from: p(1),
                msg: DetectorMsg::Alive { epoch: 1 },
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(!d.suspects(p(1)), "refutation withdraws the suspicion");
        assert_eq!(d.total_false_positives(), 0, "it was a correct suspicion");
        assert_eq!(d.timeout_of(p(1)), Some(25), "no adaptive growth either");
    }

    #[test]
    fn stale_alive_cannot_mask_a_newer_crash() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        // First crash/recover cycle: Alive{1} honored.
        d.handle(
            DetectorEvent::Message {
                now: Time(10),
                from: p(1),
                msg: DetectorMsg::Alive { epoch: 1 },
            },
            &mut DetectorOutput::new(),
        );
        // Second crash: suspicion re-established by silence.
        d.handle(
            DetectorEvent::Timer {
                now: Time(100),
                tag: HB_TIMER_TAG,
            },
            &mut DetectorOutput::new(),
        );
        assert!(d.suspects(p(1)));
        // A late duplicate of the old incarnation's Alive must not refute.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(101),
                from: p(1),
                msg: DetectorMsg::Alive { epoch: 1 },
            },
            &mut out,
        );
        assert!(!out.changed);
        assert!(d.suspects(p(1)), "stale epoch is ignored");
        // The genuinely newer incarnation does refute.
        d.handle(
            DetectorEvent::Message {
                now: Time(102),
                from: p(1),
                msg: DetectorMsg::Alive { epoch: 2 },
            },
            &mut DetectorOutput::new(),
        );
        assert!(!d.suspects(p(1)));
    }

    #[test]
    fn recovery_resets_state_broadcasts_alive_and_rearms_epoch_timer() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1), p(2)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: HB_TIMER_TAG,
            },
            &mut DetectorOutput::new(),
        );
        assert!(d.suspects(p(1)) && d.suspects(p(2)));

        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Recovered {
                now: Time(50),
                epoch: 1,
            },
            &mut out,
        );
        assert!(out.changed, "pre-crash suspicions were dropped");
        assert!(d.suspect_set().is_empty(), "fresh grace period");
        assert!(out
            .sends
            .iter()
            .any(|&(q, m)| q == p(1) && m == DetectorMsg::Alive { epoch: 1 }));
        assert!(out
            .sends
            .iter()
            .any(|&(q, m)| q == p(2) && m == DetectorMsg::Heartbeat));
        let new_tag = epoch_timer_tag(HB_TIMER_TAG, 1);
        assert_eq!(out.timers, vec![(10, new_tag)]);

        // The pre-crash timer chain is dead: its epoch-0 tag is ignored.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(51),
                tag: HB_TIMER_TAG,
            },
            &mut out,
        );
        assert!(out.sends.is_empty() && out.timers.is_empty() && !out.changed);

        // The new-epoch chain beats and checks as usual.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(60),
                tag: new_tag,
            },
            &mut out,
        );
        assert!(!out.sends.is_empty() && out.timers == vec![(10, new_tag)]);
        assert!(d.suspect_set().is_empty(), "grace still covers the silence");
    }
}
