use crate::module::{DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, SuspicionView};
use ekbd_sim::{Duration, ProcessId, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the [`HeartbeatDetector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often heartbeats are sent and timeouts checked.
    pub period: Duration,
    /// Initial per-neighbor timeout.
    pub initial_timeout: Duration,
    /// How much a neighbor's timeout grows after each false suspicion.
    pub timeout_increment: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: 10,
            initial_timeout: 30,
            timeout_increment: 20,
        }
    }
}

/// The classic heartbeat + adaptive-timeout implementation of ◇P₁
/// (Chandra & Toueg 1996; Dwork–Lynch–Stockmeyer partial synchrony).
///
/// Every `period` ticks the module sends [`DetectorMsg::Heartbeat`] to each
/// monitored neighbor and suspects any neighbor not heard from within its
/// current timeout. When a heartbeat arrives from a suspected neighbor the
/// suspicion is withdrawn — a false positive — and that neighbor's timeout
/// is increased by `timeout_increment`.
///
/// Why this is ◇P₁ under the simulator's GST delay model:
///
/// * **Local strong completeness.** A crashed neighbor sends no further
///   heartbeats, so its silence gap grows without bound, it gets suspected,
///   and — since no heartbeat can ever withdraw the suspicion — remains
///   suspected permanently.
/// * **Local eventual strong accuracy.** After GST every delay is ≤ Δ, so
///   consecutive heartbeats from a correct neighbor arrive at most
///   `period + Δ` apart. Each false suspicion grows the timeout by a fixed
///   increment, so after finitely many mistakes the timeout exceeds
///   `period + Δ` and no correct neighbor is ever suspected again.
#[derive(Clone, Debug)]
pub struct HeartbeatDetector {
    cfg: HeartbeatConfig,
    neighbors: Vec<ProcessId>,
    last_heard: BTreeMap<ProcessId, Time>,
    timeout: BTreeMap<ProcessId, Duration>,
    suspects: BTreeSet<ProcessId>,
    /// Count of withdrawn suspicions (false positives), per neighbor.
    false_positives: BTreeMap<ProcessId, u64>,
}

/// The single timer tag used by the heartbeat detector.
const HB_TIMER_TAG: u64 = 1;

impl HeartbeatDetector {
    /// Creates a detector monitoring `neighbors`.
    pub fn new(cfg: HeartbeatConfig, neighbors: impl IntoIterator<Item = ProcessId>) -> Self {
        let neighbors: Vec<ProcessId> = neighbors.into_iter().collect();
        let timeout = neighbors
            .iter()
            .map(|&q| (q, cfg.initial_timeout.max(1)))
            .collect();
        HeartbeatDetector {
            cfg,
            neighbors,
            last_heard: BTreeMap::new(),
            timeout,
            suspects: BTreeSet::new(),
            false_positives: BTreeMap::new(),
        }
    }

    /// Total false positives (suspicions later withdrawn) so far.
    pub fn total_false_positives(&self) -> u64 {
        self.false_positives.values().sum()
    }

    /// The current timeout for `q`, if monitored.
    pub fn timeout_of(&self, q: ProcessId) -> Option<Duration> {
        self.timeout.get(&q).copied()
    }

    fn beat(&mut self, out: &mut DetectorOutput) {
        for &q in &self.neighbors {
            out.sends.push((q, DetectorMsg::Heartbeat));
        }
        out.timers.push((self.cfg.period.max(1), HB_TIMER_TAG));
    }

    fn check(&mut self, now: Time, out: &mut DetectorOutput) {
        for &q in &self.neighbors {
            let heard = self.last_heard.get(&q).copied().unwrap_or(Time::ZERO);
            let quiet = now.since(heard);
            if quiet > self.timeout[&q] && self.suspects.insert(q) {
                out.changed = true;
            }
        }
    }
}

impl SuspicionView for HeartbeatDetector {
    fn suspects(&self, q: ProcessId) -> bool {
        self.suspects.contains(&q)
    }
}

impl DetectorModule for HeartbeatDetector {
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput) {
        match ev {
            DetectorEvent::Start { now } => {
                // Grace period: treat everyone as heard-from at start.
                for &q in &self.neighbors.clone() {
                    self.last_heard.insert(q, now);
                }
                self.beat(out);
            }
            DetectorEvent::Timer {
                now,
                tag: HB_TIMER_TAG,
            } => {
                self.beat(out);
                self.check(now, out);
            }
            DetectorEvent::Timer { .. } => {}
            DetectorEvent::Message {
                from,
                msg: DetectorMsg::Probe,
                ..
            } => {
                // A pull-based peer is asking: answer so mixed deployments
                // stay safe.
                out.sends.push((from, DetectorMsg::Echo));
            }
            DetectorEvent::Message {
                now,
                from,
                msg: DetectorMsg::Heartbeat | DetectorMsg::Echo,
            } => {
                self.last_heard.insert(from, now);
                if self.suspects.remove(&from) {
                    // False positive: withdraw and adapt.
                    out.changed = true;
                    *self.false_positives.entry(from).or_insert(0) += 1;
                    if let Some(t) = self.timeout.get_mut(&from) {
                        *t = t.saturating_add(self.cfg.timeout_increment);
                    }
                }
            }
        }
    }

    fn suspect_set(&self) -> BTreeSet<ProcessId> {
        self.suspects.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn cfg() -> HeartbeatConfig {
        HeartbeatConfig {
            period: 10,
            initial_timeout: 25,
            timeout_increment: 15,
        }
    }

    #[test]
    fn start_sends_heartbeats_and_sets_timer() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1), p(2)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        assert_eq!(
            out.sends,
            vec![
                (p(1), DetectorMsg::Heartbeat),
                (p(2), DetectorMsg::Heartbeat)
            ]
        );
        assert_eq!(out.timers, vec![(10, HB_TIMER_TAG)]);
        assert!(!out.changed);
    }

    #[test]
    fn silence_leads_to_suspicion() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        // Quiet gap of 30 > timeout 25 → suspect.
        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: HB_TIMER_TAG,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(d.suspects(p(1)));
    }

    #[test]
    fn heartbeat_withdraws_suspicion_and_adapts_timeout() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        let mut out = DetectorOutput::new();
        d.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        d.handle(
            DetectorEvent::Timer {
                now: Time(30),
                tag: HB_TIMER_TAG,
            },
            &mut DetectorOutput::new(),
        );
        assert!(d.suspects(p(1)));
        assert_eq!(d.timeout_of(p(1)), Some(25));

        let mut out = DetectorOutput::new();
        d.handle(
            DetectorEvent::Message {
                now: Time(31),
                from: p(1),
                msg: DetectorMsg::Heartbeat,
            },
            &mut out,
        );
        assert!(out.changed);
        assert!(!d.suspects(p(1)));
        assert_eq!(d.timeout_of(p(1)), Some(40), "timeout grew by increment");
        assert_eq!(d.total_false_positives(), 1);
    }

    #[test]
    fn crashed_neighbor_stays_suspected() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        for t in (10..500).step_by(10) {
            d.handle(
                DetectorEvent::Timer {
                    now: Time(t),
                    tag: HB_TIMER_TAG,
                },
                &mut DetectorOutput::new(),
            );
        }
        assert!(d.suspects(p(1)));
        assert_eq!(d.total_false_positives(), 0, "never withdrawn");
    }

    #[test]
    fn regular_heartbeats_prevent_suspicion() {
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        for t in (5..300).step_by(10) {
            d.handle(
                DetectorEvent::Message {
                    now: Time(t),
                    from: p(1),
                    msg: DetectorMsg::Heartbeat,
                },
                &mut DetectorOutput::new(),
            );
            d.handle(
                DetectorEvent::Timer {
                    now: Time(t + 5),
                    tag: HB_TIMER_TAG,
                },
                &mut DetectorOutput::new(),
            );
        }
        assert!(d.suspect_set().is_empty());
    }

    #[test]
    fn timeout_growth_eventually_tolerates_any_fixed_gap() {
        // Simulate a neighbor whose heartbeats arrive every 60 ticks while
        // the timeout starts at 25: suspicion flaps at first, then the
        // adaptive timeout exceeds 60 and accuracy holds thereafter.
        let mut d = HeartbeatDetector::new(cfg(), [p(1)]);
        d.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        let mut last_fp_at = None;
        for t in 1..2_000u64 {
            if t % 10 == 0 {
                d.handle(
                    DetectorEvent::Timer {
                        now: Time(t),
                        tag: HB_TIMER_TAG,
                    },
                    &mut DetectorOutput::new(),
                );
            }
            if t % 60 == 0 {
                let before = d.total_false_positives();
                d.handle(
                    DetectorEvent::Message {
                        now: Time(t),
                        from: p(1),
                        msg: DetectorMsg::Heartbeat,
                    },
                    &mut DetectorOutput::new(),
                );
                if d.total_false_positives() > before {
                    last_fp_at = Some(t);
                }
            }
        }
        let fp = d.total_false_positives();
        assert!(fp >= 1, "initial timeout is too small, flaps expected");
        assert!(fp <= 4, "adaptation must stop the flapping, saw {fp}");
        assert!(d.timeout_of(p(1)).unwrap() > 60);
        assert!(last_fp_at.unwrap() < 500, "accuracy holds in the suffix");
        assert!(!d.suspects(p(1)));
    }
}
