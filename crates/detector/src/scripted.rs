use crate::module::{DetectorEvent, DetectorModule, DetectorOutput, SuspicionView};
use ekbd_sim::{ProcessId, Time};
use std::collections::BTreeSet;

/// One step of a suspicion script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspicionChange {
    /// When the change takes effect.
    pub at: Time,
    /// The process whose suspicion status changes.
    pub target: ProcessId,
    /// `true` to start suspecting, `false` to stop.
    pub suspect: bool,
}

/// A deterministic oracle replaying a fixed suspicion history.
///
/// A scripted oracle is the adversary's tool: tests hand it worst-case
/// pre-convergence behaviour — mutual false suspicions between correct
/// neighbors, arbitrarily late convergence — and the algorithm must still
/// deliver all its properties. As long as the script (a) eventually and
/// permanently suspects all crashed neighbors and (b) stops suspecting
/// correct neighbors after some point, it is a legal ◇P₁ history.
///
/// The oracle asks its host for a timer at every script transition, so the
/// host can re-evaluate oracle-guarded actions exactly when the suspect set
/// changes.
#[derive(Clone, Debug)]
pub struct ScriptedOracle {
    script: Vec<SuspicionChange>,
    applied: usize,
    now: Time,
    suspects: BTreeSet<ProcessId>,
}

/// Detector timers use this tag; hosts namespace detector tags separately
/// from their own, so the concrete value only needs to be stable.
const SCRIPT_TIMER_TAG: u64 = 0;

impl ScriptedOracle {
    /// Creates an oracle from a script. Changes are sorted by time; equal
    /// times apply in the order given.
    pub fn new(mut script: Vec<SuspicionChange>) -> Self {
        script.sort_by_key(|c| c.at);
        ScriptedOracle {
            script,
            applied: 0,
            now: Time::ZERO,
            suspects: BTreeSet::new(),
        }
    }

    /// An oracle that never suspects anyone (a legal ◇P₁ history in runs
    /// where no monitored neighbor crashes).
    pub fn silent() -> Self {
        Self::new(Vec::new())
    }

    /// The *perfect* detector `P` for a known crash schedule: suspects
    /// exactly the crashed neighbors, each exactly from its crash time,
    /// forever. Zero false positives, zero detection latency.
    pub fn perfect(crashes: impl IntoIterator<Item = (ProcessId, Time)>) -> Self {
        Self::new(
            crashes
                .into_iter()
                .map(|(target, at)| SuspicionChange {
                    at,
                    target,
                    suspect: true,
                })
                .collect(),
        )
    }

    /// The *perfect* detector for a crash-recovery schedule: suspects each
    /// crashed neighbor exactly from its crash time and withdraws the
    /// suspicion exactly when that neighbor restarts (its first recovery
    /// scheduled at or after the crash). Crashes with no later recovery
    /// stay suspected forever, as in [`ScriptedOracle::perfect`].
    pub fn perfect_with_recoveries(
        crashes: impl IntoIterator<Item = (ProcessId, Time)>,
        recoveries: impl IntoIterator<Item = (ProcessId, Time)>,
    ) -> Self {
        let recoveries: Vec<(ProcessId, Time)> = recoveries.into_iter().collect();
        let mut script = Vec::new();
        for (target, at) in crashes {
            script.push(SuspicionChange {
                at,
                target,
                suspect: true,
            });
            if let Some(back) = recoveries
                .iter()
                .filter(|&&(q, rt)| q == target && rt >= at)
                .map(|&(_, rt)| rt)
                .min()
            {
                script.push(SuspicionChange {
                    at: back,
                    target,
                    suspect: false,
                });
            }
        }
        Self::new(script)
    }

    /// A worst-case-but-legal ◇P₁ history: falsely suspect every process in
    /// `neighbors` during `[0, converge_at)` in alternating on/off bursts of
    /// `burst` ticks, then converge (suspect exactly the crashed from their
    /// crash times, or immediately if they crashed before `converge_at`).
    pub fn adversarial(
        neighbors: &[ProcessId],
        converge_at: Time,
        burst: u64,
        crashes: &[(ProcessId, Time)],
    ) -> Self {
        let mut script = Vec::new();
        let burst = burst.max(1);
        for &q in neighbors {
            let mut t = Time::ZERO;
            let mut on = true;
            while t < converge_at {
                script.push(SuspicionChange {
                    at: t,
                    target: q,
                    suspect: on,
                });
                on = !on;
                t += burst;
            }
            // At convergence, clear any lingering false suspicion…
            script.push(SuspicionChange {
                at: converge_at,
                target: q,
                suspect: false,
            });
        }
        // …then (re)establish permanent suspicion of the actually crashed.
        for &(q, at) in crashes {
            script.push(SuspicionChange {
                at: at.max(converge_at),
                target: q,
                suspect: true,
            });
        }
        Self::new(script)
    }

    /// Advances the oracle's clock, applying due script entries. Returns
    /// whether the suspect set changed.
    fn advance(&mut self, now: Time) -> bool {
        self.now = self.now.max(now);
        let mut changed = false;
        while self.applied < self.script.len() && self.script[self.applied].at <= self.now {
            let c = self.script[self.applied];
            self.applied += 1;
            let did = if c.suspect {
                self.suspects.insert(c.target)
            } else {
                self.suspects.remove(&c.target)
            };
            changed |= did;
        }
        changed
    }

    /// Requests a wake-up timer for the next pending script entry, if any.
    fn request_next_wakeup(&self, now: Time, out: &mut DetectorOutput) {
        if let Some(next) = self.script.get(self.applied) {
            let delay = next.at.since(now).max(1);
            out.timers.push((delay, SCRIPT_TIMER_TAG));
        }
    }
}

impl SuspicionView for ScriptedOracle {
    fn suspects(&self, q: ProcessId) -> bool {
        self.suspects.contains(&q)
    }
}

impl DetectorModule for ScriptedOracle {
    fn handle(&mut self, ev: DetectorEvent, out: &mut DetectorOutput) {
        match ev {
            DetectorEvent::Start { now } | DetectorEvent::Timer { now, .. } => {
                out.changed |= self.advance(now);
                self.request_next_wakeup(now, out);
            }
            DetectorEvent::Message { now, .. } => {
                // Oracles ignore network traffic but still track time.
                out.changed |= self.advance(now);
            }
            DetectorEvent::Recovered { now, .. } => {
                // The script already encodes everything the oracle "knows";
                // a restart of the host process only needs a fresh wake-up
                // chain (the pre-crash one died with the crash).
                out.changed |= self.advance(now);
                self.request_next_wakeup(now, out);
            }
        }
    }

    fn suspect_set(&self) -> BTreeSet<ProcessId> {
        self.suspects.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    fn drive_to(oracle: &mut ScriptedOracle, t: u64) -> DetectorOutput {
        let mut out = DetectorOutput::new();
        oracle.handle(
            DetectorEvent::Timer {
                now: Time(t),
                tag: 0,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn replays_script_in_time_order() {
        let mut o = ScriptedOracle::new(vec![
            SuspicionChange {
                at: Time(10),
                target: p(1),
                suspect: true,
            },
            SuspicionChange {
                at: Time(5),
                target: p(2),
                suspect: true,
            },
            SuspicionChange {
                at: Time(20),
                target: p(1),
                suspect: false,
            },
        ]);
        let mut out = DetectorOutput::new();
        o.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        assert!(!out.changed);
        assert_eq!(out.timers.len(), 1, "wakeup for the first change");

        let out = drive_to(&mut o, 5);
        assert!(out.changed);
        assert!(o.suspects(p(2)) && !o.suspects(p(1)));

        let out = drive_to(&mut o, 15);
        assert!(out.changed);
        assert!(o.suspects(p(1)));

        let out = drive_to(&mut o, 25);
        assert!(out.changed);
        assert!(!o.suspects(p(1)));
        assert!(o.suspects(p(2)));
        assert_eq!(o.suspect_set(), BTreeSet::from([p(2)]));
    }

    #[test]
    fn silent_oracle_never_suspects() {
        let mut o = ScriptedOracle::silent();
        let out = drive_to(&mut o, 1_000_000);
        assert!(!out.changed);
        assert!(o.suspect_set().is_empty());
    }

    #[test]
    fn perfect_oracle_tracks_crashes_exactly() {
        let mut o = ScriptedOracle::perfect([(p(3), Time(50)), (p(1), Time(10))]);
        drive_to(&mut o, 9);
        assert!(o.suspect_set().is_empty());
        drive_to(&mut o, 10);
        assert_eq!(o.suspect_set(), BTreeSet::from([p(1)]));
        drive_to(&mut o, 100);
        assert_eq!(o.suspect_set(), BTreeSet::from([p(1), p(3)]));
    }

    #[test]
    fn perfect_with_recoveries_opens_and_closes_suspicion_windows() {
        // p1 crashes at 10, recovers at 40, crashes again at 70 (for good);
        // p2 crashes at 20 and never comes back.
        let mut o = ScriptedOracle::perfect_with_recoveries(
            [(p(1), Time(10)), (p(2), Time(20)), (p(1), Time(70))],
            [(p(1), Time(40))],
        );
        drive_to(&mut o, 9);
        assert!(o.suspect_set().is_empty());
        drive_to(&mut o, 15);
        assert_eq!(o.suspect_set(), BTreeSet::from([p(1)]));
        drive_to(&mut o, 25);
        assert_eq!(o.suspect_set(), BTreeSet::from([p(1), p(2)]));
        drive_to(&mut o, 45);
        assert_eq!(o.suspect_set(), BTreeSet::from([p(2)]), "p1 readmitted");
        drive_to(&mut o, 200);
        assert_eq!(
            o.suspect_set(),
            BTreeSet::from([p(1), p(2)]),
            "second crash of p1 has no recovery: suspected forever"
        );
    }

    #[test]
    fn recovered_event_rearms_the_wakeup_chain() {
        let mut o = ScriptedOracle::new(vec![SuspicionChange {
            at: Time(50),
            target: p(1),
            suspect: true,
        }]);
        o.handle(
            DetectorEvent::Start { now: Time::ZERO },
            &mut DetectorOutput::new(),
        );
        // Host restarts at 20; the oracle must request a fresh wake-up so
        // the pending change at 50 is still observed.
        let mut out = DetectorOutput::new();
        o.handle(
            DetectorEvent::Recovered {
                now: Time(20),
                epoch: 1,
            },
            &mut out,
        );
        assert_eq!(out.timers, vec![(30, 0)]);
    }

    #[test]
    fn redundant_changes_do_not_report_changed() {
        let mut o = ScriptedOracle::new(vec![SuspicionChange {
            at: Time(5),
            target: p(1),
            suspect: false, // already unsuspected
        }]);
        let out = drive_to(&mut o, 6);
        assert!(!out.changed);
    }

    #[test]
    fn adversarial_is_a_legal_diamond_p_history() {
        let neighbors = [p(1), p(2)];
        let crashes = [(p(2), Time(30))];
        let mut o = ScriptedOracle::adversarial(&neighbors, Time(100), 7, &crashes);
        // Pre-convergence: suspicion flaps.
        let mut ever_suspected_p1 = false;
        for t in 0..100 {
            drive_to(&mut o, t);
            ever_suspected_p1 |= o.suspects(p(1));
        }
        assert!(ever_suspected_p1, "false positives expected before GST");
        // Post-convergence: exactly the crashed are suspected, permanently.
        for t in 100..200 {
            drive_to(&mut o, t);
            assert_eq!(o.suspect_set(), BTreeSet::from([p(2)]), "at t={t}");
        }
    }

    #[test]
    fn wakeups_cover_every_transition() {
        // The host that faithfully sets each requested timer observes every
        // scripted change no later than the tick it becomes due.
        let mut o = ScriptedOracle::new(vec![
            SuspicionChange {
                at: Time(3),
                target: p(1),
                suspect: true,
            },
            SuspicionChange {
                at: Time(8),
                target: p(1),
                suspect: false,
            },
        ]);
        let mut out = DetectorOutput::new();
        o.handle(DetectorEvent::Start { now: Time::ZERO }, &mut out);
        let mut now = Time::ZERO;
        let mut changes = 0;
        let mut pending = out.timers;
        while let Some((delay, tag)) = pending.pop() {
            now += delay;
            let mut out = DetectorOutput::new();
            o.handle(DetectorEvent::Timer { now, tag }, &mut out);
            changes += out.changed as u32;
            pending.extend(out.timers);
        }
        assert_eq!(changes, 2);
        assert!(o.suspect_set().is_empty());
    }
}
