//! Eventually perfect failure detectors (◇P and its local refinement ◇P₁).
//!
//! The paper's algorithm is driven by a *locally scope-restricted* eventually
//! perfect failure detector ◇P₁ (Song & Pike, DSN 2007, §2), which must
//! satisfy, with respect to a process's neighbors in the conflict graph:
//!
//! * **Local strong completeness** — every crashed process is eventually and
//!   permanently suspected by all correct neighbors;
//! * **Local eventual strong accuracy** — for every run, there is a time
//!   after which no correct process is suspected by any correct neighbor.
//!
//! ◇P₁ may therefore commit finitely many false positives before an unknown
//! convergence time. This crate provides:
//!
//! * [`DetectorModule`] — the pure state-machine interface a detector
//!   implementation exposes to its host process (runtime-agnostic, like the
//!   dining layer itself);
//! * [`HeartbeatDetector`] — the classic Chandra–Toueg construction:
//!   periodic push heartbeats plus adaptive timeouts. Under the simulator's
//!   GST delay model this genuinely satisfies ◇P₁;
//! * [`ProbeDetector`] — the pull-based (Chen–Toueg style) alternative:
//!   probe/echo round trips with adaptive timeouts, demand-driven
//!   monitoring at twice the per-round message cost;
//! * [`ScriptedOracle`] — a deterministic oracle whose suspicion history is
//!   given up front. Tests use it to drive *worst-case* pre-convergence
//!   behaviour (mutual false suspicions, late convergence) that an honest
//!   heartbeat detector would only produce by chance;
//! * [`ScriptedOracle::perfect`] — an oracle that suspects exactly the
//!   crashed processes, exactly from their crash times (the stronger
//!   detector `P`, used as a reference point in experiment E8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heartbeat;
mod module;
mod probe;
mod scripted;

pub use heartbeat::{HeartbeatConfig, HeartbeatDetector};
pub use module::{
    epoch_timer_tag, DetectorEvent, DetectorModule, DetectorMsg, DetectorOutput, SuspicionView,
};
pub use probe::{ProbeConfig, ProbeDetector};
pub use scripted::{ScriptedOracle, SuspicionChange};
