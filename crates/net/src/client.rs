//! The daemon client: dials a [`DaemonServer`](crate::DaemonServer),
//! binds a dining process, and drives hungry → granted → released cycles
//! over the EKN1 wire protocol.
//!
//! The client owns the retry policy: connection attempts and `Busy` sheds
//! back off exponentially with seeded jitter (deterministic per client,
//! decorrelated across a fleet), and [`DaemonClient::reconnect`] rides
//! the session-resume fast path before falling back to a fresh `Hello`.

use crate::conn::{splitmix64, Conn, ServerAddr};
use crate::wire::{decode_frame, encode_frame, AdmitPath, Frame, WireError};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Client-side policy knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Seed for the jittered backoff stream (mixed with the process id,
    /// so a fleet sharing one seed still decorrelates).
    pub seed: u64,
    /// First backoff step in milliseconds; doubles per failed attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Dial/handshake attempts before giving up.
    pub max_attempts: u32,
    /// Socket read timeout in milliseconds (the granularity at which
    /// waits notice their deadline).
    pub read_timeout_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            seed: 1,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            max_attempts: 8,
            read_timeout_ms: 25,
        }
    }
}

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server refused with this `Reject` code.
    Rejected(u8),
    /// Every attempt was shed with `Busy`.
    Busy,
    /// The wait's deadline passed.
    Timeout,
    /// The server sent bytes that are not a valid frame.
    Protocol(WireError),
    /// The connection closed mid-operation.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Rejected(code) => write!(f, "rejected by server (code {code})"),
            ClientError::Busy => write!(f, "shed busy on every attempt"),
            ClientError::Timeout => write!(f, "timed out"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A bound session with a daemon server.
///
/// The `Debug` form shows the session identity, not the socket.
pub struct DaemonClient {
    addr: ServerAddr,
    cfg: ClientConfig,
    process: u32,
    conn: Conn,
    acc: Vec<u8>,
    session: u64,
    token: u64,
    path: AdmitPath,
    rng: u64,
    /// `Busy` sheds absorbed by this client's retry loops so far.
    pub busy_retries: u64,
}

impl fmt::Debug for DaemonClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DaemonClient")
            .field("process", &self.process)
            .field("session", &self.session)
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl DaemonClient {
    /// Dials `addr` and binds `process` with a fresh `Hello`, retrying
    /// through `Busy` sheds and transient dial failures with jittered
    /// exponential backoff.
    pub fn connect(
        addr: &ServerAddr,
        process: u32,
        cfg: ClientConfig,
    ) -> Result<Self, ClientError> {
        let mut rng = cfg.seed ^ (u64::from(process) << 32) ^ 0xC11E_57AB;
        let mut busy_retries = 0;
        let mut last: ClientError = ClientError::Busy;
        for attempt in 0..cfg.max_attempts.max(1) {
            match Self::dial_and_bind(addr, &cfg, Frame::Hello { process }) {
                Ok((conn, acc, session, token, path)) => {
                    return Ok(DaemonClient {
                        addr: addr.clone(),
                        cfg,
                        process,
                        conn,
                        acc,
                        session,
                        token,
                        path,
                        rng,
                        busy_retries,
                    });
                }
                Err(ClientError::Rejected(code)) => return Err(ClientError::Rejected(code)),
                Err(e) => {
                    if matches!(e, ClientError::Busy) {
                        busy_retries += 1;
                    }
                    last = e;
                    std::thread::sleep(backoff(&cfg, &mut rng, attempt));
                }
            }
        }
        Err(last)
    }

    /// Re-establishes the session after a dead connection: `Resume` with
    /// the held credentials rides the server's journal fast path; if the
    /// server no longer knows the session, falls back to a fresh `Hello`.
    /// Returns the admission path the server reported.
    pub fn reconnect(&mut self) -> Result<AdmitPath, ClientError> {
        let mut last: ClientError = ClientError::Busy;
        for attempt in 0..self.cfg.max_attempts.max(1) {
            let resume = Frame::Resume {
                process: self.process,
                session: self.session,
                token: self.token,
            };
            match Self::dial_and_bind(&self.addr, &self.cfg, resume) {
                Ok((conn, acc, session, token, path)) => {
                    self.conn = conn;
                    self.acc = acc;
                    self.session = session;
                    self.token = token;
                    self.path = path;
                    return Ok(path);
                }
                // The server has not detached the dead connection yet —
                // transient: back off and resume again.
                Err(ClientError::Rejected(code)) if code == crate::wire::REJECT_ALREADY_BOUND => {
                    last = ClientError::Rejected(code);
                }
                // The session is gone server-side: rebind fresh.
                Err(ClientError::Rejected(_)) => {
                    match Self::dial_and_bind(
                        &self.addr,
                        &self.cfg,
                        Frame::Hello {
                            process: self.process,
                        },
                    ) {
                        Ok((conn, acc, session, token, path)) => {
                            self.conn = conn;
                            self.acc = acc;
                            self.session = session;
                            self.token = token;
                            self.path = path;
                            return Ok(path);
                        }
                        Err(ClientError::Rejected(code))
                            if code == crate::wire::REJECT_ALREADY_BOUND =>
                        {
                            last = ClientError::Rejected(code);
                        }
                        Err(ClientError::Rejected(code)) => {
                            return Err(ClientError::Rejected(code))
                        }
                        Err(e) => {
                            if matches!(e, ClientError::Busy) {
                                self.busy_retries += 1;
                            }
                            last = e;
                        }
                    }
                }
                Err(e) => {
                    if matches!(e, ClientError::Busy) {
                        self.busy_retries += 1;
                    }
                    last = e;
                }
            }
            let delay = backoff(&self.cfg, &mut self.rng, attempt);
            std::thread::sleep(delay);
        }
        Err(last)
    }

    fn dial_and_bind(
        addr: &ServerAddr,
        cfg: &ClientConfig,
        handshake: Frame,
    ) -> Result<(Conn, Vec<u8>, u64, u64, AdmitPath), ClientError> {
        let mut conn = Conn::dial(addr)?;
        conn.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))?;
        conn.write_all(&encode_frame(&handshake))?;
        let mut acc = Vec::with_capacity(256);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match read_frame(&mut conn, &mut acc, deadline)? {
                Frame::Welcome {
                    session,
                    token,
                    path,
                } => return Ok((conn, acc, session, token, path)),
                Frame::Busy { retry_after_ms } => {
                    // Honor the server's hint before the caller's own
                    // backoff kicks in.
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                    return Err(ClientError::Busy);
                }
                Frame::Reject { code } => return Err(ClientError::Rejected(code)),
                // Tolerate a stray frame racing ahead of the Welcome.
                _ => {}
            }
        }
    }

    /// The dining process this session is bound to.
    pub fn process(&self) -> u32 {
        self.process
    }

    /// The admission path of the most recent (re)connect.
    pub fn admit_path(&self) -> AdmitPath {
        self.path
    }

    /// Requests to eat: sends `Hungry`.
    pub fn hungry(&mut self) -> Result<(), ClientError> {
        self.conn.write_all(&encode_frame(&Frame::Hungry))?;
        Ok(())
    }

    /// Waits until the daemon grants the table (`Granted`), answering
    /// heartbeats along the way. Returns the server-side grant time.
    pub fn wait_granted(&mut self, timeout: Duration) -> Result<u64, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.next_frame(deadline)? {
                Frame::Granted { at_ms } => return Ok(at_ms),
                // A release from a previous cycle may still be in flight.
                Frame::Released { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Waits until the grant is released (`Released`), answering
    /// heartbeats along the way. Returns the server-side release time.
    pub fn wait_released(&mut self, timeout: Duration) -> Result<u64, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.next_frame(deadline)? {
                Frame::Released { at_ms } => return Ok(at_ms),
                // A duplicate grant (re-sent hungry) is not an error.
                Frame::Granted { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Simulates an abrupt client death: hard-closes the socket without
    /// `Bye`. The server crashes the bound process and keeps the session
    /// detached; [`reconnect`](Self::reconnect) revives it.
    pub fn kill(&mut self) {
        self.conn.kill();
    }

    /// Graceful goodbye: the server detaches the session without
    /// crashing the process.
    pub fn bye(mut self) {
        let _ = self.conn.write_all(&encode_frame(&Frame::Bye));
        self.conn.kill();
    }

    /// Reads the next non-heartbeat frame, replying to server `Ping`s
    /// inline so heartbeat liveness is maintained by any blocked wait.
    fn next_frame(&mut self, deadline: Instant) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 1024];
        loop {
            match decode_frame(&self.acc) {
                Ok(Some((frame, n))) => {
                    self.acc.drain(..n);
                    match frame {
                        Frame::Ping { nonce } => {
                            self.conn.write_all(&encode_frame(&Frame::Pong { nonce }))?;
                        }
                        Frame::Pong { .. } => {}
                        other => return Ok(other),
                    }
                    continue;
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            match self.conn.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

fn unexpected(frame: Frame) -> ClientError {
    // The server only sends framed protocol states; anything else here
    // means the two sides disagree about the session phase.
    let _ = frame;
    ClientError::Closed
}

/// Jittered exponential backoff: full period doubling capped at the
/// ceiling, then uniformly jittered over `[delay/2, delay]` so a fleet
/// retrying together spreads out instead of thundering back as a herd.
fn backoff(cfg: &ClientConfig, rng: &mut u64, attempt: u32) -> Duration {
    let exp = attempt.min(16);
    let delay = cfg
        .base_backoff_ms
        .max(1)
        .saturating_mul(1u64 << exp)
        .min(cfg.max_backoff_ms.max(1));
    let half = delay / 2;
    let jitter = splitmix64(rng) % (half + 1);
    Duration::from_millis(half + jitter)
}

/// Handshake-side frame read with a hard deadline.
fn read_frame(conn: &mut Conn, acc: &mut Vec<u8>, deadline: Instant) -> Result<Frame, ClientError> {
    let mut chunk = [0u8; 1024];
    loop {
        match decode_frame(acc) {
            Ok(Some((frame, n))) => {
                acc.drain(..n);
                return Ok(frame);
            }
            Ok(None) => {}
            Err(e) => return Err(ClientError::Protocol(e)),
        }
        if Instant::now() >= deadline {
            return Err(ClientError::Timeout);
        }
        match conn.read(&mut chunk) {
            Ok(0) => return Err(ClientError::Closed),
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(ClientError::Io(e)),
        }
    }
}
