//! The daemon client: dials a [`DaemonServer`](crate::DaemonServer),
//! binds dining processes, and drives hungry → granted → released cycles
//! over the EKN1 wire protocol.
//!
//! Two shapes:
//!
//! * [`DaemonClient`] — one socket, one process: the original
//!   session-per-connection client.
//! * [`MuxClient`] — one socket, many processes: authenticates a primary
//!   with `Hello`/`Resume`, then multiplexes any number of secondaries
//!   over the same connection with `Bind`/`Unbind` (the gateway/proxy
//!   shape). Event frames are process-tagged, so the caller demuxes with
//!   [`MuxClient::next_event`].
//!
//! The client owns the retry policy: connection attempts and `Busy`
//! sheds back off exponentially with seeded jitter (deterministic per
//! client, decorrelated across a fleet). A `Busy` answer carries the
//! server's retry hint; the retry loop honors `max(hint, backoff)`
//! exactly once per attempt, and never sleeps after the final attempt —
//! a failed call returns at once, with the hint in the error for the
//! caller's own scheduling.

use crate::conn::{splitmix64, Conn, ServerAddr};
use crate::wire::{
    decode_frame, encode_frame, AdmitPath, Frame, WireError, REJECT_ALREADY_BOUND,
};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Client-side policy knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Seed for the jittered backoff stream (mixed with the process id,
    /// so a fleet sharing one seed still decorrelates).
    pub seed: u64,
    /// First backoff step in milliseconds; doubles per failed attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Dial/handshake attempts before giving up.
    pub max_attempts: u32,
    /// Socket read timeout in milliseconds (the granularity at which
    /// waits notice their deadline).
    pub read_timeout_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            seed: 1,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            max_attempts: 8,
            read_timeout_ms: 25,
        }
    }
}

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server refused with this `Reject` (or `BindReject`) code.
    Rejected(u8),
    /// Every attempt was shed with `Busy`.
    Busy {
        /// The server's most recent retry hint, in milliseconds.
        hint_ms: u32,
    },
    /// The wait's deadline passed.
    Timeout,
    /// The server sent bytes that are not a valid frame.
    Protocol(WireError),
    /// The connection closed mid-operation.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Rejected(code) => write!(f, "rejected by server (code {code})"),
            ClientError::Busy { hint_ms } => {
                write!(f, "shed busy on every attempt (retry hint {hint_ms}ms)")
            }
            ClientError::Timeout => write!(f, "timed out"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Sleeps before the next attempt — but only if one remains. The server's
/// `Busy` hint and the client's own jittered backoff are reconciled by
/// taking the larger of the two, once; they never stack.
fn sleep_before_retry(
    cfg: &ClientConfig,
    rng: &mut u64,
    attempt: u32,
    attempts: u32,
    last: &ClientError,
) {
    if attempt + 1 >= attempts {
        return;
    }
    let mut delay = backoff(cfg, rng, attempt);
    if let ClientError::Busy { hint_ms } = last {
        delay = delay.max(Duration::from_millis(u64::from(*hint_ms)));
    }
    std::thread::sleep(delay);
}

/// Dials and runs one handshake. A `Busy` answer returns immediately
/// with the hint attached — the *caller's* retry loop owns all sleeping.
fn dial_and_bind(
    addr: &ServerAddr,
    cfg: &ClientConfig,
    handshake: Frame,
) -> Result<(Conn, Vec<u8>, u64, u64, AdmitPath), ClientError> {
    let mut conn = Conn::dial(addr)?;
    conn.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))?;
    conn.write_all(&encode_frame(&handshake))?;
    let mut acc = Vec::with_capacity(256);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match read_frame(&mut conn, &mut acc, deadline)? {
            Frame::Welcome {
                session,
                token,
                path,
            } => return Ok((conn, acc, session, token, path)),
            Frame::Busy { retry_after_ms } => {
                return Err(ClientError::Busy {
                    hint_ms: retry_after_ms,
                })
            }
            Frame::Reject { code } => return Err(ClientError::Rejected(code)),
            // Tolerate a stray frame racing ahead of the Welcome.
            _ => {}
        }
    }
}

/// A bound session with a daemon server.
///
/// The `Debug` form shows the session identity, not the socket.
pub struct DaemonClient {
    addr: ServerAddr,
    cfg: ClientConfig,
    process: u32,
    conn: Conn,
    acc: Vec<u8>,
    session: u64,
    token: u64,
    path: AdmitPath,
    rng: u64,
    /// `Busy` sheds absorbed by this client's retry loops so far.
    pub busy_retries: u64,
}

impl fmt::Debug for DaemonClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DaemonClient")
            .field("process", &self.process)
            .field("session", &self.session)
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl DaemonClient {
    /// Dials `addr` and binds `process` with a fresh `Hello`, retrying
    /// through `Busy` sheds and transient dial failures with jittered
    /// exponential backoff.
    pub fn connect(
        addr: &ServerAddr,
        process: u32,
        cfg: ClientConfig,
    ) -> Result<Self, ClientError> {
        let mut rng = cfg.seed ^ (u64::from(process) << 32) ^ 0xC11E_57AB;
        let mut busy_retries = 0;
        let mut last: ClientError = ClientError::Busy { hint_ms: 0 };
        let attempts = cfg.max_attempts.max(1);
        for attempt in 0..attempts {
            match dial_and_bind(addr, &cfg, Frame::Hello { process }) {
                Ok((conn, acc, session, token, path)) => {
                    return Ok(DaemonClient {
                        addr: addr.clone(),
                        cfg,
                        process,
                        conn,
                        acc,
                        session,
                        token,
                        path,
                        rng,
                        busy_retries,
                    });
                }
                Err(ClientError::Rejected(code)) => return Err(ClientError::Rejected(code)),
                Err(e) => {
                    if matches!(e, ClientError::Busy { .. }) {
                        busy_retries += 1;
                    }
                    last = e;
                    sleep_before_retry(&cfg, &mut rng, attempt, attempts, &last);
                }
            }
        }
        Err(last)
    }

    /// Re-establishes the session after a dead connection: `Resume` with
    /// the held credentials rides the server's journal fast path; if the
    /// server no longer knows the session, falls back to a fresh `Hello`.
    /// Returns the admission path the server reported.
    pub fn reconnect(&mut self) -> Result<AdmitPath, ClientError> {
        let mut last: ClientError = ClientError::Busy { hint_ms: 0 };
        let attempts = self.cfg.max_attempts.max(1);
        for attempt in 0..attempts {
            let resume = Frame::Resume {
                process: self.process,
                session: self.session,
                token: self.token,
            };
            match dial_and_bind(&self.addr, &self.cfg, resume) {
                Ok((conn, acc, session, token, path)) => {
                    self.conn = conn;
                    self.acc = acc;
                    self.session = session;
                    self.token = token;
                    self.path = path;
                    return Ok(path);
                }
                // The server has not detached the dead connection yet —
                // transient: back off and resume again.
                Err(ClientError::Rejected(code)) if code == REJECT_ALREADY_BOUND => {
                    last = ClientError::Rejected(code);
                }
                // The session is gone server-side: rebind fresh.
                Err(ClientError::Rejected(_)) => {
                    match dial_and_bind(
                        &self.addr,
                        &self.cfg,
                        Frame::Hello {
                            process: self.process,
                        },
                    ) {
                        Ok((conn, acc, session, token, path)) => {
                            self.conn = conn;
                            self.acc = acc;
                            self.session = session;
                            self.token = token;
                            self.path = path;
                            return Ok(path);
                        }
                        Err(ClientError::Rejected(code)) if code == REJECT_ALREADY_BOUND => {
                            last = ClientError::Rejected(code);
                        }
                        Err(ClientError::Rejected(code)) => {
                            return Err(ClientError::Rejected(code))
                        }
                        Err(e) => {
                            if matches!(e, ClientError::Busy { .. }) {
                                self.busy_retries += 1;
                            }
                            last = e;
                        }
                    }
                }
                Err(e) => {
                    if matches!(e, ClientError::Busy { .. }) {
                        self.busy_retries += 1;
                    }
                    last = e;
                }
            }
            sleep_before_retry(&self.cfg, &mut self.rng, attempt, attempts, &last);
        }
        Err(last)
    }

    /// The dining process this session is bound to.
    pub fn process(&self) -> u32 {
        self.process
    }

    /// The admission path of the most recent (re)connect.
    pub fn admit_path(&self) -> AdmitPath {
        self.path
    }

    /// Requests to eat: sends `Hungry`.
    pub fn hungry(&mut self) -> Result<(), ClientError> {
        self.conn.write_all(&encode_frame(&Frame::Hungry {
            process: self.process,
        }))?;
        Ok(())
    }

    /// Waits until the daemon grants the table (`Granted`), answering
    /// heartbeats along the way. Returns the server-side grant time.
    pub fn wait_granted(&mut self, timeout: Duration) -> Result<u64, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.next_frame(deadline)? {
                Frame::Granted { process, at_ms } if process == self.process => return Ok(at_ms),
                // A release from a previous cycle may still be in
                // flight; another process's event is never ours to act
                // on (single-process client, but tolerate it).
                Frame::Released { .. } | Frame::Granted { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Waits until the grant is released (`Released`), answering
    /// heartbeats along the way. Returns the server-side release time.
    pub fn wait_released(&mut self, timeout: Duration) -> Result<u64, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.next_frame(deadline)? {
                Frame::Released { process, at_ms } if process == self.process => return Ok(at_ms),
                // A duplicate grant (re-sent hungry) is not an error.
                Frame::Granted { .. } | Frame::Released { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Simulates an abrupt client death: hard-closes the socket without
    /// `Bye`. The server crashes the bound process and keeps the session
    /// detached; [`reconnect`](Self::reconnect) revives it.
    pub fn kill(&mut self) {
        self.conn.kill();
    }

    /// Graceful goodbye: the server detaches the session without
    /// crashing the process.
    pub fn bye(mut self) {
        let _ = self.conn.write_all(&encode_frame(&Frame::Bye));
        self.conn.kill();
    }

    /// Reads the next non-heartbeat frame, replying to server `Ping`s
    /// inline so heartbeat liveness is maintained by any blocked wait.
    fn next_frame(&mut self, deadline: Instant) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 1024];
        loop {
            match decode_frame(&self.acc) {
                Ok(Some((frame, n))) => {
                    self.acc.drain(..n);
                    match frame {
                        Frame::Ping { nonce } => {
                            self.conn.write_all(&encode_frame(&Frame::Pong { nonce }))?;
                        }
                        Frame::Pong { .. } => {}
                        other => return Ok(other),
                    }
                    continue;
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            match self.conn.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// One demultiplexed table event from a [`MuxClient`] connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MuxEvent {
    /// `process` was granted the table at server time `at_ms`.
    Granted {
        /// The granted process.
        process: u32,
        /// Server-side grant time, ms.
        at_ms: u64,
    },
    /// `process` released the table at server time `at_ms`.
    Released {
        /// The releasing process.
        process: u32,
        /// Server-side release time, ms.
        at_ms: u64,
    },
}

/// A multiplexed session: one socket fronting many dining processes.
///
/// The connection authenticates a *primary* process (whose credentials
/// also anchor [`reconnect`](Self::reconnect)), then binds secondaries
/// with [`bind`](Self::bind). All event frames arrive process-tagged on
/// the one socket; drive the whole fleet with
/// [`hungry`](Self::hungry) / [`next_event`](Self::next_event).
pub struct MuxClient {
    addr: ServerAddr,
    cfg: ClientConfig,
    primary: u32,
    conn: Conn,
    acc: Vec<u8>,
    session: u64,
    token: u64,
    path: AdmitPath,
    rng: u64,
    /// Secondary processes currently bound (primary excluded).
    bound: Vec<u32>,
    /// Events decoded while waiting for a control answer.
    pending: VecDeque<MuxEvent>,
    /// `Busy` sheds absorbed by this client's retry loops so far.
    pub busy_retries: u64,
}

impl fmt::Debug for MuxClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MuxClient")
            .field("primary", &self.primary)
            .field("session", &self.session)
            .field("bound", &self.bound)
            .finish_non_exhaustive()
    }
}

impl MuxClient {
    /// Dials `addr` and authenticates `primary` with a fresh `Hello`,
    /// retrying through `Busy` sheds with jittered backoff.
    pub fn connect(
        addr: &ServerAddr,
        primary: u32,
        cfg: ClientConfig,
    ) -> Result<Self, ClientError> {
        let mut rng = cfg.seed ^ (u64::from(primary) << 32) ^ 0x3A7E_11E5;
        let mut busy_retries = 0;
        let mut last: ClientError = ClientError::Busy { hint_ms: 0 };
        let attempts = cfg.max_attempts.max(1);
        for attempt in 0..attempts {
            match dial_and_bind(addr, &cfg, Frame::Hello { process: primary }) {
                Ok((conn, acc, session, token, path)) => {
                    return Ok(MuxClient {
                        addr: addr.clone(),
                        cfg,
                        primary,
                        conn,
                        acc,
                        session,
                        token,
                        path,
                        rng,
                        bound: Vec::new(),
                        pending: VecDeque::new(),
                        busy_retries,
                    });
                }
                Err(ClientError::Rejected(code)) => return Err(ClientError::Rejected(code)),
                Err(e) => {
                    if matches!(e, ClientError::Busy { .. }) {
                        busy_retries += 1;
                    }
                    last = e;
                    sleep_before_retry(&cfg, &mut rng, attempt, attempts, &last);
                }
            }
        }
        Err(last)
    }

    /// The primary process anchoring this connection.
    pub fn primary(&self) -> u32 {
        self.primary
    }

    /// The admission path of the most recent (re)connect.
    pub fn admit_path(&self) -> AdmitPath {
        self.path
    }

    /// Every process currently bound on this connection, primary first.
    pub fn processes(&self) -> Vec<u32> {
        let mut all = vec![self.primary];
        all.extend_from_slice(&self.bound);
        all
    }

    /// Binds a secondary `process` onto this connection, returning the
    /// admission path the server reported for it.
    pub fn bind(&mut self, process: u32) -> Result<AdmitPath, ClientError> {
        self.conn
            .write_all(&encode_frame(&Frame::Bind { process }))?;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.read_any(deadline)? {
                Frame::Bound { process: p, path } if p == process => {
                    self.bound.push(process);
                    return Ok(path);
                }
                Frame::BindReject { process: p, code } if p == process => {
                    return Err(if code == crate::wire::REJECT_BUSY {
                        ClientError::Busy {
                            hint_ms: self.cfg.base_backoff_ms as u32,
                        }
                    } else {
                        ClientError::Rejected(code)
                    });
                }
                // Answers for other in-flight binds or stray unbinds.
                Frame::Bound { .. } | Frame::BindReject { .. } | Frame::Unbound { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Gracefully detaches a secondary (or the primary's entry in the
    /// event stream stays — the primary itself cannot be unbound).
    pub fn unbind(&mut self, process: u32) -> Result<(), ClientError> {
        if !self.bound.contains(&process) {
            return Err(ClientError::Rejected(crate::wire::REJECT_BAD_PROCESS));
        }
        self.conn
            .write_all(&encode_frame(&Frame::Unbind { process }))?;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.read_any(deadline)? {
                Frame::Unbound { process: p } if p == process => {
                    self.bound.retain(|&b| b != process);
                    return Ok(());
                }
                Frame::Bound { .. } | Frame::BindReject { .. } | Frame::Unbound { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Requests to eat on behalf of any bound process.
    pub fn hungry(&mut self, process: u32) -> Result<(), ClientError> {
        if process != self.primary && !self.bound.contains(&process) {
            return Err(ClientError::Rejected(crate::wire::REJECT_BAD_PROCESS));
        }
        self.conn
            .write_all(&encode_frame(&Frame::Hungry { process }))?;
        Ok(())
    }

    /// The next table event for *any* bound process, answering
    /// heartbeats along the way.
    pub fn next_event(&mut self, timeout: Duration) -> Result<MuxEvent, ClientError> {
        if let Some(e) = self.pending.pop_front() {
            return Ok(e);
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.read_any(deadline)? {
                Frame::Granted { process, at_ms } => {
                    return Ok(MuxEvent::Granted { process, at_ms })
                }
                Frame::Released { process, at_ms } => {
                    return Ok(MuxEvent::Released { process, at_ms })
                }
                // Stale control answers are dropped, not errors.
                Frame::Bound { .. } | Frame::BindReject { .. } | Frame::Unbound { .. } => {}
                frame => return Err(unexpected(frame)),
            }
        }
    }

    /// Re-establishes the whole multiplexed session after a dead
    /// connection: resumes the primary under its credentials (falling
    /// back to `Hello` if the server reaped the session), then re-binds
    /// every secondary. Returns each process with the admission path the
    /// server reported for it, primary first.
    pub fn reconnect(&mut self) -> Result<Vec<(u32, AdmitPath)>, ClientError> {
        let mut last: ClientError = ClientError::Busy { hint_ms: 0 };
        let attempts = self.cfg.max_attempts.max(1);
        for attempt in 0..attempts {
            let resume = Frame::Resume {
                process: self.primary,
                session: self.session,
                token: self.token,
            };
            let dialed = match dial_and_bind(&self.addr, &self.cfg, resume) {
                Ok(ok) => Some(ok),
                Err(ClientError::Rejected(code)) if code == REJECT_ALREADY_BOUND => {
                    last = ClientError::Rejected(code);
                    None
                }
                Err(ClientError::Rejected(_)) => {
                    // Session reaped server-side: start the fleet over.
                    match dial_and_bind(
                        &self.addr,
                        &self.cfg,
                        Frame::Hello {
                            process: self.primary,
                        },
                    ) {
                        Ok(ok) => Some(ok),
                        Err(ClientError::Rejected(code)) if code == REJECT_ALREADY_BOUND => {
                            last = ClientError::Rejected(code);
                            None
                        }
                        Err(ClientError::Rejected(code)) => {
                            return Err(ClientError::Rejected(code))
                        }
                        Err(e) => {
                            if matches!(e, ClientError::Busy { .. }) {
                                self.busy_retries += 1;
                            }
                            last = e;
                            None
                        }
                    }
                }
                Err(e) => {
                    if matches!(e, ClientError::Busy { .. }) {
                        self.busy_retries += 1;
                    }
                    last = e;
                    None
                }
            };
            if let Some((conn, acc, session, token, path)) = dialed {
                self.conn = conn;
                self.acc = acc;
                self.session = session;
                self.token = token;
                self.path = path;
                self.pending.clear();
                let secondaries = std::mem::take(&mut self.bound);
                let mut paths = vec![(self.primary, path)];
                for p in secondaries {
                    match self.bind(p) {
                        Ok(bp) => paths.push((p, bp)),
                        // A secondary that cannot rebind (e.g. claimed by
                        // someone else meanwhile) is dropped from the
                        // fleet, not fatal to the connection.
                        Err(_) => {}
                    }
                }
                return Ok(paths);
            }
            sleep_before_retry(&self.cfg, &mut self.rng, attempt, attempts, &last);
        }
        Err(last)
    }

    /// Simulates an abrupt client death: hard-closes the socket without
    /// `Bye`. The server crashes *every* process bound here.
    pub fn kill(&mut self) {
        self.conn.kill();
    }

    /// Graceful goodbye: the server detaches every bound process without
    /// crashing any of them.
    pub fn bye(mut self) {
        let _ = self.conn.write_all(&encode_frame(&Frame::Bye));
        self.conn.kill();
    }

    /// Reads the next frame, replying to `Ping`s inline and stashing
    /// event frames encountered while a control call waits (the caller
    /// decides which frames it is looking for; events never get lost).
    fn read_any(&mut self, deadline: Instant) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            match decode_frame(&self.acc) {
                Ok(Some((frame, n))) => {
                    self.acc.drain(..n);
                    match frame {
                        Frame::Ping { nonce } => {
                            self.conn.write_all(&encode_frame(&Frame::Pong { nonce }))?;
                        }
                        Frame::Pong { .. } => {}
                        other => return Ok(other),
                    }
                    continue;
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e)),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            match self.conn.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

fn unexpected(frame: Frame) -> ClientError {
    // The server only sends framed protocol states; anything else here
    // means the two sides disagree about the session phase.
    let _ = frame;
    ClientError::Closed
}

/// Jittered exponential backoff: full period doubling capped at the
/// ceiling, then uniformly jittered over `[delay/2, delay]` so a fleet
/// retrying together spreads out instead of thundering back as a herd.
fn backoff(cfg: &ClientConfig, rng: &mut u64, attempt: u32) -> Duration {
    let exp = attempt.min(16);
    let delay = cfg
        .base_backoff_ms
        .max(1)
        .saturating_mul(1u64 << exp)
        .min(cfg.max_backoff_ms.max(1));
    let half = delay / 2;
    let jitter = splitmix64(rng) % (half + 1);
    Duration::from_millis(half + jitter)
}

/// Handshake-side frame read with a hard deadline.
fn read_frame(conn: &mut Conn, acc: &mut Vec<u8>, deadline: Instant) -> Result<Frame, ClientError> {
    let mut chunk = [0u8; 1024];
    loop {
        match decode_frame(acc) {
            Ok(Some((frame, n))) => {
                acc.drain(..n);
                return Ok(frame);
            }
            Ok(None) => {}
            Err(e) => return Err(ClientError::Protocol(e)),
        }
        if Instant::now() >= deadline {
            return Err(ClientError::Timeout);
        }
        match conn.read(&mut chunk) {
            Ok(0) => return Err(ClientError::Closed),
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(ClientError::Io(e)),
        }
    }
}
