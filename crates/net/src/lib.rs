//! # ekbd-net — the daemon as a service
//!
//! Exposes a [`ThreadedDining`](ekbd_runtime::ThreadedDining) system over
//! the network: clients bind dining processes as *sessions* over TCP or
//! Unix-domain sockets and drive hungry → granted → released cycles,
//! while the paper's wait-freedom and exclusion guarantees keep holding
//! on the server side.
//!
//! The design maps network failures onto the crash-recovery fault model
//! the workspace already proves out:
//!
//! * a dead connection **crashes** the bound process — the daemon treats
//!   a vanished client exactly like a crashed philosopher, so its
//!   neighbors keep eating (wait-freedom under real packet loss);
//! * a reconnect **recovers** it — presenting the session credentials
//!   rides the journal fast-resume path when stable storage has a valid
//!   snapshot, and degrades to the blank rejoin handshake otherwise,
//!   with the taken path reported honestly in the `Welcome` frame;
//! * overload is **shed, not queued**: admissions past the session cap
//!   get a clean `Busy` with a retry hint, slow readers are disconnected
//!   when their bounded send queue fills, and silent connections are
//!   culled by a strike-gated heartbeat (suspicion, then conviction —
//!   the ◇P₁ idiom applied to sockets).
//!
//! Everything is plain `std::net` + a small readiness reactor over the
//! vendored epoll shim; there is no async runtime and no
//! thread-per-connection. A handful of reactor threads own slabs of
//! nonblocking connections, one event-pump thread bridges the dining
//! runtime's tap into the sessions, and blocking recovery waits run on
//! short-lived admission workers. One connection can multiplex many
//! dining processes (`Bind`/`Unbind` — the gateway shape, see
//! [`MuxClient`]), and the server can front either the full threaded
//! runtime or the bit-packed scale-tier kernel
//! ([`server::BackendSpec`]). See `docs/NET.md` for the wire protocol
//! and operational guidance, and experiments E20/E21 for the measured
//! behavior under connection churn and reactor load.
//!
//! ## Quick tour
//!
//! ```no_run
//! use ekbd_net::{ClientConfig, DaemonClient, DaemonServer, ServerAddr, ServerConfig};
//! use ekbd_graph::topology;
//! use std::time::Duration;
//!
//! let server = DaemonServer::start(
//!     topology::ring(5),
//!     &ServerAddr::Tcp("127.0.0.1:0".into()),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let addr = server.local_addr().clone();
//!
//! let mut client = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
//! client.hungry().unwrap();
//! client.wait_granted(Duration::from_secs(2)).unwrap();
//! client.wait_released(Duration::from_secs(2)).unwrap();
//! client.bye();
//!
//! let run = server.shutdown();
//! assert!(run.stats.fresh >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod poll;

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, DaemonClient, MuxClient, MuxEvent};
pub use conn::ServerAddr;
pub use loadgen::{kill_set, run_load, LoadPlan, LoadReport, Readmission};
pub use server::{BackendSpec, DaemonServer, ServerConfig, ServerRun, ServerStats};
pub use wire::{AdmitPath, Frame, WireError};
