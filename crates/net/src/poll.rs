//! Readiness polling for the reactor: a thin, safe facade over the
//! vendored [`rawpoll`] epoll shim, plus an eventfd-backed [`Waker`] for
//! cross-thread wakeups.
//!
//! All `unsafe` lives in `rawpoll` (three `extern "C"` declarations); this
//! module — and the whole crate — stays `#![forbid(unsafe_code)]`.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};

pub(crate) use rawpoll::{EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// One epoll instance, owned by exactly one reactor thread.
pub(crate) struct Poller {
    ep: rawpoll::Epoll,
}

impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        Ok(Poller {
            ep: rawpoll::Epoll::new()?,
        })
    }

    /// Registers `fd` under `token` for the `events` readiness mask.
    pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ep.add(fd, events, token)
    }

    /// Re-arms `fd` with a new readiness mask (token unchanged by
    /// convention — the slot index is stable for a connection's life).
    pub(crate) fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ep.modify(fd, events, token)
    }

    /// Drops `fd` from the interest set. Harmless if already gone (the
    /// kernel also auto-deregisters on close).
    pub(crate) fn delete(&self, fd: RawFd) {
        let _ = self.ep.delete(fd);
    }

    /// Blocks up to `timeout_ms` and appends `(token, readiness)` pairs
    /// to `out`. Returns how many events arrived this call.
    pub(crate) fn wait(
        &mut self,
        out: &mut Vec<(u64, u32)>,
        max: usize,
        timeout_ms: i32,
    ) -> io::Result<usize> {
        self.ep.wait(out, max, timeout_ms)
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: an eventfd
/// registered in the poller under a reserved token. Any thread may
/// [`wake`](Self::wake); the owning reactor [`drain`](Self::drain)s.
pub(crate) struct Waker {
    file: File,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Waker> {
        Ok(Waker {
            file: File::from(rawpoll::eventfd()?),
        })
    }

    pub(crate) fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Nudges the poller. Errors are ignored: the fd is nonblocking, and
    /// an `EAGAIN` here means the counter is already saturated — the
    /// reactor is waking regardless.
    pub(crate) fn wake(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Resets the counter so the next [`wake`](Self::wake) re-triggers
    /// readiness. Called by the owning reactor when its token fires.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        while (&self.file).read(&mut buf).is_ok() {}
    }
}
