//! The daemon server: a dining backend exposed over TCP or Unix-domain
//! sockets, one session per dining process, many sessions per connection.
//!
//! # Threading model
//!
//! No async runtime — a small readiness-based reactor over the vendored
//! epoll shim ([`crate::poll`]):
//!
//! * an **acceptor** thread polls the (nonblocking) listener for
//!   readiness and hands accepted sockets to the reactors round-robin;
//! * **N reactor threads** ([`ServerConfig::reactor_threads`]) each own a
//!   slab of nonblocking connections. A reactor runs the handshake state
//!   machine, decodes inbound frames off per-connection read
//!   accumulators, and drains per-connection write buffers — there are
//!   no per-connection threads, no writer threads, and no bounded
//!   queues; a connection whose write buffer exceeds
//!   [`ServerConfig::send_queue`] frames is a slow reader and is
//!   disconnected. Heartbeat strikes and handshake deadlines are swept
//!   by the owning reactor between polls. Cross-thread work (event
//!   frames from the pump, admission completions) arrives on a command
//!   queue flushed by an eventfd wakeup;
//! * one **event pump** thread drains the backend's live event tap,
//!   translating `StartedEating` / `StoppedEating` into process-tagged
//!   `Granted` / `Released` frames, and runs the detach-TTL reaper
//!   ([`ServerConfig::detach_ttl_ms`]).
//!
//! Blocking work never runs on a reactor: a readmission that must wait
//! for the runtime's recovery notice is parked on a short-lived admission
//! worker thread that posts its verdict back to the reactor's queue.
//!
//! # Multiplexed sessions
//!
//! A connection authenticates one *primary* process with `Hello` /
//! `Resume`, then may bind any number of *secondary* processes with
//! `Bind { process }` — the gateway/proxy shape, where one socket fronts
//! a whole fleet of dining processes. Event frames are process-tagged so
//! the client can demultiplex. An ungraceful disconnect crashes every
//! process bound on the connection; `Unbind` detaches one gracefully.
//!
//! # Fault-tolerant sessions
//!
//! A connection death is mapped onto the paper's crash-recovery fault
//! model: each bound process is crashed in the dining system, and its
//! session is kept *detached* server-side. A client reconnecting with
//! its session credentials revives the process, and the `Welcome` (or
//! `Bound`) tags which recovery path the new incarnation took — the
//! journal fast-resume or the blank rejoin handshake — straight from the
//! runtime's [`RestartNotice`] stream. Detached sessions do not live
//! forever: after [`ServerConfig::detach_ttl_ms`] without a reconnect
//! the reaper deletes the slot, invalidating its credentials and
//! returning its admission capacity (the crash-stop case).
//!
//! # Backends
//!
//! [`BackendSpec::Threaded`] runs the full [`ThreadedDining`] runtime —
//! one OS thread per philosopher, journal recovery, the works.
//! [`BackendSpec::Scale`] fronts the bit-packed scale-tier kernel
//! ([`ekbd_sim::InteractiveScale`]) instead: a single driver thread
//! serves hunger injections for up to hundreds of thousands of
//! processes. The scale kernel is fault-free, so disconnects there
//! detach without crashing and every resume is trivial.
//!
//! # Overload shedding
//!
//! Admission is capped ([`ServerConfig::max_sessions`]): a `Hello` past
//! the cap is answered with a clean `Busy` frame carrying a retry hint
//! (a `Bind` with `BindReject { code: REJECT_BUSY }`), and nothing is
//! allocated server-side. Established sessions are never shed by
//! admission pressure — only by their own slow reading or heartbeat
//! silence.

use crate::conn::{splitmix64, Conn, Listener, ServerAddr};
use crate::poll::{Poller, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::{
    decode_frame, encode_frame, AdmitPath, Frame, REJECT_ALREADY_BOUND, REJECT_BAD_PROCESS,
    REJECT_BUSY, REJECT_UNKNOWN_SESSION,
};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ekbd_dining::{DiningObs, RecoveryMsg, RestartPath};
use ekbd_graph::{coloring, ConflictGraph, ProcessId};
use ekbd_metrics::{LinkSummary, SchedEvent};
use ekbd_runtime::{RestartNotice, RuntimeConfig, ThreadedDining};
use ekbd_sim::{InteractiveScale, ScaleConfig, ScaleRunReport, Time};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reserved poll token for a reactor's wakeup eventfd; connection tokens
/// are slab indices and can never reach it.
const WAKER_TOKEN: u64 = u64::MAX;

/// Read-accumulator ceiling while an admission is parked on a worker: a
/// client pipelining more than this before its `Welcome` is broken.
const ADMIT_ACC_CAP: usize = 64 * 1024;

/// Which dining backend a server fronts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendSpec {
    /// The full crash-recovery runtime: one OS thread per philosopher,
    /// journal resume, restart notices.
    Threaded,
    /// The bit-packed scale-tier kernel in interactive mode, driven by a
    /// single thread. Fault-free: disconnects detach without crashing.
    Scale {
        /// Kernel seed; virtual-time dynamics are a pure function of it.
        seed: u64,
    },
}

/// Configuration of a [`DaemonServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The threaded dining runtime under the sessions (ignored by the
    /// scale backend).
    pub runtime: RuntimeConfig,
    /// Which backend to front.
    pub backend: BackendSpec,
    /// Reactor threads sharing the connection load.
    pub reactor_threads: usize,
    /// Admission cap: a `Hello` that would create session number
    /// `max_sessions + 1` is shed with a `Busy` frame instead.
    pub max_sessions: usize,
    /// Capacity, in frames, of each connection's write buffer. A session
    /// whose buffer fills (a reader too slow for its own event stream)
    /// is disconnected rather than allowed to hold memory hostage.
    pub send_queue: usize,
    /// Heartbeat sweep period in milliseconds.
    pub heartbeat_ms: u64,
    /// Suspicion gate: consecutive silent sweeps tolerated before a
    /// session is declared dead. Any inbound frame resets the count, so a
    /// session only times out after `heartbeat_strikes × heartbeat_ms` of
    /// total silence — one missed beat is suspicion, not conviction.
    pub heartbeat_strikes: u32,
    /// Retry hint carried in `Busy` shed responses, in milliseconds.
    pub busy_retry_ms: u32,
    /// Handshake deadline in milliseconds: a dialer that has not
    /// completed `Hello`/`Resume` by then is dropped (counted in
    /// [`ServerStats::handshake_timeouts`], *not* as a protocol error).
    pub handshake_ms: u64,
    /// Detached-session time-to-live in milliseconds: a session that
    /// stays detached this long is reaped — credentials invalidated,
    /// admission slot reclaimed. Covers the crash-stop client that will
    /// never resume.
    pub detach_ttl_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            runtime: RuntimeConfig::default(),
            backend: BackendSpec::Threaded,
            reactor_threads: 2,
            max_sessions: 64,
            send_queue: 64,
            heartbeat_ms: 200,
            heartbeat_strikes: 5,
            busy_retry_ms: 100,
            handshake_ms: 2_000,
            detach_ttl_ms: 30_000,
        }
    }
}

/// Monotonic counters published by a running server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Sessions admitted fresh (first binding of a process).
    pub fresh: u64,
    /// Readmissions that rode the journal fast-resume path (or a
    /// graceful detach where nothing was lost).
    pub resumed: u64,
    /// Readmissions that fell back to the blank rejoin handshake.
    pub rejoined: u64,
    /// `Hello`s and `Bind`s shed with busy answers at the admission cap.
    pub shed_busy: u64,
    /// Connections disconnected for filling their write buffer.
    pub shed_slow: u64,
    /// Connections disconnected by the heartbeat suspicion gate.
    pub heartbeat_drops: u64,
    /// Connections dropped for malformed or out-of-protocol frames.
    pub protocol_errors: u64,
    /// Dialers dropped for silence at the handshake deadline — connected
    /// but never spoke. Deliberately *not* a protocol error: the peer
    /// broke no framing rule, it just never said anything.
    pub handshake_timeouts: u64,
    /// Detached sessions deleted by the TTL reaper.
    pub reaped: u64,
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    fresh: AtomicU64,
    resumed: AtomicU64,
    rejoined: AtomicU64,
    shed_busy: AtomicU64,
    shed_slow: AtomicU64,
    heartbeat_drops: AtomicU64,
    protocol_errors: AtomicU64,
    handshake_timeouts: AtomicU64,
    reaped: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            rejoined: self.rejoined.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            shed_slow: self.shed_slow.load(Ordering::Relaxed),
            heartbeat_drops: self.heartbeat_drops.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            handshake_timeouts: self.handshake_timeouts.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
        }
    }
}

/// Everything a stopped server hands back.
pub struct ServerRun {
    /// The full scheduling trace of the dining system.
    pub events: Vec<SchedEvent>,
    /// Link-layer counters (all zero when the reliable link is off, and
    /// for the scale backend).
    pub link: LinkSummary,
    /// Every restart the runtime performed, tagged with its path —
    /// snapshotted *after* runtime teardown, so restarts completing
    /// during the shutdown window are never dropped.
    pub restarts: Vec<RestartNotice>,
    /// The scale kernel's run report, when the scale backend served.
    pub scale: Option<ScaleRunReport>,
    /// Final server counters.
    pub stats: ServerStats,
}

// ---------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------

enum ScaleCmd {
    Hungry(u32),
}

/// The scale backend: one driver thread owning an [`InteractiveScale`]
/// kernel, fed hunger injections over a channel, emitting wall-clock-
/// stamped [`SchedEvent`]s to the pump's tap.
struct ScaleService {
    tx: Sender<ScaleCmd>,
    handle: JoinHandle<(Vec<SchedEvent>, ScaleRunReport)>,
}

impl ScaleService {
    fn start(graph: &ConflictGraph, seed: u64) -> (ScaleService, Receiver<SchedEvent>) {
        let colors = coloring::greedy(graph);
        let mut kernel = InteractiveScale::new(graph, &colors, ScaleConfig::default().seed(seed));
        let (tx, rx) = unbounded::<ScaleCmd>();
        let (tap_tx, tap_rx) = unbounded::<SchedEvent>();
        let handle = std::thread::Builder::new()
            .name("ekbd-net-scale".into())
            .spawn(move || {
                let start = Instant::now();
                let mut log: Vec<SchedEvent> = Vec::new();
                let mut obs = Vec::new();
                loop {
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(ScaleCmd::Hungry(p)) => {
                            kernel.inject_hungry(p);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    for cmd in rx.try_iter() {
                        match cmd {
                            ScaleCmd::Hungry(p) => {
                                kernel.inject_hungry(p);
                            }
                        }
                    }
                    obs.clear();
                    kernel.step(1u64 << 16, &mut obs);
                    if obs.is_empty() {
                        continue;
                    }
                    let at = start.elapsed().as_millis() as u64;
                    for o in &obs {
                        let e = SchedEvent::new(
                            Time(at),
                            ProcessId::from(o.process as usize),
                            if o.started {
                                DiningObs::StartedEating
                            } else {
                                DiningObs::StoppedEating
                            },
                        );
                        log.push(e);
                        let _ = tap_tx.send(e);
                    }
                }
                (log, kernel.finish())
            })
            .expect("spawn scale driver thread");
        (ScaleService { tx, handle }, tap_rx)
    }

    fn stop(self) -> (Vec<SchedEvent>, ScaleRunReport) {
        drop(self.tx);
        self.handle
            .join()
            .unwrap_or_else(|_| (Vec::new(), panic_report()))
    }
}

/// Placeholder report for the (never observed in practice) case of a
/// panicked scale driver.
fn panic_report() -> ScaleRunReport {
    ScaleRunReport {
        n: 0,
        shards: 0,
        events: 0,
        messages: 0,
        final_tick: 0,
        eats: Vec::new(),
        mistakes: u64::MAX,
        starving: 0,
        latency: ekbd_sim::LatencyHistogram::new(),
        excerpts: Vec::new(),
        wall_nanos: 0,
    }
}

/// The dining system behind the sessions.
enum Backend {
    Threaded(ThreadedDining<RecoveryMsg>),
    Scale(ScaleService),
}

impl Backend {
    fn make_hungry(&self, p: u32) {
        match self {
            Backend::Threaded(sys) => sys.make_hungry(ProcessId::from(p as usize)),
            Backend::Scale(svc) => {
                let _ = svc.tx.send(ScaleCmd::Hungry(p));
            }
        }
    }

    fn crash(&self, p: u32) {
        match self {
            Backend::Threaded(sys) => sys.crash(ProcessId::from(p as usize)),
            // The scale kernel is fault-free: a vanished client just
            // stops injecting hunger.
            Backend::Scale(_) => {}
        }
    }

    fn recover(&self, p: u32) {
        match self {
            Backend::Threaded(sys) => sys.recover(ProcessId::from(p as usize)),
            Backend::Scale(_) => {}
        }
    }

    fn restart_paths(&self) -> Vec<RestartNotice> {
        match self {
            Backend::Threaded(sys) => sys.restart_paths(),
            Backend::Scale(_) => Vec::new(),
        }
    }

    fn supports_recovery(&self) -> bool {
        matches!(self, Backend::Threaded(_))
    }
}

// ---------------------------------------------------------------------
// Session table
// ---------------------------------------------------------------------

/// Where a session's live connection lives: which reactor, which slab
/// slot, and the attachment generation (slots are reused; generations
/// are not).
#[derive(Clone, Copy)]
struct ConnRef {
    reactor: usize,
    slot: usize,
    gen: u64,
}

/// Server-side session state for one dining process. Survives connection
/// deaths: `conn` detaches but the slot (and its credentials) remain —
/// until the detach-TTL reaper deletes it.
struct Session {
    session: u64,
    token: u64,
    conn: Option<ConnRef>,
    /// An admission for this slot is in flight (its recovery wait runs
    /// on a worker thread, outside the sessions lock).
    binding: bool,
    /// When the session last detached; `None` while attached. The reaper
    /// deletes detached slots older than the TTL.
    detached_at: Option<Instant>,
}

struct ServerInner {
    cfg: ServerConfig,
    graph_len: usize,
    /// `Option` so [`DaemonServer::shutdown`] can take the backend out
    /// for consuming teardown while reactors still hold the `Arc`.
    backend: Mutex<Option<Backend>>,
    sessions: Mutex<HashMap<u32, Session>>,
    /// Per-process crashed-awaiting-recovery flags. Lives *outside* the
    /// session table so reaping a crashed session does not forget that
    /// the underlying process still needs `recover` on readmission.
    crashed: Mutex<Vec<bool>>,
    /// Per-process count of restart notices already consumed, so each
    /// readmission waits for *its* notice, not a historical one. Also
    /// outside the session table, for the same reason.
    restarts_seen: Mutex<Vec<usize>>,
    /// Reactor command queues, for the pump and the acceptor. Set once
    /// at startup (reactors need the inner first).
    reactors: OnceLock<Vec<Arc<ReactorShared>>>,
    next_session: AtomicU64,
    next_generation: AtomicU64,
    token_rng: Mutex<u64>,
    running: AtomicBool,
    stats: AtomicStats,
}

/// Why a binding claim was refused.
enum ClaimError {
    BadProcess,
    AlreadyBound,
    UnknownSession,
    Busy,
}

impl ClaimError {
    /// The reject code for a `Bind` refusal.
    fn bind_code(&self) -> u8 {
        match self {
            ClaimError::BadProcess => REJECT_BAD_PROCESS,
            ClaimError::AlreadyBound => REJECT_ALREADY_BOUND,
            ClaimError::UnknownSession => REJECT_UNKNOWN_SESSION,
            ClaimError::Busy => REJECT_BUSY,
        }
    }

    /// The answer frame for a handshake refusal.
    fn handshake_frame(&self, busy_retry_ms: u32) -> Frame {
        match self {
            ClaimError::Busy => Frame::Busy {
                retry_after_ms: busy_retry_ms,
            },
            other => Frame::Reject {
                code: other.bind_code(),
            },
        }
    }
}

impl ServerInner {
    fn with_backend<R>(&self, f: impl FnOnce(&Backend) -> R) -> Option<R> {
        self.backend.lock().as_ref().map(f)
    }

    /// Claims the binding slot for `process` under the lock: validates,
    /// creates the slot if admission allows, and marks it `binding` so
    /// concurrent handshakes for the same process observe
    /// `ALREADY_BOUND`. On success returns `(crashed, restarts_seen)` of
    /// the claimed process. The caller counts `shed_busy`.
    fn claim_binding(
        &self,
        process: u32,
        check: impl FnOnce(Option<&Session>) -> Result<(), ClaimError>,
    ) -> Result<(bool, usize), ClaimError> {
        if process as usize >= self.graph_len {
            return Err(ClaimError::BadProcess);
        }
        let mut sessions = self.sessions.lock();
        let slot = sessions.get(&process);
        if slot.is_some_and(|s| s.conn.is_some() || s.binding) {
            return Err(ClaimError::AlreadyBound);
        }
        check(slot)?;
        if let Some(slot) = sessions.get_mut(&process) {
            slot.binding = true;
        } else {
            if sessions.len() >= self.cfg.max_sessions {
                return Err(ClaimError::Busy);
            }
            sessions.insert(
                process,
                Session {
                    session: 0,
                    token: 0,
                    conn: None,
                    binding: true,
                    detached_at: None,
                },
            );
        }
        let crashed = self.crashed.lock()[process as usize];
        let seen = self.restarts_seen.lock()[process as usize];
        Ok((crashed, seen))
    }

    /// Completes a claimed binding: stamps credentials and attaches the
    /// connection reference.
    #[allow(clippy::too_many_arguments)] // admission state is this wide
    fn complete_admission(
        &self,
        process: u32,
        session: u64,
        token: u64,
        seen: usize,
        path: AdmitPath,
        conn: ConnRef,
    ) {
        {
            let mut sessions = self.sessions.lock();
            let slot = sessions.get_mut(&process).expect("claimed binding exists");
            slot.session = session;
            slot.token = token;
            slot.binding = false;
            slot.detached_at = None;
            slot.conn = Some(conn);
        }
        self.crashed.lock()[process as usize] = false;
        self.restarts_seen.lock()[process as usize] = seen;
        self.count_admission(path);
    }

    /// Unwinds a claimed binding whose connection died while its
    /// admission worker was waiting: the slot detaches (the worker
    /// already revived the process, so it is no longer crashed) and no
    /// admission is counted.
    fn rollback_claim(&self, process: u32, seen: usize) {
        {
            let mut sessions = self.sessions.lock();
            if let Some(slot) = sessions.get_mut(&process) {
                slot.binding = false;
                slot.detached_at = Some(Instant::now());
            }
        }
        self.crashed.lock()[process as usize] = false;
        self.restarts_seen.lock()[process as usize] = seen;
    }

    /// Detaches `process` if `gen` still owns its attachment. Returns
    /// whether this call performed the detach (the process may have been
    /// rebound since). An ungraceful detach marks the process crashed
    /// when the backend can recover it.
    fn detach_process(&self, process: u32, gen: u64, graceful: bool) -> bool {
        {
            let mut sessions = self.sessions.lock();
            let Some(slot) = sessions.get_mut(&process) else {
                return false;
            };
            if !slot.conn.as_ref().is_some_and(|c| c.gen == gen) {
                return false;
            }
            slot.conn = None;
            slot.detached_at = Some(Instant::now());
        }
        if !graceful && self.with_backend(|b| b.supports_recovery()).unwrap_or(false) {
            self.crashed.lock()[process as usize] = true;
        }
        true
    }

    /// The detach-TTL reaper (pump thread): deletes sessions that have
    /// been detached longer than the TTL. Their credentials die with
    /// them and their admission capacity returns to the pool; a crashed
    /// process stays crashed in the backend until some future `Hello`
    /// revives it.
    fn reap_detached(&self) {
        let ttl = Duration::from_millis(self.cfg.detach_ttl_ms.max(1));
        let mut sessions = self.sessions.lock();
        let before = sessions.len();
        sessions.retain(|_, s| {
            s.conn.is_some() || s.binding || s.detached_at.is_none_or(|t| t.elapsed() < ttl)
        });
        let reaped = (before - sessions.len()) as u64;
        if reaped > 0 {
            self.stats.reaped.fetch_add(reaped, Ordering::Relaxed);
        }
    }

    /// Queues `frame` to the session bound to `p`, if any, by posting to
    /// the owning reactor.
    fn push_to(&self, p: u32, frame: &Frame) {
        let conn = {
            let sessions = self.sessions.lock();
            match sessions.get(&p).and_then(|s| s.conn.as_ref()) {
                Some(c) => *c,
                None => return,
            }
        };
        if let Some(reactors) = self.reactors.get() {
            reactors[conn.reactor].post(Cmd::Send {
                slot: conn.slot,
                gen: conn.gen,
                bytes: encode_frame(frame),
            });
        }
    }

    /// Translates a backend event into a process-tagged session frame.
    fn route(&self, e: SchedEvent) {
        let process = e.process.index() as u32;
        let frame = match e.obs {
            DiningObs::StartedEating => Frame::Granted {
                process,
                at_ms: e.time.0,
            },
            DiningObs::StoppedEating => Frame::Released {
                process,
                at_ms: e.time.0,
            },
            _ => return,
        };
        self.push_to(process, &frame);
    }

    /// Revives a crashed process and reports which recovery path its new
    /// incarnation took, by watching the runtime's restart notices.
    /// Blocking — runs on admission worker threads only, never on a
    /// reactor. Returns the updated consumed-notice count with the path.
    fn recover_and_classify(&self, p: u32, seen: usize) -> (usize, AdmitPath) {
        let pid = ProcessId::from(p as usize);
        self.with_backend(|b| b.recover(p));
        let deadline = Instant::now() + Duration::from_secs(3);
        loop {
            let mine = self
                .with_backend(|b| {
                    b.restart_paths()
                        .into_iter()
                        .filter(|n| n.process == pid)
                        .collect::<Vec<RestartNotice>>()
                })
                .unwrap_or_default();
            if mine.len() > seen {
                let path = match mine.last().expect("nonempty").event.path {
                    RestartPath::Journal { .. } => AdmitPath::Resumed,
                    RestartPath::Blank { .. } => AdmitPath::Rejoined,
                };
                return (mine.len(), path);
            }
            if Instant::now() >= deadline {
                // The notice never surfaced (system shutting down, or the
                // process was not actually crashed): claim the weak path.
                return (seen, AdmitPath::Rejoined);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn count_admission(&self, path: AdmitPath) {
        match path {
            AdmitPath::Fresh => self.stats.fresh.fetch_add(1, Ordering::Relaxed),
            AdmitPath::Resumed => self.stats.resumed.fetch_add(1, Ordering::Relaxed),
            AdmitPath::Rejoined => self.stats.rejoined.fetch_add(1, Ordering::Relaxed),
        };
    }
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

/// Cross-thread commands into a reactor, drained on eventfd wakeup.
enum Cmd {
    /// Adopt a freshly accepted connection into the slab.
    Adopt(Conn),
    /// Queue bytes to slot `slot` if generation `gen` still lives there.
    Send { slot: usize, gen: u64, bytes: Vec<u8> },
    /// An admission worker finished its recovery wait.
    AdmissionDone {
        slot: usize,
        gen: u64,
        process: u32,
        session: u64,
        token: u64,
        seen: usize,
        path: AdmitPath,
        primary: bool,
    },
    /// Close every connection and exit once the slab drains.
    Shutdown,
}

struct ReactorShared {
    queue: Mutex<VecDeque<Cmd>>,
    waker: Waker,
}

impl ReactorShared {
    fn post(&self, cmd: Cmd) {
        self.queue.lock().push_back(cmd);
        self.waker.wake();
    }
}

/// Connection lifecycle within a reactor.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the first frame (`Hello`/`Resume`), under deadline.
    Handshaking,
    /// Primary admission parked on a worker; inbound bytes buffer.
    Admitting,
    /// Serving: primary bound, frames flow, `Bind` accepted.
    Open,
    /// Terminal answer queued; close once the write buffer drains.
    Draining,
}

/// One slab entry: a nonblocking connection with its read accumulator
/// and write buffer.
struct ConnEntry {
    conn: Conn,
    /// Attachment generation shared by every process bound on this
    /// connection; stale cross-thread commands are discarded by it.
    gen: u64,
    acc: Vec<u8>,
    wq: VecDeque<Vec<u8>>,
    /// Bytes of `wq.front()` already written.
    wpos: usize,
    /// Readiness mask currently registered with the poller.
    interest: u32,
    phase: Phase,
    /// Processes bound on this connection (primary first).
    bound: Vec<u32>,
    /// Consecutive silent heartbeat sweeps; any inbound byte resets it.
    strikes: u32,
    /// Outstanding admission workers; the slot is not reusable until
    /// they all report back, even after death.
    pending: u32,
    dead: bool,
    /// Handshake deadline; `None` once admitted.
    deadline: Option<Instant>,
}

/// Flushes the write buffer as far as the socket allows. `Ok(true)` when
/// fully drained, `Ok(false)` when the socket would block, `Err` on a
/// fatal socket error.
fn flush_entry(entry: &mut ConnEntry) -> io::Result<bool> {
    while let Some(front) = entry.wq.front() {
        match entry.conn.write(&front[entry.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                entry.wpos += n;
                if entry.wpos == front.len() {
                    entry.wq.pop_front();
                    entry.wpos = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

struct Reactor {
    inner: Arc<ServerInner>,
    shared: Arc<ReactorShared>,
    index: usize,
    poller: Poller,
    slab: Vec<Option<ConnEntry>>,
    free: Vec<usize>,
    nonce: u32,
    shutting_down: bool,
}

impl Reactor {
    fn new(
        inner: Arc<ServerInner>,
        shared: Arc<ReactorShared>,
        index: usize,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.add(shared.waker.raw_fd(), EPOLLIN, WAKER_TOKEN)?;
        Ok(Reactor {
            inner,
            shared,
            index,
            poller,
            slab: Vec::new(),
            free: Vec::new(),
            nonce: 0,
            shutting_down: false,
        })
    }

    fn run(mut self) {
        let beat = Duration::from_millis(self.inner.cfg.heartbeat_ms.max(1));
        let mut next_beat = Instant::now() + beat;
        let mut events: Vec<(u64, u32)> = Vec::new();
        loop {
            self.drain_cmds();
            if self.shutting_down && self.slab.iter().all(Option::is_none) {
                break;
            }
            let now = Instant::now();
            let mut wake_at = next_beat;
            for e in self.slab.iter().flatten() {
                if let Some(d) = e.deadline {
                    if d < wake_at {
                        wake_at = d;
                    }
                }
            }
            let timeout = wake_at.saturating_duration_since(now).as_millis().min(100) as i32;
            events.clear();
            let _ = self.poller.wait(&mut events, 128, timeout);
            for i in 0..events.len() {
                let (token, ready) = events[i];
                if token == WAKER_TOKEN {
                    self.shared.waker.drain();
                } else {
                    self.handle_event(token as usize, ready);
                }
            }
            self.drain_cmds();
            let now = Instant::now();
            if now >= next_beat {
                self.heartbeat();
                next_beat = now + beat;
            }
            self.sweep_deadlines(now);
        }
    }

    fn drain_cmds(&mut self) {
        loop {
            let cmd = self.shared.queue.lock().pop_front();
            let Some(cmd) = cmd else { break };
            match cmd {
                Cmd::Adopt(conn) => self.adopt(conn),
                Cmd::Send { slot, gen, bytes } => {
                    let live = self.slab.get(slot).and_then(Option::as_ref);
                    if live.is_some_and(|e| e.gen == gen && !e.dead) {
                        self.queue_bytes(slot, bytes);
                    }
                }
                Cmd::AdmissionDone {
                    slot,
                    gen,
                    process,
                    session,
                    token,
                    seen,
                    path,
                    primary,
                } => self.admission_done(slot, gen, process, session, token, seen, path, primary),
                Cmd::Shutdown => {
                    self.shutting_down = true;
                    for slot in 0..self.slab.len() {
                        self.conn_end(slot, false);
                    }
                }
            }
        }
    }

    fn adopt(&mut self, conn: Conn) {
        if self.shutting_down {
            conn.kill();
            return;
        }
        if conn.set_nonblocking(true).is_err() {
            conn.kill();
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        let gen = self.inner.next_generation.fetch_add(1, Ordering::Relaxed);
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.poller.add(conn.raw_fd(), interest, slot as u64).is_err() {
            conn.kill();
            self.free.push(slot);
            return;
        }
        let deadline = Instant::now() + Duration::from_millis(self.inner.cfg.handshake_ms.max(1));
        self.slab[slot] = Some(ConnEntry {
            conn,
            gen,
            acc: Vec::with_capacity(256),
            wq: VecDeque::new(),
            wpos: 0,
            interest,
            phase: Phase::Handshaking,
            bound: Vec::new(),
            strikes: 0,
            pending: 0,
            dead: false,
            deadline: Some(deadline),
        });
    }

    fn handle_event(&mut self, slot: usize, ready: u32) {
        let Some(entry) = self.slab.get(slot).and_then(Option::as_ref) else {
            return;
        };
        if entry.dead {
            return;
        }
        if ready & EPOLLERR != 0 {
            if entry.phase == Phase::Handshaking {
                self.fail_handshake(slot, false);
            } else {
                self.conn_end(slot, false);
            }
            return;
        }
        if ready & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            self.do_read(slot);
        }
        let still = self.slab.get(slot).and_then(Option::as_ref);
        if ready & EPOLLOUT != 0 && still.is_some_and(|e| !e.dead) {
            self.flush(slot);
        }
    }

    /// Reads everything available into the accumulator, then decodes.
    fn do_read(&mut self, slot: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(entry) = self.slab[slot].as_mut() else {
                return;
            };
            if entry.dead {
                return;
            }
            match entry.conn.read(&mut chunk) {
                Ok(0) => {
                    // EOF without Bye: a handshake that never completed
                    // is the dialer's protocol failure; an established
                    // session crashes its processes.
                    if entry.phase == Phase::Handshaking {
                        self.fail_handshake(slot, false);
                    } else {
                        self.conn_end(slot, false);
                    }
                    return;
                }
                Ok(n) => {
                    entry.strikes = 0;
                    if entry.phase == Phase::Draining {
                        // Read-and-discard so the peer never sees a reset
                        // before our terminal answer flushes.
                        continue;
                    }
                    entry.acc.extend_from_slice(&chunk[..n]);
                    if entry.phase == Phase::Admitting && entry.acc.len() > ADMIT_ACC_CAP {
                        self.close_protocol_error(slot);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if entry.phase == Phase::Handshaking {
                        self.fail_handshake(slot, false);
                    } else {
                        self.conn_end(slot, false);
                    }
                    return;
                }
            }
        }
        self.process_frames(slot);
    }

    /// Decodes and dispatches buffered frames while the phase allows.
    fn process_frames(&mut self, slot: usize) {
        loop {
            let Some(entry) = self.slab[slot].as_mut() else {
                return;
            };
            if entry.dead || !matches!(entry.phase, Phase::Handshaking | Phase::Open) {
                return;
            }
            let frame = match decode_frame(&entry.acc) {
                Ok(Some((frame, n))) => {
                    entry.acc.drain(..n);
                    frame
                }
                Ok(None) => return,
                Err(_) => {
                    self.close_protocol_error(slot);
                    return;
                }
            };
            match entry.phase {
                Phase::Handshaking => self.on_handshake_frame(slot, frame),
                Phase::Open => self.dispatch_open(slot, frame),
                _ => unreachable!("checked above"),
            }
        }
    }

    fn on_handshake_frame(&mut self, slot: usize, frame: Frame) {
        match frame {
            Frame::Hello { process } => self.begin_primary(slot, process, None),
            Frame::Resume {
                process,
                session,
                token,
            } => self.begin_primary(slot, process, Some((session, token))),
            _ => self.close_protocol_error(slot),
        }
    }

    /// Primary admission: claim, then either complete inline (fresh or
    /// graceful resume) or park the recovery wait on a worker.
    fn begin_primary(&mut self, slot: usize, process: u32, creds: Option<(u64, u64)>) {
        let inner = Arc::clone(&self.inner);
        let claim = match creds {
            None => inner.claim_binding(process, |_| Ok(())),
            Some((session, token)) => inner.claim_binding(process, |s| match s {
                Some(s) if s.session == session && s.token == token => Ok(()),
                _ => Err(ClaimError::UnknownSession),
            }),
        };
        let (crashed, seen) = match claim {
            Ok(c) => c,
            Err(e) => {
                if matches!(e, ClaimError::Busy) {
                    inner.stats.shed_busy.fetch_add(1, Ordering::Relaxed);
                }
                let answer = e.handshake_frame(inner.cfg.busy_retry_ms);
                self.drain_close(slot, &answer);
                return;
            }
        };
        let (session, token, easy_path) = match creds {
            None => {
                let session = inner.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                let token = splitmix64(&mut inner.token_rng.lock());
                // A fresh binding — even of a slot another session left
                // behind gracefully — reports the fresh path: no state
                // was carried over on the client's behalf.
                (session, token, AdmitPath::Fresh)
            }
            // Detached gracefully (`Bye`): nothing was lost, the session
            // resumes trivially under its existing credentials.
            Some((s, t)) => (s, t, AdmitPath::Resumed),
        };
        if crashed {
            self.spawn_admission(slot, process, session, token, seen, true);
        } else {
            self.finish_admission(slot, process, session, token, seen, easy_path, true);
        }
    }

    /// Secondary admission over an established connection.
    fn on_bind(&mut self, slot: usize, process: u32) {
        let inner = Arc::clone(&self.inner);
        match inner.claim_binding(process, |_| Ok(())) {
            Err(e) => {
                if matches!(e, ClaimError::Busy) {
                    inner.stats.shed_busy.fetch_add(1, Ordering::Relaxed);
                }
                self.queue_frame(
                    slot,
                    &Frame::BindReject {
                        process,
                        code: e.bind_code(),
                    },
                );
            }
            Ok((crashed, seen)) => {
                let session = inner.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                let token = splitmix64(&mut inner.token_rng.lock());
                if crashed {
                    self.spawn_admission(slot, process, session, token, seen, false);
                } else {
                    self.finish_admission(
                        slot,
                        process,
                        session,
                        token,
                        seen,
                        AdmitPath::Fresh,
                        false,
                    );
                }
            }
        }
    }

    /// Parks a crashed-process admission on a worker thread; the reactor
    /// keeps serving and the verdict comes back as a command.
    fn spawn_admission(
        &mut self,
        slot: usize,
        process: u32,
        session: u64,
        token: u64,
        seen: usize,
        primary: bool,
    ) {
        let Some(entry) = self.slab[slot].as_mut() else {
            return;
        };
        entry.pending += 1;
        if primary {
            entry.phase = Phase::Admitting;
            entry.deadline = None;
        }
        let gen = entry.gen;
        let inner = Arc::clone(&self.inner);
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("ekbd-net-admit".into())
            .spawn(move || {
                let (seen, path) = inner.recover_and_classify(process, seen);
                shared.post(Cmd::AdmissionDone {
                    slot,
                    gen,
                    process,
                    session,
                    token,
                    seen,
                    path,
                    primary,
                });
            });
        if spawned.is_err() {
            // Could not spawn: unwind the claim and drop the dialer.
            let entry = self.slab[slot].as_mut().expect("checked above");
            entry.pending -= 1;
            self.inner.rollback_claim(process, seen);
            self.conn_end(slot, false);
        }
    }

    #[allow(clippy::too_many_arguments)] // admission state is this wide
    fn admission_done(
        &mut self,
        slot: usize,
        gen: u64,
        process: u32,
        session: u64,
        token: u64,
        seen: usize,
        path: AdmitPath,
        primary: bool,
    ) {
        let Some(entry) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            // The slot can only be freed once pending drops to zero, so
            // a missing entry means bookkeeping is broken.
            debug_assert!(false, "admission verdict for a freed slot");
            self.inner.rollback_claim(process, seen);
            return;
        };
        entry.pending -= 1;
        if entry.dead || entry.gen != gen {
            self.inner.rollback_claim(process, seen);
            self.gc(slot);
            return;
        }
        self.finish_admission(slot, process, session, token, seen, path, primary);
    }

    /// Installs a decided admission and answers the client.
    #[allow(clippy::too_many_arguments)] // admission state is this wide
    fn finish_admission(
        &mut self,
        slot: usize,
        process: u32,
        session: u64,
        token: u64,
        seen: usize,
        path: AdmitPath,
        primary: bool,
    ) {
        let Some(entry) = self.slab[slot].as_mut() else {
            return;
        };
        let gen = entry.gen;
        entry.bound.push(process);
        if primary {
            entry.phase = Phase::Open;
            entry.deadline = None;
        }
        self.inner.complete_admission(
            process,
            session,
            token,
            seen,
            path,
            ConnRef {
                reactor: self.index,
                slot,
                gen,
            },
        );
        let answer = if primary {
            Frame::Welcome {
                session,
                token,
                path,
            }
        } else {
            Frame::Bound { process, path }
        };
        self.queue_frame(slot, &answer);
        if primary {
            // Frames may have buffered behind the parked admission.
            self.process_frames(slot);
        }
    }

    fn dispatch_open(&mut self, slot: usize, frame: Frame) {
        match frame {
            Frame::Hungry { process } => {
                let bound = self.slab[slot]
                    .as_ref()
                    .is_some_and(|e| e.bound.contains(&process));
                if bound {
                    self.inner.with_backend(|b| b.make_hungry(process));
                } else {
                    self.close_protocol_error(slot);
                }
            }
            Frame::Ping { nonce } => {
                self.queue_frame(slot, &Frame::Pong { nonce });
            }
            Frame::Pong { .. } => {}
            Frame::Bind { process } => self.on_bind(slot, process),
            Frame::Unbind { process } => {
                let entry = self.slab[slot].as_mut().expect("dispatch on live slot");
                let gen = entry.gen;
                if let Some(pos) = entry.bound.iter().position(|&p| p == process) {
                    entry.bound.swap_remove(pos);
                    self.inner.detach_process(process, gen, true);
                    self.queue_frame(slot, &Frame::Unbound { process });
                } else {
                    self.close_protocol_error(slot);
                }
            }
            Frame::Bye => self.conn_end(slot, true),
            // Anything else is out of protocol mid-session.
            _ => self.close_protocol_error(slot),
        }
    }

    /// Queues an answer frame and closes once it flushes.
    fn drain_close(&mut self, slot: usize, frame: &Frame) {
        let Some(entry) = self.slab[slot].as_mut() else {
            return;
        };
        entry.phase = Phase::Draining;
        entry.deadline = None;
        entry.acc.clear();
        entry.wq.push_back(encode_frame(frame));
        self.flush(slot);
    }

    fn queue_frame(&mut self, slot: usize, frame: &Frame) {
        self.queue_bytes(slot, encode_frame(frame));
    }

    fn queue_bytes(&mut self, slot: usize, bytes: Vec<u8>) {
        let Some(entry) = self.slab[slot].as_mut() else {
            return;
        };
        if entry.dead {
            return;
        }
        if entry.wq.len() >= self.inner.cfg.send_queue.max(1) {
            // The reader is slower than its own event stream.
            self.inner.stats.shed_slow.fetch_add(1, Ordering::Relaxed);
            self.conn_end(slot, false);
            return;
        }
        entry.wq.push_back(bytes);
        self.flush(slot);
    }

    /// Writes as much as the socket takes, re-arms `EPOLLOUT` while any
    /// buffer remains, and finishes a draining close once empty.
    fn flush(&mut self, slot: usize) {
        let (fatal, drained, phase) = {
            let Some(entry) = self.slab[slot].as_mut() else {
                return;
            };
            if entry.dead {
                return;
            }
            match flush_entry(entry) {
                Ok(drained) => {
                    let want = EPOLLIN | EPOLLRDHUP | if drained { 0 } else { EPOLLOUT };
                    if want != entry.interest
                        && self
                            .poller
                            .modify(entry.conn.raw_fd(), want, slot as u64)
                            .is_ok()
                    {
                        entry.interest = want;
                    }
                    (false, drained, entry.phase)
                }
                Err(_) => (true, false, entry.phase),
            }
        };
        if fatal {
            if phase == Phase::Handshaking {
                self.fail_handshake(slot, false);
            } else {
                self.conn_end(slot, false);
            }
        } else if drained && phase == Phase::Draining {
            self.conn_end(slot, true);
        }
    }

    /// One heartbeat sweep over this reactor's open connections.
    fn heartbeat(&mut self) {
        self.nonce = self.nonce.wrapping_add(1);
        let nonce = self.nonce;
        let mut dead: Vec<usize> = Vec::new();
        let mut ping: Vec<usize> = Vec::new();
        for (slot, entry) in self.slab.iter_mut().enumerate() {
            let Some(entry) = entry else { continue };
            if entry.dead || entry.phase != Phase::Open {
                continue;
            }
            entry.strikes += 1;
            if entry.strikes > self.inner.cfg.heartbeat_strikes {
                dead.push(slot);
            } else {
                ping.push(slot);
            }
        }
        for slot in dead {
            self.inner
                .stats
                .heartbeat_drops
                .fetch_add(1, Ordering::Relaxed);
            self.conn_end(slot, false);
        }
        for slot in ping {
            self.queue_frame(slot, &Frame::Ping { nonce });
        }
    }

    /// Drops handshakes that blew their deadline: counted as timeouts,
    /// not protocol errors — silence breaks no framing rule.
    fn sweep_deadlines(&mut self, now: Instant) {
        let expired: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| {
                let e = e.as_ref()?;
                (!e.dead && e.phase == Phase::Handshaking && e.deadline.is_some_and(|d| d <= now))
                    .then_some(slot)
            })
            .collect();
        for slot in expired {
            self.fail_handshake(slot, true);
        }
    }

    fn close_protocol_error(&mut self, slot: usize) {
        self.inner
            .stats
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        self.conn_end(slot, false);
    }

    /// A handshake that never completed: `timeout` separates the silent
    /// dialer from the one that broke framing or hung up mid-word.
    fn fail_handshake(&mut self, slot: usize, timeout: bool) {
        let counter = if timeout {
            &self.inner.stats.handshake_timeouts
        } else {
            &self.inner.stats.protocol_errors
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.conn_end(slot, false);
    }

    /// The single teardown path: detaches every bound process (crashing
    /// them if ungraceful), deregisters, and hard-closes. The slot is
    /// recycled once outstanding admission workers report back.
    fn conn_end(&mut self, slot: usize, graceful: bool) {
        let (bound, gen) = {
            let Some(entry) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if entry.dead {
                return;
            }
            entry.dead = true;
            self.poller.delete(entry.conn.raw_fd());
            entry.conn.kill();
            entry.wq.clear();
            entry.acc.clear();
            (std::mem::take(&mut entry.bound), entry.gen)
        };
        for p in bound {
            if self.inner.detach_process(p, gen, graceful) && !graceful {
                self.inner.with_backend(|b| b.crash(p));
            }
        }
        self.gc(slot);
    }

    /// Frees a dead slot once no admission worker can still address it.
    fn gc(&mut self, slot: usize) {
        let freeable = self.slab[slot]
            .as_ref()
            .is_some_and(|e| e.dead && e.pending == 0);
        if freeable {
            self.slab[slot] = None;
            self.free.push(slot);
        }
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A running daemon server. Dropping it without calling
/// [`shutdown`](Self::shutdown) leaves threads running; always shut down.
pub struct DaemonServer {
    inner: Arc<ServerInner>,
    acceptor: JoinHandle<()>,
    reactors: Vec<JoinHandle<()>>,
    pump: JoinHandle<()>,
    local_addr: ServerAddr,
}

impl DaemonServer {
    /// Binds `addr`, spawns the configured backend over `graph`, and
    /// starts serving sessions.
    pub fn start(graph: ConflictGraph, addr: &ServerAddr, cfg: ServerConfig) -> io::Result<Self> {
        let (listener, local_addr) = Listener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let (backend, tap) = match cfg.backend {
            BackendSpec::Threaded => {
                let sys = ThreadedDining::spawn_recoverable(graph.clone(), cfg.runtime.clone());
                let tap = sys.tap_events();
                (Backend::Threaded(sys), tap)
            }
            BackendSpec::Scale { seed } => {
                let (svc, tap) = ScaleService::start(&graph, seed);
                (Backend::Scale(svc), tap)
            }
        };
        let n_reactors = cfg.reactor_threads.max(1);
        let inner = Arc::new(ServerInner {
            cfg,
            graph_len: graph.len(),
            backend: Mutex::new(Some(backend)),
            sessions: Mutex::new(HashMap::new()),
            crashed: Mutex::new(vec![false; graph.len()]),
            restarts_seen: Mutex::new(vec![0; graph.len()]),
            reactors: OnceLock::new(),
            next_session: AtomicU64::new(0),
            next_generation: AtomicU64::new(0),
            token_rng: Mutex::new(0x00EB_D0DA_E500_0001),
            running: AtomicBool::new(true),
            stats: AtomicStats::default(),
        });

        let mut shareds = Vec::with_capacity(n_reactors);
        let mut reactors = Vec::with_capacity(n_reactors);
        for i in 0..n_reactors {
            let shared = Arc::new(ReactorShared {
                queue: Mutex::new(VecDeque::new()),
                waker: Waker::new()?,
            });
            let reactor = Reactor::new(Arc::clone(&inner), Arc::clone(&shared), i)?;
            shareds.push(shared);
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("ekbd-net-reactor-{i}"))
                    .spawn(move || reactor.run())
                    .expect("spawn reactor thread"),
            );
        }
        inner
            .reactors
            .set(shareds)
            .unwrap_or_else(|_| unreachable!("reactors set once"));

        let acceptor = {
            let inner = Arc::clone(&inner);
            let poller = {
                let mut p = Poller::new()?;
                p.add(listener.raw_fd(), EPOLLIN, 0)?;
                // Probe once so a broken poller fails startup, not the
                // accept loop.
                let mut scratch = Vec::new();
                let _ = p.wait(&mut scratch, 1, 0)?;
                p
            };
            std::thread::Builder::new()
                .name("ekbd-net-accept".into())
                .spawn(move || {
                    let mut poller = poller;
                    let mut events: Vec<(u64, u32)> = Vec::new();
                    let mut next = 0usize;
                    while inner.running.load(Ordering::Relaxed) {
                        events.clear();
                        let _ = poller.wait(&mut events, 8, 50);
                        if events.is_empty() {
                            continue;
                        }
                        loop {
                            match listener.accept() {
                                Ok(conn) => {
                                    inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                                    let reactors =
                                        inner.reactors.get().expect("reactors initialized");
                                    reactors[next % reactors.len()].post(Cmd::Adopt(conn));
                                    next = next.wrapping_add(1);
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(_) => break,
                            }
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        let pump = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ekbd-net-pump".into())
                .spawn(move || {
                    let sweep_every = Duration::from_millis(
                        (inner.cfg.detach_ttl_ms / 4).clamp(5, 250),
                    );
                    let mut last_sweep = Instant::now();
                    while inner.running.load(Ordering::Relaxed) {
                        match tap.recv_timeout(Duration::from_millis(10)) {
                            Ok(e) => inner.route(e),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                        for e in tap.try_iter() {
                            inner.route(e);
                        }
                        if last_sweep.elapsed() >= sweep_every {
                            last_sweep = Instant::now();
                            inner.reap_detached();
                        }
                    }
                })
                .expect("spawn pump thread")
        };

        Ok(DaemonServer {
            inner,
            acceptor,
            reactors,
            pump,
            local_addr,
        })
    }

    /// The resolved listen address (TCP port `0` becomes the actual
    /// kernel-assigned port) — what clients should dial.
    pub fn local_addr(&self) -> &ServerAddr {
        &self.local_addr
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats.snapshot()
    }

    /// Stops accepting, closes every connection (crashing their bound
    /// processes, as any ungraceful disconnect does), tears the backend
    /// down, and returns the full run record. Restart notices are
    /// snapshotted *after* the runtime joins, so a recovery racing the
    /// shutdown still lands in [`ServerRun::restarts`].
    pub fn shutdown(self) -> ServerRun {
        self.inner.running.store(false, Ordering::Relaxed);
        let _ = self.acceptor.join();
        if let Some(reactors) = self.inner.reactors.get() {
            for shared in reactors {
                shared.post(Cmd::Shutdown);
            }
        }
        for handle in self.reactors {
            let _ = handle.join();
        }
        let _ = self.pump.join();
        let backend = self.inner.backend.lock().take();
        let (events, link, restarts, scale) = match backend {
            Some(Backend::Threaded(sys)) => {
                let run = sys.shutdown_complete(Duration::ZERO);
                (run.events, run.link, run.restarts, None)
            }
            Some(Backend::Scale(svc)) => {
                let (events, report) = svc.stop();
                (events, LinkSummary::default(), Vec::new(), Some(report))
            }
            None => (Vec::new(), LinkSummary::default(), Vec::new(), None),
        };
        ServerRun {
            events,
            link,
            restarts,
            scale,
            stats: self.inner.stats.snapshot(),
        }
    }
}
