//! The daemon server: a [`ThreadedDining`] system exposed over TCP or
//! Unix-domain sockets, one session per dining process.
//!
//! # Threading model
//!
//! No async runtime — thread-per-connection over `std::net`, with bounded
//! crossbeam queues as the only backpressure mechanism:
//!
//! * an **acceptor** thread polls the (nonblocking) listener and spawns
//!   one connection thread per accepted socket;
//! * each **connection** thread runs the handshake, then loops decoding
//!   frames off the socket (hungry requests, heartbeat replies, goodbye);
//! * a **writer** thread per connection drains a *bounded* send queue to
//!   the socket, so a slow or stalled reader backs pressure up into the
//!   queue instead of blocking the event pump — when the queue fills, the
//!   session is declared a slow reader and disconnected;
//! * one **event pump** thread drains the runtime's live event tap
//!   ([`ThreadedDining::tap_events`]), translating `StartedEating` /
//!   `StoppedEating` into `Granted` / `Released` frames, and runs the
//!   heartbeat sweep.
//!
//! # Fault-tolerant sessions
//!
//! A connection death is mapped onto the paper's crash-recovery fault
//! model: the bound process is crashed in the dining system, and the
//! session is kept *detached* server-side. A client reconnecting with its
//! session credentials revives the process ([`ThreadedDining::recover`]),
//! and the `Welcome` tags which recovery path the new incarnation took —
//! the journal fast-resume or the blank rejoin handshake — straight from
//! the runtime's [`RestartNotice`] stream.
//!
//! # Overload shedding
//!
//! Admission is capped ([`ServerConfig::max_sessions`]): a `Hello` past
//! the cap is answered with a clean `Busy` frame carrying a retry hint,
//! and nothing is allocated server-side. Established sessions are never
//! shed by admission pressure — only by their own slow reading or
//! heartbeat silence.

use crate::conn::{splitmix64, Conn, Listener, ServerAddr};
use crate::wire::{
    decode_frame, encode_frame, AdmitPath, Frame, REJECT_ALREADY_BOUND, REJECT_BAD_PROCESS,
    REJECT_UNKNOWN_SESSION,
};
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ekbd_dining::{DiningObs, RecoveryMsg, RestartPath};
use ekbd_graph::{ConflictGraph, ProcessId};
use ekbd_metrics::{LinkSummary, SchedEvent};
use ekbd_runtime::{RestartNotice, RuntimeConfig, ThreadedDining};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`DaemonServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The threaded dining runtime under the sessions.
    pub runtime: RuntimeConfig,
    /// Admission cap: a `Hello` that would create session number
    /// `max_sessions + 1` is shed with a `Busy` frame instead.
    pub max_sessions: usize,
    /// Capacity of each connection's bounded send queue. A session whose
    /// queue fills (a reader too slow for its own event stream) is
    /// disconnected rather than allowed to stall the pump.
    pub send_queue: usize,
    /// Heartbeat sweep period in milliseconds.
    pub heartbeat_ms: u64,
    /// Suspicion gate: consecutive silent sweeps tolerated before a
    /// session is declared dead. Any inbound frame resets the count, so a
    /// session only times out after `heartbeat_strikes × heartbeat_ms` of
    /// total silence — one missed beat is suspicion, not conviction.
    pub heartbeat_strikes: u32,
    /// Retry hint carried in `Busy` shed responses, in milliseconds.
    pub busy_retry_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            runtime: RuntimeConfig::default(),
            max_sessions: 64,
            send_queue: 64,
            heartbeat_ms: 200,
            heartbeat_strikes: 5,
            busy_retry_ms: 100,
        }
    }
}

/// Monotonic counters published by a running server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Sessions admitted fresh (first binding of a process).
    pub fresh: u64,
    /// Readmissions that rode the journal fast-resume path (or a
    /// graceful detach where nothing was lost).
    pub resumed: u64,
    /// Readmissions that fell back to the blank rejoin handshake.
    pub rejoined: u64,
    /// `Hello`s shed with `Busy` at the admission cap.
    pub shed_busy: u64,
    /// Sessions disconnected for filling their bounded send queue.
    pub shed_slow: u64,
    /// Sessions disconnected by the heartbeat suspicion gate.
    pub heartbeat_drops: u64,
    /// Connections dropped for malformed or out-of-protocol frames.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    fresh: AtomicU64,
    resumed: AtomicU64,
    rejoined: AtomicU64,
    shed_busy: AtomicU64,
    shed_slow: AtomicU64,
    heartbeat_drops: AtomicU64,
    protocol_errors: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            rejoined: self.rejoined.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            shed_slow: self.shed_slow.load(Ordering::Relaxed),
            heartbeat_drops: self.heartbeat_drops.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Everything a stopped server hands back.
pub struct ServerRun {
    /// The full scheduling trace of the dining system.
    pub events: Vec<SchedEvent>,
    /// Link-layer counters (all zero when the reliable link is off).
    pub link: LinkSummary,
    /// Every restart the runtime performed, tagged with its path.
    pub restarts: Vec<RestartNotice>,
    /// Final server counters.
    pub stats: ServerStats,
}

/// A live connection attached to a session.
struct Attached {
    /// Bounded queue feeding the connection's writer thread.
    out: Sender<Vec<u8>>,
    /// Clone of the socket, used only to hard-close it from the pump.
    stream: Conn,
    /// Consecutive silent heartbeat sweeps; reset by any inbound frame.
    strikes: Arc<AtomicU32>,
    /// Which attachment this is, so a connection thread only cleans up
    /// its own binding (the process may have been rebound since).
    generation: u64,
}

/// Server-side session state for one dining process. Survives connection
/// deaths: `conn` detaches but the slot (and its credentials) remain.
struct Session {
    session: u64,
    token: u64,
    conn: Option<Attached>,
    /// An admission for this slot is in flight (its recovery wait runs
    /// outside the sessions lock).
    binding: bool,
    /// The process was crashed by an ungraceful disconnect and awaits
    /// `recover` on the next (re)admission.
    crashed: bool,
    /// Restart notices for this process already consumed, so each
    /// readmission waits for *its* notice, not a historical one.
    restarts_seen: usize,
}

struct ServerInner {
    cfg: ServerConfig,
    graph_len: usize,
    /// `Option` so [`DaemonServer::shutdown`] can take the system out
    /// while detached connection threads still hold the `Arc`.
    sys: Mutex<Option<ThreadedDining<RecoveryMsg>>>,
    sessions: Mutex<HashMap<u32, Session>>,
    next_session: AtomicU64,
    next_generation: AtomicU64,
    token_rng: Mutex<u64>,
    running: AtomicBool,
    stats: AtomicStats,
}

impl ServerInner {
    fn with_sys<R>(&self, f: impl FnOnce(&ThreadedDining<RecoveryMsg>) -> R) -> Option<R> {
        self.sys.lock().as_ref().map(f)
    }

    /// Queues `frame` to the session bound to `p`, if any. A full queue
    /// means the reader is slower than its own event stream: the session
    /// is hard-closed so backpressure never reaches the pump.
    fn push_to(&self, p: u32, frame: &Frame) {
        let bytes = encode_frame(frame);
        let sessions = self.sessions.lock();
        let Some(att) = sessions.get(&p).and_then(|s| s.conn.as_ref()) else {
            return;
        };
        match att.out.try_send(bytes) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.stats.shed_slow.fetch_add(1, Ordering::Relaxed);
                att.stream.kill();
            }
            // Writer already gone; the reader's cleanup will detach.
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    fn route(&self, e: SchedEvent) {
        let frame = match e.obs {
            DiningObs::StartedEating => Frame::Granted { at_ms: e.time.0 },
            DiningObs::StoppedEating => Frame::Released { at_ms: e.time.0 },
            _ => return,
        };
        self.push_to(e.process.index() as u32, &frame);
    }

    /// One heartbeat sweep: every attached session earns a strike and a
    /// fresh `Ping`; a session past the strike gate is hard-closed (its
    /// connection thread then crashes the process and detaches).
    fn heartbeat_sweep(&self, nonce: u32) {
        let mut alive: Vec<u32> = Vec::new();
        {
            let sessions = self.sessions.lock();
            for (&p, slot) in sessions.iter() {
                let Some(att) = &slot.conn else { continue };
                let strikes = att.strikes.fetch_add(1, Ordering::Relaxed) + 1;
                if strikes > self.cfg.heartbeat_strikes {
                    self.stats.heartbeat_drops.fetch_add(1, Ordering::Relaxed);
                    att.stream.kill();
                } else {
                    alive.push(p);
                }
            }
        }
        for p in alive {
            self.push_to(p, &Frame::Ping { nonce });
        }
    }

    /// Revives a crashed process and reports which recovery path its new
    /// incarnation took, by watching the runtime's restart notices.
    /// Returns the updated consumed-notice count alongside the path.
    fn recover_and_classify(&self, p: u32, seen: usize) -> (usize, AdmitPath) {
        let pid = ProcessId::from(p as usize);
        self.with_sys(|sys| sys.recover(pid));
        let deadline = Instant::now() + Duration::from_secs(3);
        loop {
            let mine = self
                .with_sys(|sys| {
                    sys.restart_paths()
                        .into_iter()
                        .filter(|n| n.process == pid)
                        .collect::<Vec<RestartNotice>>()
                })
                .unwrap_or_default();
            if mine.len() > seen {
                let path = match mine.last().expect("nonempty").event.path {
                    RestartPath::Journal { .. } => AdmitPath::Resumed,
                    RestartPath::Blank { .. } => AdmitPath::Rejoined,
                };
                return (mine.len(), path);
            }
            if Instant::now() >= deadline {
                // The notice never surfaced (system shutting down, or the
                // process was not actually crashed): claim the weak path.
                return (seen, AdmitPath::Rejoined);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn count_admission(&self, path: AdmitPath) {
        match path {
            AdmitPath::Fresh => self.stats.fresh.fetch_add(1, Ordering::Relaxed),
            AdmitPath::Resumed => self.stats.resumed.fetch_add(1, Ordering::Relaxed),
            AdmitPath::Rejoined => self.stats.rejoined.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// What a connection's admission decided.
enum Admission {
    /// Session admitted: serve it.
    Admitted {
        process: u32,
        generation: u64,
        out_rx: Receiver<Vec<u8>>,
        strikes: Arc<AtomicU32>,
        welcome: Frame,
    },
    /// Answered (`Busy` / `Reject`) and done: close the connection.
    Answered(Frame),
    /// Malformed handshake: close without answering.
    Drop,
}

/// Claims the binding slot for `p` under the lock: validates, creates the
/// slot if admission allows, and marks it `binding` so concurrent
/// handshakes for the same process observe `ALREADY_BOUND`. On success
/// returns `(crashed, restarts_seen)` of the claimed slot.
fn claim_binding(
    inner: &ServerInner,
    process: u32,
    check: impl FnOnce(Option<&Session>) -> Result<(), Frame>,
) -> Result<(bool, usize), Admission> {
    if process as usize >= inner.graph_len {
        return Err(Admission::Answered(Frame::Reject {
            code: REJECT_BAD_PROCESS,
        }));
    }
    let mut sessions = inner.sessions.lock();
    let slot = sessions.get(&process);
    if slot.is_some_and(|s| s.conn.is_some() || s.binding) {
        return Err(Admission::Answered(Frame::Reject {
            code: REJECT_ALREADY_BOUND,
        }));
    }
    if let Err(answer) = check(slot) {
        return Err(Admission::Answered(answer));
    }
    if let Some(slot) = sessions.get_mut(&process) {
        slot.binding = true;
        return Ok((slot.crashed, slot.restarts_seen));
    }
    if sessions.len() >= inner.cfg.max_sessions {
        inner.stats.shed_busy.fetch_add(1, Ordering::Relaxed);
        return Err(Admission::Answered(Frame::Busy {
            retry_after_ms: inner.cfg.busy_retry_ms,
        }));
    }
    sessions.insert(
        process,
        Session {
            session: 0,
            token: 0,
            conn: None,
            binding: true,
            crashed: false,
            restarts_seen: 0,
        },
    );
    Ok((false, 0))
}

/// Completes a claimed binding: installs the attachment (with the socket
/// clone the pump uses to hard-close) and stamps credentials.
fn install(
    inner: &ServerInner,
    process: u32,
    session: u64,
    token: u64,
    restarts_seen: usize,
    path: AdmitPath,
    stream: Conn,
) -> Admission {
    let (out_tx, out_rx) = bounded::<Vec<u8>>(inner.cfg.send_queue.max(1));
    let strikes = Arc::new(AtomicU32::new(0));
    let generation = inner.next_generation.fetch_add(1, Ordering::Relaxed);
    let mut sessions = inner.sessions.lock();
    let slot = sessions.get_mut(&process).expect("claimed binding exists");
    slot.session = session;
    slot.token = token;
    slot.restarts_seen = restarts_seen;
    slot.crashed = false;
    slot.binding = false;
    slot.conn = Some(Attached {
        out: out_tx,
        stream,
        strikes: Arc::clone(&strikes),
        generation,
    });
    Admission::Admitted {
        process,
        generation,
        out_rx,
        strikes,
        welcome: Frame::Welcome {
            session,
            token,
            path,
        },
    }
}

fn admit(inner: &Arc<ServerInner>, first: Frame, stream: Conn) -> Admission {
    match first {
        Frame::Hello { process } => {
            let (crashed, seen) = match claim_binding(inner, process, |_| Ok(())) {
                Ok(c) => c,
                Err(a) => return a,
            };
            // A crashed process is revived before its fresh rebinding,
            // and the recovery path reported honestly even though the
            // client presented no credentials — the journal replays
            // regardless of who asks.
            let (seen, path) = if crashed {
                inner.recover_and_classify(process, seen)
            } else {
                (seen, AdmitPath::Fresh)
            };
            inner.count_admission(path);
            let session = inner.next_session.fetch_add(1, Ordering::Relaxed) + 1;
            let token = splitmix64(&mut inner.token_rng.lock());
            install(inner, process, session, token, seen, path, stream)
        }
        Frame::Resume {
            process,
            session,
            token,
        } => {
            let checked = claim_binding(inner, process, |slot| match slot {
                Some(s) if s.session == session && s.token == token => Ok(()),
                _ => Err(Frame::Reject {
                    code: REJECT_UNKNOWN_SESSION,
                }),
            });
            let (crashed, seen) = match checked {
                Ok(c) => c,
                Err(a) => return a,
            };
            let (seen, path) = if crashed {
                inner.recover_and_classify(process, seen)
            } else {
                // Detached gracefully (`Bye`): nothing was lost, the
                // session resumes trivially.
                (seen, AdmitPath::Resumed)
            };
            inner.count_admission(path);
            install(inner, process, session, token, seen, path, stream)
        }
        _ => {
            inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            Admission::Drop
        }
    }
}

/// How a served connection ended.
enum Ended {
    /// Client said `Bye`: detach without crashing the process.
    Graceful,
    /// EOF, socket error, malformed frame, or server shutdown: crash the
    /// process and keep the session detached for a future `Resume`.
    Ungraceful,
}

/// Reads whole frames off `stream` until `deadline`, returning the first
/// complete one (handshake helper). Leftover bytes stay in `acc`.
fn read_one_frame(stream: &mut Conn, acc: &mut Vec<u8>, deadline: Instant) -> Result<Frame, Ended> {
    let mut chunk = [0u8; 1024];
    loop {
        match decode_frame(acc) {
            Ok(Some((frame, n))) => {
                acc.drain(..n);
                return Ok(frame);
            }
            Ok(None) => {}
            Err(_) => return Err(Ended::Ungraceful),
        }
        if Instant::now() >= deadline {
            return Err(Ended::Ungraceful);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Ended::Ungraceful),
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return Err(Ended::Ungraceful),
        }
    }
}

/// One connection, handshake to goodbye. Runs on its own thread.
fn serve_conn(inner: Arc<ServerInner>, mut stream: Conn) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut acc: Vec<u8> = Vec::with_capacity(256);
    let handshake_deadline = Instant::now() + Duration::from_secs(2);
    let first = match read_one_frame(&mut stream, &mut acc, handshake_deadline) {
        Ok(f) => f,
        Err(_) => {
            inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            stream.kill();
            return;
        }
    };
    let clone_for_pump = match stream.try_clone() {
        Ok(c) => c,
        Err(_) => {
            stream.kill();
            return;
        }
    };
    let admission = admit(&inner, first, clone_for_pump);
    let (process, generation, out_rx, strikes, welcome) = match admission {
        Admission::Admitted {
            process,
            generation,
            out_rx,
            strikes,
            welcome,
        } => (process, generation, out_rx, strikes, welcome),
        Admission::Answered(frame) => {
            let _ = stream.write_all(&encode_frame(&frame));
            stream.kill();
            return;
        }
        Admission::Drop => {
            stream.kill();
            return;
        }
    };
    if stream.write_all(&encode_frame(&welcome)).is_err() {
        detach(&inner, process, generation, Ended::Ungraceful);
        stream.kill();
        return;
    }

    // Writer: owns its socket clone, drains the bounded queue until every
    // sender is gone (detach) or the socket dies.
    let writer = match stream.try_clone() {
        Ok(mut w) => std::thread::spawn(move || {
            while let Ok(bytes) = out_rx.recv() {
                if w.write_all(&bytes).is_err() {
                    break;
                }
            }
        }),
        Err(_) => {
            detach(&inner, process, generation, Ended::Ungraceful);
            stream.kill();
            return;
        }
    };

    let ended = reader_loop(&inner, &mut stream, &mut acc, process, &strikes);
    detach(&inner, process, generation, ended);
    stream.kill();
    let _ = writer.join();
}

/// Decodes and dispatches inbound frames until the connection ends.
fn reader_loop(
    inner: &Arc<ServerInner>,
    stream: &mut Conn,
    acc: &mut Vec<u8>,
    process: u32,
    strikes: &AtomicU32,
) -> Ended {
    let pid = ProcessId::from(process as usize);
    let mut chunk = [0u8; 4096];
    loop {
        loop {
            match decode_frame(acc) {
                Ok(Some((frame, n))) => {
                    acc.drain(..n);
                    strikes.store(0, Ordering::Relaxed);
                    match frame {
                        Frame::Hungry => {
                            inner.with_sys(|sys| sys.make_hungry(pid));
                        }
                        Frame::Ping { nonce } => {
                            inner.push_to(process, &Frame::Pong { nonce });
                        }
                        Frame::Pong { .. } => {}
                        Frame::Bye => return Ended::Graceful,
                        // Anything else is out of protocol mid-session.
                        _ => {
                            inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            return Ended::Ungraceful;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return Ended::Ungraceful;
                }
            }
        }
        if !inner.running.load(Ordering::Relaxed) {
            return Ended::Ungraceful;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ended::Ungraceful,
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => return Ended::Ungraceful,
        }
    }
}

/// The single cleanup path: detaches this connection from its session (if
/// it is still the current attachment) and maps the disconnect onto the
/// fault model — ungraceful ends crash the process, `Bye` does not.
fn detach(inner: &Arc<ServerInner>, process: u32, generation: u64, ended: Ended) {
    let mut crash = false;
    {
        let mut sessions = inner.sessions.lock();
        if let Some(slot) = sessions.get_mut(&process) {
            if slot
                .conn
                .as_ref()
                .is_some_and(|att| att.generation == generation)
            {
                slot.conn = None;
                if matches!(ended, Ended::Ungraceful) {
                    slot.crashed = true;
                    crash = true;
                }
            }
        }
    }
    if crash {
        inner.with_sys(|sys| sys.crash(ProcessId::from(process as usize)));
    }
}

/// A running daemon server. Dropping it without calling
/// [`shutdown`](Self::shutdown) leaves threads running; always shut down.
pub struct DaemonServer {
    inner: Arc<ServerInner>,
    acceptor: JoinHandle<()>,
    pump: JoinHandle<()>,
    local_addr: ServerAddr,
}

impl DaemonServer {
    /// Binds `addr`, spawns the dining system over `graph`, and starts
    /// serving sessions.
    pub fn start(graph: ConflictGraph, addr: &ServerAddr, cfg: ServerConfig) -> io::Result<Self> {
        let (listener, local_addr) = Listener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let sys = ThreadedDining::spawn_recoverable(graph.clone(), cfg.runtime.clone());
        let tap = sys.tap_events();
        let heartbeat_ms = cfg.heartbeat_ms.max(1);
        let inner = Arc::new(ServerInner {
            cfg,
            graph_len: graph.len(),
            sys: Mutex::new(Some(sys)),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            next_generation: AtomicU64::new(0),
            token_rng: Mutex::new(0x00EB_D0DA_E500_0001),
            running: AtomicBool::new(true),
            stats: AtomicStats::default(),
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ekbd-net-accept".into())
                .spawn(move || {
                    while inner.running.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok(stream) => {
                                inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
                                let inner = Arc::clone(&inner);
                                let _ = std::thread::Builder::new()
                                    .name("ekbd-net-conn".into())
                                    .spawn(move || serve_conn(inner, stream));
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        let pump = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ekbd-net-pump".into())
                .spawn(move || {
                    let beat = Duration::from_millis(heartbeat_ms);
                    let mut last_beat = Instant::now();
                    let mut nonce: u32 = 0;
                    while inner.running.load(Ordering::Relaxed) {
                        match tap.recv_timeout(Duration::from_millis(10)) {
                            Ok(e) => inner.route(e),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                        for e in tap.try_iter() {
                            inner.route(e);
                        }
                        if last_beat.elapsed() >= beat {
                            last_beat = Instant::now();
                            nonce = nonce.wrapping_add(1);
                            inner.heartbeat_sweep(nonce);
                        }
                    }
                })
                .expect("spawn pump thread")
        };

        Ok(DaemonServer {
            inner,
            acceptor,
            pump,
            local_addr,
        })
    }

    /// The resolved listen address (TCP port `0` becomes the actual
    /// kernel-assigned port) — what clients should dial.
    pub fn local_addr(&self) -> &ServerAddr {
        &self.local_addr
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats.snapshot()
    }

    /// Stops accepting, closes every connection, tears the dining system
    /// down, and returns the full run record.
    pub fn shutdown(self) -> ServerRun {
        self.inner.running.store(false, Ordering::Relaxed);
        {
            let sessions = self.inner.sessions.lock();
            for slot in sessions.values() {
                if let Some(att) = &slot.conn {
                    att.stream.kill();
                }
            }
        }
        let _ = self.acceptor.join();
        let _ = self.pump.join();
        // Give connection threads a beat to run their cleanup (they are
        // detached; each exits promptly once its socket is closed).
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            let any_attached = self
                .inner
                .sessions
                .lock()
                .values()
                .any(|s| s.conn.is_some());
            if !any_attached {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let sys = self.inner.sys.lock().take();
        let (events, link, restarts) = match sys {
            Some(sys) => {
                let restarts = sys.restart_paths();
                let (events, link) = sys.shutdown_with_link(Duration::ZERO);
                (events, link, restarts)
            }
            None => (Vec::new(), LinkSummary::default(), Vec::new()),
        };
        ServerRun {
            events,
            link,
            restarts,
            stats: self.inner.stats.snapshot(),
        }
    }
}
