//! EKN1 — the length-framed, CRC-covered wire codec.
//!
//! Grown from the EKJ2 journal framing (same CRC-32, same
//! fixed-little-endian discipline, same refuse-don't-guess decoding): every
//! frame is
//!
//! ```text
//! offset  size  field
//! 0       4     magic "EKN1"
//! 4       2     body length (u16 LE) — type byte + payload
//! 6       1     frame type
//! 7       L-1   payload (fixed layout per type)
//! 6+L     4     CRC-32 (LE) over bytes [0, 6+L)
//! ```
//!
//! The checksum covers the header too, so a corrupted length field cannot
//! redirect the CRC check to attacker-chosen bytes: the frame either
//! verifies exactly as framed or is rejected. Decoding is *streaming* —
//! [`decode_frame`] distinguishes "not enough bytes yet" (`Ok(None)`) from
//! malformed input (`Err`), and a server drops the connection on the
//! latter, never panicking.

use ekbd_journal::codec::crc32;
use std::fmt;

/// Frame magic: EKBD net, format 1.
pub const MAGIC: [u8; 4] = *b"EKN1";

/// Hard cap on the body (type + payload) of any frame. The largest
/// legitimate body today is [`Frame::Resume`] at 21 bytes; the cap
/// bounds what a hostile length field can make the server buffer.
pub const MAX_BODY: usize = 64;

/// Frame-level overhead: magic + length + trailing CRC.
pub const OVERHEAD: usize = 4 + 2 + 4;

/// How a session admission was satisfied, carried in [`Frame::Welcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitPath {
    /// First binding of this process: no prior session existed.
    Fresh,
    /// Reconnect rode the `JournalResume` fast path — the daemon-side
    /// process replayed its journal and kept (most of) its edge state.
    Resumed,
    /// Reconnect fell back to a blank restart + rejoin handshake.
    Rejoined,
}

impl AdmitPath {
    fn to_byte(self) -> u8 {
        match self {
            AdmitPath::Fresh => 0,
            AdmitPath::Resumed => 1,
            AdmitPath::Rejoined => 2,
        }
    }

    fn from_byte(b: u8) -> Option<AdmitPath> {
        match b {
            0 => Some(AdmitPath::Fresh),
            1 => Some(AdmitPath::Resumed),
            2 => Some(AdmitPath::Rejoined),
            _ => None,
        }
    }
}

impl fmt::Display for AdmitPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitPath::Fresh => write!(f, "fresh"),
            AdmitPath::Resumed => write!(f, "resumed"),
            AdmitPath::Rejoined => write!(f, "rejoined"),
        }
    }
}

/// Reject code: the session/token pair in a `Resume` is unknown or stale.
pub const REJECT_UNKNOWN_SESSION: u8 = 1;
/// Reject code: the process id is outside the served graph.
pub const REJECT_BAD_PROCESS: u8 = 2;
/// Reject code: the process is already bound to a live connection.
pub const REJECT_ALREADY_BOUND: u8 = 3;
/// Reject code (in [`Frame::BindReject`] only): the admission cap is
/// reached — the connection-level equivalent is a [`Frame::Busy`].
pub const REJECT_BUSY: u8 = 4;

/// One protocol frame. Timestamps are milliseconds on the *server's*
/// runtime epoch, so client-side subtraction yields server-side spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open a fresh session binding `process`.
    Hello {
        /// The dining process to bind.
        process: u32,
    },
    /// Client → server: reconnect to an existing session after a dead
    /// connection. The server revives the crashed process and reports
    /// which recovery path it took.
    Resume {
        /// The dining process of the session.
        process: u32,
        /// The session id issued by the original `Welcome`.
        session: u64,
        /// The capability token issued by the original `Welcome`.
        token: u64,
    },
    /// Server → client: admitted. Carries the credentials to `Resume`
    /// with later, plus how this admission was satisfied.
    Welcome {
        /// Session id (stable across reconnects of the same session).
        session: u64,
        /// Capability token a later `Resume` must echo.
        token: u64,
        /// How the admission was satisfied.
        path: AdmitPath,
    },
    /// Server → client: overload shed — the accept cap is reached. Try
    /// again after the hinted delay; nothing was allocated server-side.
    Busy {
        /// Server's backoff hint, in milliseconds.
        retry_after_ms: u32,
    },
    /// Server → client: terminal refusal (see the `REJECT_*` codes).
    Reject {
        /// Machine-readable refusal code.
        code: u8,
    },
    /// Client → server: the named bound process wants to eat. The process
    /// tag lets one multiplexed connection speak for several sessions.
    Hungry {
        /// Which bound process is hungry.
        process: u32,
    },
    /// Server → client: the daemon scheduled the session — it is eating.
    Granted {
        /// Which bound process the grant is for.
        process: u32,
        /// Server-epoch milliseconds when eating began.
        at_ms: u64,
    },
    /// Server → client: the eating session ended; the process thinks.
    Released {
        /// Which bound process was released.
        process: u32,
        /// Server-epoch milliseconds when eating stopped.
        at_ms: u64,
    },
    /// Heartbeat probe (either direction).
    Ping {
        /// Echoed verbatim in the matching [`Frame::Pong`].
        nonce: u32,
    },
    /// Heartbeat reply (either direction).
    Pong {
        /// The probe nonce being answered.
        nonce: u32,
    },
    /// Graceful goodbye: unbind without crashing the process.
    Bye,
    /// Client → server: bind an *additional* dining process onto this
    /// already-admitted connection (gateway/proxy multiplexing). Answered
    /// with [`Frame::Bound`] or [`Frame::BindReject`].
    Bind {
        /// The dining process to bind as a secondary session.
        process: u32,
    },
    /// Client → server: gracefully release a secondary binding made with
    /// [`Frame::Bind`] (the primary unbinds with [`Frame::Bye`]).
    /// Answered with [`Frame::Unbound`].
    Unbind {
        /// The secondary process to unbind.
        process: u32,
    },
    /// Server → client: the [`Frame::Bind`] succeeded.
    Bound {
        /// The process now bound.
        process: u32,
        /// How the binding was satisfied (a crashed detached slot is
        /// revived exactly like a `Hello` on one).
        path: AdmitPath,
    },
    /// Server → client: the [`Frame::Bind`] was refused (`REJECT_*` code,
    /// including [`REJECT_BUSY`] at the admission cap). The connection
    /// and its other bindings stay up.
    BindReject {
        /// The process whose bind was refused.
        process: u32,
        /// Machine-readable refusal code.
        code: u8,
    },
    /// Server → client: the [`Frame::Unbind`] completed; the process was
    /// detached gracefully (not crashed).
    Unbound {
        /// The process now unbound.
        process: u32,
    },
}

const T_HELLO: u8 = 1;
const T_RESUME: u8 = 2;
const T_WELCOME: u8 = 3;
const T_BUSY: u8 = 4;
const T_REJECT: u8 = 5;
const T_HUNGRY: u8 = 6;
const T_GRANTED: u8 = 7;
const T_RELEASED: u8 = 8;
const T_PING: u8 = 9;
const T_PONG: u8 = 10;
const T_BYE: u8 = 11;
const T_BIND: u8 = 12;
const T_UNBIND: u8 = 13;
const T_BOUND: u8 = 14;
const T_BIND_REJECT: u8 = 15;
const T_UNBOUND: u8 = 16;

/// Why a byte sequence failed to decode as a frame. Mirrors the journal
/// codec's refuse-don't-guess posture: any of these closes the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The length field is zero or exceeds [`MAX_BODY`].
    BadLength(u16),
    /// The trailing CRC does not match the framed bytes.
    ChecksumMismatch,
    /// Unknown frame-type byte.
    BadType(u8),
    /// The payload length does not match the frame type's layout, or a
    /// field holds an unrepresentable value.
    BadPayload(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadLength(l) => write!(f, "bad frame length {l}"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::BadType(t) => write!(f, "unknown frame type {t}"),
            WireError::BadPayload(t) => write!(f, "malformed payload for frame type {t}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Encodes `frame` as one EKN1 wire frame.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    match frame {
        Frame::Hello { process } => {
            body.push(T_HELLO);
            put_u32(&mut body, *process);
        }
        Frame::Resume {
            process,
            session,
            token,
        } => {
            body.push(T_RESUME);
            put_u32(&mut body, *process);
            put_u64(&mut body, *session);
            put_u64(&mut body, *token);
        }
        Frame::Welcome {
            session,
            token,
            path,
        } => {
            body.push(T_WELCOME);
            put_u64(&mut body, *session);
            put_u64(&mut body, *token);
            body.push(path.to_byte());
        }
        Frame::Busy { retry_after_ms } => {
            body.push(T_BUSY);
            put_u32(&mut body, *retry_after_ms);
        }
        Frame::Reject { code } => {
            body.push(T_REJECT);
            body.push(*code);
        }
        Frame::Hungry { process } => {
            body.push(T_HUNGRY);
            put_u32(&mut body, *process);
        }
        Frame::Granted { process, at_ms } => {
            body.push(T_GRANTED);
            put_u32(&mut body, *process);
            put_u64(&mut body, *at_ms);
        }
        Frame::Released { process, at_ms } => {
            body.push(T_RELEASED);
            put_u32(&mut body, *process);
            put_u64(&mut body, *at_ms);
        }
        Frame::Ping { nonce } => {
            body.push(T_PING);
            put_u32(&mut body, *nonce);
        }
        Frame::Pong { nonce } => {
            body.push(T_PONG);
            put_u32(&mut body, *nonce);
        }
        Frame::Bye => body.push(T_BYE),
        Frame::Bind { process } => {
            body.push(T_BIND);
            put_u32(&mut body, *process);
        }
        Frame::Unbind { process } => {
            body.push(T_UNBIND);
            put_u32(&mut body, *process);
        }
        Frame::Bound { process, path } => {
            body.push(T_BOUND);
            put_u32(&mut body, *process);
            body.push(path.to_byte());
        }
        Frame::BindReject { process, code } => {
            body.push(T_BIND_REJECT);
            put_u32(&mut body, *process);
            body.push(*code);
        }
        Frame::Unbound { process } => {
            body.push(T_UNBOUND);
            put_u32(&mut body, *process);
        }
    }
    debug_assert!(!body.is_empty() && body.len() <= MAX_BODY);
    let mut out = Vec::with_capacity(OVERHEAD + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(body.len() as u16).to_le_bytes());
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn parse_body(body: &[u8]) -> Result<Frame, WireError> {
    let t = body[0];
    let p = &body[1..];
    let expect = |n: usize| -> Result<(), WireError> {
        if p.len() == n {
            Ok(())
        } else {
            Err(WireError::BadPayload(t))
        }
    };
    match t {
        T_HELLO => {
            expect(4)?;
            Ok(Frame::Hello {
                process: get_u32(p),
            })
        }
        T_RESUME => {
            expect(20)?;
            Ok(Frame::Resume {
                process: get_u32(p),
                session: get_u64(&p[4..]),
                token: get_u64(&p[12..]),
            })
        }
        T_WELCOME => {
            expect(17)?;
            let path = AdmitPath::from_byte(p[16]).ok_or(WireError::BadPayload(t))?;
            Ok(Frame::Welcome {
                session: get_u64(p),
                token: get_u64(&p[8..]),
                path,
            })
        }
        T_BUSY => {
            expect(4)?;
            Ok(Frame::Busy {
                retry_after_ms: get_u32(p),
            })
        }
        T_REJECT => {
            expect(1)?;
            Ok(Frame::Reject { code: p[0] })
        }
        T_HUNGRY => {
            expect(4)?;
            Ok(Frame::Hungry {
                process: get_u32(p),
            })
        }
        T_GRANTED => {
            expect(12)?;
            Ok(Frame::Granted {
                process: get_u32(p),
                at_ms: get_u64(&p[4..]),
            })
        }
        T_RELEASED => {
            expect(12)?;
            Ok(Frame::Released {
                process: get_u32(p),
                at_ms: get_u64(&p[4..]),
            })
        }
        T_PING => {
            expect(4)?;
            Ok(Frame::Ping { nonce: get_u32(p) })
        }
        T_PONG => {
            expect(4)?;
            Ok(Frame::Pong { nonce: get_u32(p) })
        }
        T_BYE => {
            expect(0)?;
            Ok(Frame::Bye)
        }
        T_BIND => {
            expect(4)?;
            Ok(Frame::Bind {
                process: get_u32(p),
            })
        }
        T_UNBIND => {
            expect(4)?;
            Ok(Frame::Unbind {
                process: get_u32(p),
            })
        }
        T_BOUND => {
            expect(5)?;
            let path = AdmitPath::from_byte(p[4]).ok_or(WireError::BadPayload(t))?;
            Ok(Frame::Bound {
                process: get_u32(p),
                path,
            })
        }
        T_BIND_REJECT => {
            expect(5)?;
            Ok(Frame::BindReject {
                process: get_u32(p),
                code: p[4],
            })
        }
        T_UNBOUND => {
            expect(4)?;
            Ok(Frame::Unbound {
                process: get_u32(p),
            })
        }
        other => Err(WireError::BadType(other)),
    }
}

/// Streaming decode: tries to read one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete, checksum-verified frame;
///   the caller drains `consumed` bytes and may call again for the next.
/// * `Ok(None)` — `buf` is a valid proper prefix; read more bytes.
/// * `Err(_)` — `buf` can never become a valid frame; close the session.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    // Reject a wrong magic as soon as the bytes diverge — a garbage
    // stream is detected at its first byte, not after MAX_BODY of them.
    let probe = buf.len().min(4);
    if buf[..probe] != MAGIC[..probe] {
        return Err(WireError::BadMagic);
    }
    if buf.len() < 6 {
        return Ok(None);
    }
    let len = u16::from_le_bytes([buf[4], buf[5]]);
    if len == 0 || len as usize > MAX_BODY {
        return Err(WireError::BadLength(len));
    }
    let total = 6 + len as usize + 4;
    if buf.len() < total {
        return Ok(None);
    }
    let framed = &buf[..6 + len as usize];
    let want = get_u32(&buf[6 + len as usize..total]);
    if crc32(framed) != want {
        return Err(WireError::ChecksumMismatch);
    }
    let frame = parse_body(&buf[6..6 + len as usize])?;
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello { process: 7 },
            Frame::Resume {
                process: 3,
                session: 0x1122_3344_5566_7788,
                token: u64::MAX,
            },
            Frame::Welcome {
                session: 42,
                token: 0xdead_beef,
                path: AdmitPath::Resumed,
            },
            Frame::Welcome {
                session: 0,
                token: 0,
                path: AdmitPath::Fresh,
            },
            Frame::Busy {
                retry_after_ms: 250,
            },
            Frame::Reject {
                code: REJECT_UNKNOWN_SESSION,
            },
            Frame::Hungry { process: 2 },
            Frame::Granted {
                process: 2,
                at_ms: 123_456,
            },
            Frame::Released {
                process: u32::MAX,
                at_ms: u64::MAX - 1,
            },
            Frame::Ping { nonce: 9 },
            Frame::Pong { nonce: 9 },
            Frame::Bye,
            Frame::Bind { process: 17 },
            Frame::Unbind { process: 17 },
            Frame::Bound {
                process: 17,
                path: AdmitPath::Rejoined,
            },
            Frame::BindReject {
                process: 17,
                code: REJECT_BUSY,
            },
            Frame::Unbound { process: 17 },
        ]
    }

    #[test]
    fn round_trips_every_frame_type() {
        for f in samples() {
            let bytes = encode_frame(&f);
            let (back, consumed) = decode_frame(&bytes).unwrap().expect("complete frame");
            assert_eq!(back, f);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn decodes_back_to_back_frames_from_one_buffer() {
        let mut buf = Vec::new();
        for f in samples() {
            buf.extend_from_slice(&encode_frame(&f));
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < buf.len() {
            let (f, n) = decode_frame(&buf[at..]).unwrap().expect("complete");
            decoded.push(f);
            at += n;
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn every_truncation_point_is_incomplete_never_a_frame() {
        for f in samples() {
            let bytes = encode_frame(&f);
            for cut in 0..bytes.len() {
                let r = decode_frame(&bytes[..cut]);
                assert!(
                    !matches!(r, Ok(Some(_))),
                    "truncation at {cut}/{} of {f:?} produced a frame",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        for f in samples() {
            let bytes = encode_frame(&f);
            for byte in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[byte] ^= 1 << bit;
                    let r = decode_frame(&bad);
                    // A flip may leave the buffer looking incomplete (a
                    // grown length field) — that is detection too. What
                    // it may never do is yield a frame.
                    assert!(
                        !matches!(r, Ok(Some(_))),
                        "bit {bit} of byte {byte} in {f:?} survived"
                    );
                }
            }
        }
    }

    #[test]
    fn garbage_streams_are_rejected_at_the_first_divergent_byte() {
        assert_eq!(decode_frame(b"zzzz"), Err(WireError::BadMagic));
        assert_eq!(decode_frame(&[0u8; 64]), Err(WireError::BadMagic));
        // Diverging inside the magic is caught before 4 bytes arrive.
        assert_eq!(decode_frame(b"EKX"), Err(WireError::BadMagic));
        // A true prefix of the magic is just incomplete.
        assert_eq!(decode_frame(b"EK"), Ok(None));
        assert_eq!(decode_frame(b""), Ok(None));
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(decode_frame(&buf), Err(WireError::BadLength(0)));
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&(MAX_BODY as u16 + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::BadLength(MAX_BODY as u16 + 1))
        );
    }

    #[test]
    fn refixed_unknown_type_is_bad_type_not_checksum() {
        // Re-CRC a corrupted type byte: the checksum passes, so the type
        // check itself must catch it (defense in depth past the CRC).
        let mut bytes = encode_frame(&Frame::Bye);
        bytes[6] = 200;
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::BadType(200)));
    }

    #[test]
    fn refixed_bad_admit_path_is_rejected() {
        let mut bytes = encode_frame(&Frame::Welcome {
            session: 1,
            token: 2,
            path: AdmitPath::Fresh,
        });
        let n = bytes.len();
        bytes[n - 5] = 9; // the path byte, just before the CRC
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::BadPayload(3)));
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let mut bytes = encode_frame(&Frame::Hungry { process: 0 });
        bytes.extend_from_slice(b"EK"); // start of the next frame
        let (f, n) = decode_frame(&bytes).unwrap().expect("complete");
        assert_eq!(f, Frame::Hungry { process: 0 });
        assert_eq!(n, bytes.len() - 2);
    }
}
