//! Transport abstraction: one connection type over TCP or Unix-domain
//! sockets, so the session layer is transport-agnostic.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon server listens (or a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerAddr {
    /// A TCP endpoint, e.g. `127.0.0.1:7411`. Port `0` binds an
    /// ephemeral port; the resolved address is reported back by
    /// [`DaemonServer::local_addr`](crate::DaemonServer::local_addr).
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file left by a dead
    /// server is removed at bind time; a path with a *live* server
    /// behind it is refused with `AddrInUse` (the bind probe-connects
    /// first, so one server can never unlink another's socket).
    #[cfg(unix)]
    Uds(PathBuf),
}

impl fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            ServerAddr::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// One accepted or dialed connection, over either transport.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    pub(crate) fn dial(addr: &ServerAddr) -> io::Result<Conn> {
        match addr {
            ServerAddr::Tcp(a) => {
                let s = TcpStream::connect(a.as_str())?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            ServerAddr::Uds(p) => Ok(Conn::Uds(UnixStream::connect(p)?)),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(t),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_nonblocking(nb),
        }
    }

    /// The raw fd, for readiness registration. The reactor keeps the
    /// `Conn` alive strictly longer than the registration.
    pub(crate) fn raw_fd(&self) -> RawFd {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            #[cfg(unix)]
            Conn::Uds(s) => s.as_raw_fd(),
        }
    }

    /// Hard-closes both directions; any blocked read on a clone of this
    /// connection wakes with EOF or an error.
    pub(crate) fn kill(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Uds(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// A bound, listening socket over either transport.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl Listener {
    /// Binds `addr` and returns the listener plus the *resolved* address
    /// (TCP port `0` becomes the kernel-assigned port).
    pub(crate) fn bind(addr: &ServerAddr) -> io::Result<(Listener, ServerAddr)> {
        match addr {
            ServerAddr::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                let resolved = ServerAddr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), resolved))
            }
            #[cfg(unix)]
            ServerAddr::Uds(p) => {
                // Never displace a live server: probe-connect first. Only
                // a refused connection proves the file is a stale corpse
                // left by a dead server; that one is unlinked and rebound.
                match UnixStream::connect(p) {
                    Ok(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a live server already listens on {}", p.display()),
                        ));
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                        std::fs::remove_file(p)?;
                    }
                    // No file at all: plain first bind. Any other probe
                    // failure falls through to bind, which reports it.
                    Err(_) => {}
                }
                let l = UnixListener::bind(p)?;
                Ok((Listener::Uds(l), ServerAddr::Uds(p.clone())))
            }
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(nb),
        }
    }

    /// The raw fd of the listening socket, for readiness registration.
    pub(crate) fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            #[cfg(unix)]
            Listener::Uds(l) => l.as_raw_fd(),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Uds(s))
            }
        }
    }
}

/// `splitmix64` step — the workspace's stock seedable generator, used
/// here for session tokens and client-side backoff jitter.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
