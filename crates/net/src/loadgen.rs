//! Load generator: a fleet of daemon clients driving hungry/eat churn
//! against a server, with a scripted connection-kill fault plan.
//!
//! Each client binds its own dining process and runs a fixed number of
//! hungry → granted → released sessions. A deterministic subset of the
//! fleet is killed mid-run (socket hard-close, no `Bye`) and must
//! reconnect through the session-resume handshake; the report records
//! the grant latencies, every readmission (path and wall time), and the
//! shedding the fleet absorbed.

use crate::client::{ClientConfig, ClientError, DaemonClient};
use crate::conn::ServerAddr;
use crate::wire::AdmitPath;
use std::time::{Duration, Instant};

/// What the fleet should do.
#[derive(Clone, Debug)]
pub struct LoadPlan {
    /// Fleet size; client `i` binds dining process `i`, so the served
    /// graph must have at least this many processes.
    pub clients: usize,
    /// Hungry → granted → released cycles per client.
    pub sessions_per_client: usize,
    /// Think time between cycles, in milliseconds.
    pub think_ms: u64,
    /// Fraction of the fleet killed mid-run (`ceil(fraction × clients)`
    /// clients, chosen deterministically from `seed`).
    pub kill_fraction: f64,
    /// Seed for the kill choice and per-client backoff jitter.
    pub seed: u64,
    /// Per-client policy (the seed inside is overridden per client).
    pub client: ClientConfig,
    /// Per-wait deadline for a grant, in milliseconds. A client re-sends
    /// `Hungry` on expiry (a request can be lost to a crash) up to three
    /// times before recording an error.
    pub grant_timeout_ms: u64,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            clients: 4,
            sessions_per_client: 10,
            think_ms: 5,
            kill_fraction: 0.0,
            seed: 7,
            client: ClientConfig::default(),
            grant_timeout_ms: 2_000,
        }
    }
}

/// One readmission a killed client completed.
#[derive(Clone, Copy, Debug)]
pub struct Readmission {
    /// The dining process the client is bound to.
    pub process: u32,
    /// The admission path the server reported in the `Welcome`.
    pub path: AdmitPath,
    /// Wall time from the kill to being readmitted, in milliseconds.
    pub ms: u64,
}

/// What the fleet experienced.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Hungry → granted latency of every completed cycle, milliseconds
    /// (client-side wall clock, including any re-sent requests).
    pub latencies_ms: Vec<u64>,
    /// Every readmission, in completion order.
    pub readmissions: Vec<Readmission>,
    /// Clients the plan killed.
    pub killed: usize,
    /// Killed clients that got readmitted.
    pub reconnected: usize,
    /// `Busy` sheds absorbed across the fleet's retry loops.
    pub busy_retries: u64,
    /// Cycles completed across the fleet.
    pub completed_sessions: usize,
    /// Cycles the plan asked for across the fleet.
    pub planned_sessions: usize,
    /// Per-client failures, for the caller's verdict.
    pub errors: Vec<String>,
}

/// Which clients the plan kills: exactly `ceil(fraction × clients)` of
/// them, rotated by the seed so the set is deterministic but not just a
/// prefix of the id space.
pub fn kill_set(clients: usize, fraction: f64, seed: u64) -> Vec<bool> {
    let k = ((fraction.clamp(0.0, 1.0) * clients as f64).ceil()) as usize;
    let rot = if clients == 0 {
        0
    } else {
        (seed as usize) % clients
    };
    (0..clients)
        .map(|i| (i + rot) % clients.max(1) < k)
        .collect()
}

struct ClientOutcome {
    latencies_ms: Vec<u64>,
    readmission: Option<Readmission>,
    killed: bool,
    busy_retries: u64,
    completed: usize,
    error: Option<String>,
}

/// Runs the whole plan against `addr`, one thread per client, and
/// aggregates the fleet's experience.
pub fn run_load(addr: &ServerAddr, plan: &LoadPlan) -> LoadReport {
    let kills = kill_set(plan.clients, plan.kill_fraction, plan.seed);
    let mut handles = Vec::with_capacity(plan.clients);
    for (i, &kill_me) in kills.iter().enumerate() {
        let addr = addr.clone();
        let plan = plan.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("ekbd-loadgen-{i}"))
                .spawn(move || run_client(&addr, &plan, i as u32, kill_me))
                .expect("spawn loadgen client thread"),
        );
    }
    let mut report = LoadReport {
        planned_sessions: plan.clients * plan.sessions_per_client,
        ..LoadReport::default()
    };
    for h in handles {
        let outcome = match h.join() {
            Ok(o) => o,
            Err(_) => ClientOutcome {
                latencies_ms: Vec::new(),
                readmission: None,
                killed: false,
                busy_retries: 0,
                completed: 0,
                error: Some("client thread panicked".into()),
            },
        };
        report.latencies_ms.extend(outcome.latencies_ms);
        if outcome.killed {
            report.killed += 1;
        }
        if let Some(r) = outcome.readmission {
            report.reconnected += 1;
            report.readmissions.push(r);
        }
        report.busy_retries += outcome.busy_retries;
        report.completed_sessions += outcome.completed;
        if let Some(e) = outcome.error {
            report.errors.push(e);
        }
    }
    report
}

fn run_client(addr: &ServerAddr, plan: &LoadPlan, process: u32, kill_me: bool) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_ms: Vec::new(),
        readmission: None,
        killed: false,
        busy_retries: 0,
        completed: 0,
        error: None,
    };
    let cfg = ClientConfig {
        seed: plan.seed ^ (u64::from(process).wrapping_mul(0x9E37_79B9)),
        ..plan.client.clone()
    };
    let mut client = match DaemonClient::connect(addr, process, cfg) {
        Ok(c) => c,
        Err(e) => {
            outcome.error = Some(format!("p{process}: connect failed: {e}"));
            return outcome;
        }
    };
    // Mid-run kill point: after half the sessions (at least one, so the
    // session has observable pre-kill history to resume).
    let kill_at = kill_me.then(|| (plan.sessions_per_client / 2).max(1));
    for s in 0..plan.sessions_per_client {
        if kill_at == Some(s) {
            client.kill();
            outcome.killed = true;
            let t0 = Instant::now();
            match client.reconnect() {
                Ok(path) => {
                    outcome.readmission = Some(Readmission {
                        process,
                        path,
                        ms: t0.elapsed().as_millis() as u64,
                    });
                }
                Err(e) => {
                    outcome.error = Some(format!("p{process}: reconnect failed: {e}"));
                    outcome.busy_retries += client.busy_retries;
                    return outcome;
                }
            }
        }
        match run_session(&mut client, plan) {
            Ok(latency_ms) => {
                outcome.latencies_ms.push(latency_ms);
                outcome.completed += 1;
            }
            Err(e) => {
                outcome.error = Some(format!("p{process}: session {s} failed: {e}"));
                outcome.busy_retries += client.busy_retries;
                return outcome;
            }
        }
        if plan.think_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.think_ms));
        }
    }
    outcome.busy_retries += client.busy_retries;
    client.bye();
    outcome
}

/// One hungry → granted → released cycle. The grant wait re-sends
/// `Hungry` on timeout — a request sent into a just-crashed incarnation
/// is legitimately lost, and re-requesting is idempotent (the daemon
/// ignores `Hungry` unless the process is thinking).
fn run_session(client: &mut DaemonClient, plan: &LoadPlan) -> Result<u64, ClientError> {
    let t0 = Instant::now();
    let grant_timeout = Duration::from_millis(plan.grant_timeout_ms.max(1));
    let mut last = ClientError::Timeout;
    for _ in 0..3 {
        client.hungry()?;
        match client.wait_granted(grant_timeout) {
            Ok(_at) => {
                client.wait_released(grant_timeout)?;
                return Ok(t0.elapsed().as_millis() as u64);
            }
            Err(ClientError::Timeout) => last = ClientError::Timeout,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_set_is_exact_and_deterministic() {
        for clients in [1usize, 4, 7, 10] {
            for (fraction, want) in [(0.0, 0), (0.25, clients.div_ceil(4)), (1.0, clients)] {
                let set = kill_set(clients, fraction, 99);
                assert_eq!(
                    set.iter().filter(|&&k| k).count(),
                    want,
                    "clients={clients} fraction={fraction}"
                );
                assert_eq!(set, kill_set(clients, fraction, 99), "deterministic");
            }
        }
    }

    #[test]
    fn kill_set_rotates_with_the_seed() {
        let a = kill_set(8, 0.25, 0);
        let b = kill_set(8, 0.25, 3);
        assert_ne!(a, b, "different seeds pick different victims");
    }
}
