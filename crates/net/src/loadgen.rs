//! Load generator: a fleet of daemon clients driving hungry/eat churn
//! against a server, with a scripted connection-kill fault plan.
//!
//! Each client binds its own dining process — or, with
//! [`LoadPlan::multiplex`] > 1, a *block* of processes over one
//! [`MuxClient`] connection — and runs a fixed number of hungry →
//! granted → released sessions per process. A deterministic subset of
//! the fleet is killed mid-run (socket hard-close, no `Bye`) and must
//! reconnect through the session-resume handshake; the report records
//! the grant latencies, every readmission (path and wall time), and the
//! shedding the fleet absorbed.

use crate::client::{ClientConfig, ClientError, DaemonClient, MuxClient, MuxEvent};
use crate::conn::ServerAddr;
use crate::wire::AdmitPath;
use std::time::{Duration, Instant};

/// What the fleet should do.
#[derive(Clone, Debug)]
pub struct LoadPlan {
    /// Fleet size; client `i` binds dining process `i`, so the served
    /// graph must have at least this many processes.
    pub clients: usize,
    /// Hungry → granted → released cycles per client.
    pub sessions_per_client: usize,
    /// Think time between cycles, in milliseconds.
    pub think_ms: u64,
    /// Fraction of the fleet killed mid-run (`ceil(fraction × clients)`
    /// clients, chosen deterministically from `seed`).
    pub kill_fraction: f64,
    /// Seed for the kill choice and per-client backoff jitter.
    pub seed: u64,
    /// Per-client policy (the seed inside is overridden per client).
    pub client: ClientConfig,
    /// Per-wait deadline for a grant, in milliseconds. A client re-sends
    /// `Hungry` on expiry (a request can be lost to a crash) up to three
    /// times before recording an error.
    pub grant_timeout_ms: u64,
    /// Dining processes per connection. At 1 (the default) every client
    /// is a [`DaemonClient`] bound to process `i`; above 1, client `i`
    /// is a [`MuxClient`] fronting the process block
    /// `[i·multiplex, (i+1)·multiplex)` over a single socket.
    pub multiplex: usize,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            clients: 4,
            sessions_per_client: 10,
            think_ms: 5,
            kill_fraction: 0.0,
            seed: 7,
            client: ClientConfig::default(),
            grant_timeout_ms: 2_000,
            multiplex: 1,
        }
    }
}

/// One readmission a killed client completed.
#[derive(Clone, Copy, Debug)]
pub struct Readmission {
    /// The dining process the client is bound to.
    pub process: u32,
    /// The admission path the server reported in the `Welcome`.
    pub path: AdmitPath,
    /// Wall time from the kill to being readmitted, in milliseconds.
    pub ms: u64,
}

/// What the fleet experienced.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Hungry → granted latency of every completed cycle, milliseconds
    /// (client-side wall clock, including any re-sent requests).
    pub latencies_ms: Vec<u64>,
    /// Every readmission, in completion order.
    pub readmissions: Vec<Readmission>,
    /// Clients the plan killed.
    pub killed: usize,
    /// Killed clients that got readmitted.
    pub reconnected: usize,
    /// `Busy` sheds absorbed across the fleet's retry loops.
    pub busy_retries: u64,
    /// Cycles completed across the fleet.
    pub completed_sessions: usize,
    /// Cycles the plan asked for across the fleet.
    pub planned_sessions: usize,
    /// Per-client failures, for the caller's verdict.
    pub errors: Vec<String>,
}

/// Which clients the plan kills: exactly `ceil(fraction × clients)` of
/// them, rotated by the seed so the set is deterministic but not just a
/// prefix of the id space.
pub fn kill_set(clients: usize, fraction: f64, seed: u64) -> Vec<bool> {
    let k = ((fraction.clamp(0.0, 1.0) * clients as f64).ceil()) as usize;
    let rot = if clients == 0 {
        0
    } else {
        (seed as usize) % clients
    };
    (0..clients)
        .map(|i| (i + rot) % clients.max(1) < k)
        .collect()
}

#[derive(Default)]
struct ClientOutcome {
    latencies_ms: Vec<u64>,
    readmissions: Vec<Readmission>,
    killed: bool,
    busy_retries: u64,
    completed: usize,
    error: Option<String>,
}

/// Runs the whole plan against `addr`, one thread per client, and
/// aggregates the fleet's experience.
pub fn run_load(addr: &ServerAddr, plan: &LoadPlan) -> LoadReport {
    let kills = kill_set(plan.clients, plan.kill_fraction, plan.seed);
    let multiplex = plan.multiplex.max(1);
    let mut handles = Vec::with_capacity(plan.clients);
    for (i, &kill_me) in kills.iter().enumerate() {
        let addr = addr.clone();
        let plan = plan.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("ekbd-loadgen-{i}"))
                .spawn(move || {
                    if plan.multiplex.max(1) > 1 {
                        run_mux_client(&addr, &plan, i, kill_me)
                    } else {
                        run_client(&addr, &plan, i as u32, kill_me)
                    }
                })
                .expect("spawn loadgen client thread"),
        );
    }
    let mut report = LoadReport {
        planned_sessions: plan.clients * multiplex * plan.sessions_per_client,
        ..LoadReport::default()
    };
    for h in handles {
        let outcome = match h.join() {
            Ok(o) => o,
            Err(_) => ClientOutcome {
                error: Some("client thread panicked".into()),
                ..ClientOutcome::default()
            },
        };
        report.latencies_ms.extend(outcome.latencies_ms);
        if outcome.killed {
            report.killed += 1;
        }
        if !outcome.readmissions.is_empty() {
            report.reconnected += 1;
        }
        report.readmissions.extend(outcome.readmissions);
        report.busy_retries += outcome.busy_retries;
        report.completed_sessions += outcome.completed;
        if let Some(e) = outcome.error {
            report.errors.push(e);
        }
    }
    report
}

fn run_client(addr: &ServerAddr, plan: &LoadPlan, process: u32, kill_me: bool) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let cfg = ClientConfig {
        seed: plan.seed ^ (u64::from(process).wrapping_mul(0x9E37_79B9)),
        ..plan.client.clone()
    };
    let mut client = match DaemonClient::connect(addr, process, cfg) {
        Ok(c) => c,
        Err(e) => {
            outcome.error = Some(format!("p{process}: connect failed: {e}"));
            return outcome;
        }
    };
    // Mid-run kill point: after half the sessions (at least one, so the
    // session has observable pre-kill history to resume).
    let kill_at = kill_me.then(|| (plan.sessions_per_client / 2).max(1));
    for s in 0..plan.sessions_per_client {
        if kill_at == Some(s) {
            client.kill();
            outcome.killed = true;
            let t0 = Instant::now();
            match client.reconnect() {
                Ok(path) => {
                    outcome.readmissions.push(Readmission {
                        process,
                        path,
                        ms: t0.elapsed().as_millis() as u64,
                    });
                }
                Err(e) => {
                    outcome.error = Some(format!("p{process}: reconnect failed: {e}"));
                    outcome.busy_retries += client.busy_retries;
                    return outcome;
                }
            }
        }
        match run_session(&mut client, plan) {
            Ok(latency_ms) => {
                outcome.latencies_ms.push(latency_ms);
                outcome.completed += 1;
            }
            Err(e) => {
                outcome.error = Some(format!("p{process}: session {s} failed: {e}"));
                outcome.busy_retries += client.busy_retries;
                return outcome;
            }
        }
        if plan.think_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.think_ms));
        }
    }
    outcome.busy_retries += client.busy_retries;
    client.bye();
    outcome
}

/// Per-process cycle state inside a multiplexed client.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MuxState {
    Thinking,
    Hungry,
    Eating,
}

/// Drives one [`MuxClient`] fronting a block of `plan.multiplex` dining
/// processes: all cycles interleave over the single socket, demuxed by
/// the process tag on every event frame. The kill point hard-closes the
/// socket once half the block's cycles are done, which crashes *every*
/// process bound to it; one `reconnect` resumes the primary and re-binds
/// the block, and each process's readmission path is recorded.
fn run_mux_client(
    addr: &ServerAddr,
    plan: &LoadPlan,
    client_index: usize,
    kill_me: bool,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let k = plan.multiplex.max(1);
    let base = (client_index * k) as u32;
    let cfg = ClientConfig {
        seed: plan.seed ^ (u64::from(base).wrapping_mul(0x9E37_79B9)),
        ..plan.client.clone()
    };
    let mut client = match MuxClient::connect(addr, base, cfg) {
        Ok(c) => c,
        Err(e) => {
            outcome.error = Some(format!("mux{client_index}: connect failed: {e}"));
            return outcome;
        }
    };
    for j in 1..k {
        if let Err(e) = client.bind(base + j as u32) {
            outcome.error = Some(format!("mux{client_index}: bind p{} failed: {e}", base + j as u32));
            outcome.busy_retries += client.busy_retries;
            return outcome;
        }
    }

    struct Slot {
        state: MuxState,
        remaining: usize,
        ready_at: Instant,
        sent_at: Instant,
        resends: u32,
    }
    let now = Instant::now();
    let mut slots: Vec<Slot> = (0..k)
        .map(|_| Slot {
            state: MuxState::Thinking,
            remaining: plan.sessions_per_client,
            ready_at: now,
            sent_at: now,
            resends: 0,
        })
        .collect();
    let total = k * plan.sessions_per_client;
    let kill_at = kill_me.then(|| (total / 2).max(1));
    let grant_timeout = Duration::from_millis(plan.grant_timeout_ms.max(1));
    // Short poll tick so newly-thought-out processes go hungry promptly
    // even while another process's grant is pending.
    let tick = grant_timeout.min(Duration::from_millis(25));

    loop {
        if kill_at == Some(outcome.completed) && !outcome.killed {
            client.kill();
            outcome.killed = true;
            let t0 = Instant::now();
            match client.reconnect() {
                Ok(paths) => {
                    let ms = t0.elapsed().as_millis() as u64;
                    for (process, path) in paths {
                        outcome.readmissions.push(Readmission { process, path, ms });
                    }
                    // Everything in flight died with the socket; restart
                    // the interrupted cycles from thinking.
                    let now = Instant::now();
                    for s in &mut slots {
                        s.state = MuxState::Thinking;
                        s.ready_at = now;
                        s.resends = 0;
                    }
                }
                Err(e) => {
                    outcome.error = Some(format!("mux{client_index}: reconnect failed: {e}"));
                    outcome.busy_retries += client.busy_retries;
                    return outcome;
                }
            }
        }
        let now = Instant::now();
        for (j, s) in slots.iter_mut().enumerate() {
            if s.state == MuxState::Thinking && s.remaining > 0 && now >= s.ready_at {
                if let Err(e) = client.hungry(base + j as u32) {
                    outcome.error =
                        Some(format!("mux{client_index}: hungry p{} failed: {e}", base + j as u32));
                    outcome.busy_retries += client.busy_retries;
                    return outcome;
                }
                s.state = MuxState::Hungry;
                s.sent_at = now;
            }
        }
        if slots.iter().all(|s| s.remaining == 0) {
            break;
        }
        match client.next_event(tick) {
            Ok(MuxEvent::Granted { process, .. }) => {
                let j = process.wrapping_sub(base) as usize;
                if let Some(s) = slots.get_mut(j) {
                    if s.state == MuxState::Hungry {
                        s.state = MuxState::Eating;
                    }
                }
            }
            Ok(MuxEvent::Released { process, .. }) => {
                let j = process.wrapping_sub(base) as usize;
                if let Some(s) = slots.get_mut(j) {
                    if s.state == MuxState::Eating {
                        s.state = MuxState::Thinking;
                        s.remaining -= 1;
                        s.resends = 0;
                        s.ready_at = Instant::now() + Duration::from_millis(plan.think_ms);
                        outcome.latencies_ms.push(s.sent_at.elapsed().as_millis() as u64);
                        outcome.completed += 1;
                    }
                }
            }
            Err(ClientError::Timeout) => {
                // Re-request for processes whose grant wait expired — a
                // Hungry sent into a just-crashed incarnation is
                // legitimately lost and re-requesting is idempotent.
                let now = Instant::now();
                for (j, s) in slots.iter_mut().enumerate() {
                    if s.state == MuxState::Hungry && now.duration_since(s.sent_at) > grant_timeout {
                        if s.resends >= 3 {
                            outcome.error = Some(format!(
                                "mux{client_index}: p{} starved past {} resends",
                                base + j as u32,
                                s.resends
                            ));
                            outcome.busy_retries += client.busy_retries;
                            return outcome;
                        }
                        s.resends += 1;
                        s.sent_at = now;
                        if let Err(e) = client.hungry(base + j as u32) {
                            outcome.error = Some(format!(
                                "mux{client_index}: re-hungry p{} failed: {e}",
                                base + j as u32
                            ));
                            outcome.busy_retries += client.busy_retries;
                            return outcome;
                        }
                    }
                }
            }
            Err(e) => {
                outcome.error = Some(format!("mux{client_index}: event pump failed: {e}"));
                outcome.busy_retries += client.busy_retries;
                return outcome;
            }
        }
    }
    outcome.busy_retries += client.busy_retries;
    client.bye();
    outcome
}

/// One hungry → granted → released cycle. The grant wait re-sends
/// `Hungry` on timeout — a request sent into a just-crashed incarnation
/// is legitimately lost, and re-requesting is idempotent (the daemon
/// ignores `Hungry` unless the process is thinking).
fn run_session(client: &mut DaemonClient, plan: &LoadPlan) -> Result<u64, ClientError> {
    let t0 = Instant::now();
    let grant_timeout = Duration::from_millis(plan.grant_timeout_ms.max(1));
    let mut last = ClientError::Timeout;
    for _ in 0..3 {
        client.hungry()?;
        match client.wait_granted(grant_timeout) {
            Ok(_at) => {
                client.wait_released(grant_timeout)?;
                return Ok(t0.elapsed().as_millis() as u64);
            }
            Err(ClientError::Timeout) => last = ClientError::Timeout,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_set_is_exact_and_deterministic() {
        for clients in [1usize, 4, 7, 10] {
            for (fraction, want) in [(0.0, 0), (0.25, clients.div_ceil(4)), (1.0, clients)] {
                let set = kill_set(clients, fraction, 99);
                assert_eq!(
                    set.iter().filter(|&&k| k).count(),
                    want,
                    "clients={clients} fraction={fraction}"
                );
                assert_eq!(set, kill_set(clients, fraction, 99), "deterministic");
            }
        }
    }

    #[test]
    fn kill_set_rotates_with_the_seed() {
        let a = kill_set(8, 0.25, 0);
        let b = kill_set(8, 0.25, 3);
        assert_ne!(a, b, "different seeds pick different victims");
    }
}
