//! Loopback integration tests: a real [`DaemonServer`] on an ephemeral
//! port (and a Unix socket), real clients, real kills.

use ekbd_graph::topology;
use ekbd_net::{
    run_load, AdmitPath, ClientConfig, ClientError, DaemonClient, DaemonServer, LoadPlan,
    MuxClient, MuxEvent, ServerAddr, ServerConfig,
};
use ekbd_runtime::RuntimeConfig;
use std::io::Write;
use std::time::Duration;

fn ephemeral_tcp() -> ServerAddr {
    ServerAddr::Tcp("127.0.0.1:0".into())
}

fn wait_timeout() -> Duration {
    Duration::from_secs(5)
}

#[test]
fn smoke_session_eats_over_tcp() {
    let server =
        DaemonServer::start(topology::ring(5), &ephemeral_tcp(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().clone();
    let mut client = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    assert_eq!(client.admit_path(), AdmitPath::Fresh);
    client.hungry().unwrap();
    let granted_at = client.wait_granted(wait_timeout()).unwrap();
    let released_at = client.wait_released(wait_timeout()).unwrap();
    assert!(released_at >= granted_at, "release follows grant");
    client.bye();
    let run = server.shutdown();
    assert_eq!(run.stats.fresh, 1);
    assert!(
        run.events
            .iter()
            .any(|e| e.obs == ekbd_dining::DiningObs::StartedEating),
        "the dining system recorded the meal"
    );
}

#[cfg(unix)]
#[test]
fn smoke_session_eats_over_uds() {
    let path = std::env::temp_dir().join(format!("ekbd-net-uds-{}.sock", std::process::id()));
    let server = DaemonServer::start(
        topology::ring(3),
        &ServerAddr::Uds(path.clone()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().clone();
    let mut client = DaemonClient::connect(&addr, 1, ClientConfig::default()).unwrap();
    client.hungry().unwrap();
    client.wait_granted(wait_timeout()).unwrap();
    client.wait_released(wait_timeout()).unwrap();
    client.bye();
    let run = server.shutdown();
    assert_eq!(run.stats.fresh, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killed_client_resumes_its_session() {
    // With a journal directory the reconnect must ride the fast path.
    let dir = std::env::temp_dir().join(format!("ekbd-net-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ServerConfig {
        runtime: RuntimeConfig {
            journal_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(3), &ephemeral_tcp(), cfg).unwrap();
    let addr = server.local_addr().clone();
    let mut client = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    client.hungry().unwrap();
    client.wait_granted(wait_timeout()).unwrap();
    client.wait_released(wait_timeout()).unwrap();

    client.kill();
    let path = client.reconnect().expect("killed client reconnects");
    assert_ne!(path, AdmitPath::Fresh, "credentials revive the session");

    // The revived session still gets fed.
    client.hungry().unwrap();
    client.wait_granted(wait_timeout()).unwrap();
    client.wait_released(wait_timeout()).unwrap();
    client.bye();

    let run = server.shutdown();
    assert_eq!(
        run.stats.resumed + run.stats.rejoined,
        1,
        "exactly one readmission: {:?}",
        run.stats
    );
    assert_eq!(run.restarts.len(), 1, "exactly one runtime restart");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_cap_sheds_with_busy() {
    let cfg = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(5), &ephemeral_tcp(), cfg).unwrap();
    let addr = server.local_addr().clone();
    let a = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    let b = DaemonClient::connect(&addr, 1, ClientConfig::default()).unwrap();
    let over = DaemonClient::connect(
        &addr,
        2,
        ClientConfig {
            max_attempts: 2,
            ..ClientConfig::default()
        },
    );
    assert!(
        matches!(over, Err(ClientError::Busy { .. })),
        "third session must be shed: {over:?}",
    );
    a.bye();
    b.bye();
    let run = server.shutdown();
    assert!(
        run.stats.shed_busy >= 2,
        "both attempts shed: {:?}",
        run.stats
    );
    assert_eq!(run.stats.fresh, 2, "cap admitted exactly two sessions");
}

#[test]
fn rejects_bad_process_and_double_binding() {
    let server =
        DaemonServer::start(topology::ring(3), &ephemeral_tcp(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().clone();
    let out_of_range = DaemonClient::connect(&addr, 99, ClientConfig::default());
    assert!(
        matches!(
            out_of_range,
            Err(ClientError::Rejected(ekbd_net::wire::REJECT_BAD_PROCESS))
        ),
        "process outside the graph is rejected: {out_of_range:?}",
    );
    let first = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    let second = DaemonClient::connect(&addr, 0, ClientConfig::default());
    assert!(
        matches!(
            second,
            Err(ClientError::Rejected(ekbd_net::wire::REJECT_ALREADY_BOUND))
        ),
        "a live binding refuses a second connection: {second:?}",
    );
    first.bye();
    server.shutdown();
}

#[test]
fn malformed_frames_close_the_session_never_the_server() {
    let server =
        DaemonServer::start(topology::ring(3), &ephemeral_tcp(), ServerConfig::default()).unwrap();
    let ServerAddr::Tcp(raw_addr) = server.local_addr().clone() else {
        unreachable!("tcp server")
    };

    // Garbage at handshake time.
    let mut garbage = std::net::TcpStream::connect(&raw_addr).unwrap();
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    // Valid magic, hostile length field.
    let mut hostile = std::net::TcpStream::connect(&raw_addr).unwrap();
    let mut frame = b"EKN1".to_vec();
    frame.extend_from_slice(&u16::MAX.to_le_bytes());
    hostile.write_all(&frame).unwrap();
    // A correct session right afterwards still works: the server survived.
    let addr = server.local_addr().clone();
    let mut client = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    client.hungry().unwrap();
    client.wait_granted(wait_timeout()).unwrap();
    client.wait_released(wait_timeout()).unwrap();

    // Mid-session garbage kills only that session.
    let mut alive_then_garbage = DaemonClient::connect(&addr, 1, ClientConfig::default()).unwrap();
    alive_then_garbage.hungry().unwrap();
    alive_then_garbage.wait_granted(wait_timeout()).unwrap();
    drop(garbage);
    drop(hostile);

    client.bye();
    let run = server.shutdown();
    assert!(
        run.stats.protocol_errors >= 2,
        "both hostile connections were counted: {:?}",
        run.stats
    );
}

#[test]
fn mux_client_drives_many_processes_over_one_socket() {
    let server =
        DaemonServer::start(topology::ring(6), &ephemeral_tcp(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().clone();
    let mut mux = MuxClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    for p in 1..=3u32 {
        assert_eq!(mux.bind(p).unwrap(), AdmitPath::Fresh);
    }
    assert_eq!(mux.processes(), vec![0, 1, 2, 3]);

    // All four go hungry on the same socket; every one must eat.
    for p in 0..=3u32 {
        mux.hungry(p).unwrap();
    }
    let mut ate = [false; 4];
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ate.iter().any(|&e| !e) {
        assert!(std::time::Instant::now() < deadline, "mux fleet starved");
        match mux.next_event(wait_timeout()).unwrap() {
            MuxEvent::Released { process, .. } => ate[process as usize] = true,
            MuxEvent::Granted { .. } => {}
        }
    }

    // Unbinding a secondary is graceful: no crash, no restart.
    mux.unbind(3).unwrap();
    assert!(mux.hungry(3).is_err(), "unbound process refuses requests");
    mux.bye();
    let run = server.shutdown();
    assert_eq!(run.stats.fresh, 4, "one Hello + three Binds: {:?}", run.stats);
    assert_eq!(run.restarts.len(), 0, "graceful teardown crashed nobody");
}

#[test]
fn mux_kill_crashes_block_and_reconnect_rebinds_it() {
    let dir = std::env::temp_dir().join(format!("ekbd-net-mux-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ServerConfig {
        runtime: RuntimeConfig {
            journal_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(4), &ephemeral_tcp(), cfg).unwrap();
    let addr = server.local_addr().clone();
    let mut mux = MuxClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    mux.bind(1).unwrap();
    mux.bind(2).unwrap();
    mux.hungry(0).unwrap();
    loop {
        if let MuxEvent::Released { process: 0, .. } = mux.next_event(wait_timeout()).unwrap() {
            break;
        }
    }

    mux.kill();
    let paths = mux.reconnect().expect("mux reconnect");
    assert_eq!(paths.len(), 3, "primary and both secondaries readmitted");
    for (p, path) in &paths {
        assert_ne!(
            *path,
            AdmitPath::Fresh,
            "p{p} readmitted with history, not fresh"
        );
    }

    // The revived block still gets fed.
    mux.hungry(1).unwrap();
    loop {
        if let MuxEvent::Released { process: 1, .. } = mux.next_event(wait_timeout()).unwrap() {
            break;
        }
    }
    mux.bye();
    let run = server.shutdown();
    assert_eq!(
        run.stats.resumed + run.stats.rejoined,
        3,
        "all three bindings were readmissions: {:?}",
        run.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_multiplexed_fleet_completes() {
    let server =
        DaemonServer::start(topology::ring(8), &ephemeral_tcp(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().clone();
    let plan = LoadPlan {
        clients: 2,
        sessions_per_client: 3,
        think_ms: 1,
        kill_fraction: 0.0,
        seed: 5,
        grant_timeout_ms: 5_000,
        multiplex: 4,
        ..LoadPlan::default()
    };
    let report = run_load(&addr, &plan);
    let run = server.shutdown();
    assert_eq!(report.errors, Vec::<String>::new(), "no client failed");
    assert_eq!(report.planned_sessions, 2 * 4 * 3);
    assert_eq!(
        report.completed_sessions, report.planned_sessions,
        "every multiplexed cycle completed"
    );
    assert_eq!(run.stats.fresh, 8, "two connections admitted eight processes");
}

#[test]
fn loadgen_fleet_with_kills_completes_and_readmits() {
    let dir = std::env::temp_dir().join(format!("ekbd-net-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ServerConfig {
        runtime: RuntimeConfig {
            journal_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(4), &ephemeral_tcp(), cfg).unwrap();
    let addr = server.local_addr().clone();
    let plan = LoadPlan {
        clients: 4,
        sessions_per_client: 4,
        think_ms: 2,
        kill_fraction: 0.5,
        seed: 11,
        grant_timeout_ms: 5_000,
        ..LoadPlan::default()
    };
    let report = run_load(&addr, &plan);
    let run = server.shutdown();
    assert_eq!(report.errors, Vec::<String>::new(), "no client failed");
    assert_eq!(report.killed, 2, "half the fleet was killed");
    assert_eq!(report.reconnected, 2, "every killed client reconnected");
    assert_eq!(
        report.completed_sessions, report.planned_sessions,
        "wait-freedom end to end: every planned session completed"
    );
    assert_eq!(report.readmissions.len(), 2);
    for r in &report.readmissions {
        assert_ne!(r.path, AdmitPath::Fresh, "readmission kept the session");
    }
    assert_eq!(
        run.stats.resumed + run.stats.rejoined,
        2,
        "server agrees on the readmission count: {:?}",
        run.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}
