//! Session-lifecycle regression tests.
//!
//! Each test here pins one bug from the lifecycle sweep that shipped
//! with the reactor rewrite, and fails on the pre-sweep code:
//!
//! 1. detached sessions were never reaped, so a churned (crash-stop)
//!    fleet permanently exhausted the admission cap;
//! 2. a `Busy` shed was slept on twice — once inside the dial on the
//!    server's hint, once in the retry loop's backoff — and the retry
//!    loops also slept after the *final* failed attempt;
//! 3. `shutdown` snapshotted restart notices before runtime teardown,
//!    dropping a restart racing the shutdown;
//! 4. the Unix-socket listener unconditionally unlinked its path, so a
//!    second server silently stole a live server's socket;
//! 5. a connected-but-silent dialer was counted as a protocol error,
//!    polluting the misbehavior signal operators alert on.

use ekbd_graph::topology;
use ekbd_net::{ClientConfig, ClientError, DaemonClient, DaemonServer, ServerAddr, ServerConfig};
use ekbd_runtime::{RuntimeConfig, ThreadedDining};
use ekbd_sim::ProcessId;
use std::time::{Duration, Instant};

fn ephemeral_tcp() -> ServerAddr {
    ServerAddr::Tcp("127.0.0.1:0".into())
}

/// Satellite 1: crash-stop clients (killed, never resuming) must not
/// hold their admission slots forever. With a short detach TTL, a
/// churned fleet's slots return to the pool and later clients get in.
#[test]
fn churned_fleet_does_not_exhaust_admission() {
    let cfg = ServerConfig {
        max_sessions: 2,
        detach_ttl_ms: 50,
        busy_retry_ms: 20,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(8), &ephemeral_tcp(), cfg).unwrap();
    let addr = server.local_addr().clone();

    // Wave one fills the cap, then crash-stops without a Bye.
    let mut a = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    let mut b = DaemonClient::connect(&addr, 1, ClientConfig::default()).unwrap();
    a.kill();
    b.kill();

    // Wave two targets different processes; without the reaper the dead
    // sessions pin both slots and every attempt here sheds Busy until
    // the retry budget runs out.
    let retrying = ClientConfig {
        base_backoff_ms: 20,
        max_backoff_ms: 100,
        max_attempts: 12,
        ..ClientConfig::default()
    };
    let c = DaemonClient::connect(&addr, 4, retrying.clone())
        .expect("slot reclaimed from crash-stopped client");
    let d = DaemonClient::connect(&addr, 5, retrying).expect("second slot reclaimed too");
    c.bye();
    d.bye();

    let stats = server.stats();
    assert!(
        stats.reaped >= 2,
        "both dead sessions were reaped: {stats:?}"
    );
    server.shutdown();
}

/// Satellite 2: one shed, one sleep. The dial must return `Busy` with
/// the server's hint immediately; the retry loop honors
/// `max(hint, backoff)` once per retry and never sleeps after the final
/// attempt. The pre-fix client stacked hint + backoff per attempt *and*
/// slept once more before giving up, so its wall time here was
/// ≥ 3 × 200 ms of hint alone plus backoff — comfortably past the bound
/// this test enforces.
#[test]
fn busy_shed_sleeps_the_hint_once_and_never_after_the_last_attempt() {
    let cfg = ServerConfig {
        max_sessions: 0,
        busy_retry_ms: 200,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(3), &ephemeral_tcp(), cfg).unwrap();
    let addr = server.local_addr().clone();
    let client_cfg = ClientConfig {
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        max_attempts: 3,
        ..ClientConfig::default()
    };
    let t0 = Instant::now();
    let out = DaemonClient::connect(&addr, 0, client_cfg);
    let elapsed = t0.elapsed();
    assert!(
        matches!(out, Err(ClientError::Busy { hint_ms: 200 })),
        "shed with the server's hint attached: {out:?}"
    );
    // Three attempts, two inter-attempt sleeps of max(200, ~1) ms each:
    // the hint is honored (≥ ~400 ms) but neither stacked with the
    // backoff nor slept a third, terminal time (< 520 ms leaves slack
    // for dial overhead while still failing the double-sleep code).
    assert!(
        elapsed >= Duration::from_millis(350),
        "the server's retry hint was honored: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_millis(520),
        "no stacked or terminal backoff sleeps: {elapsed:?}"
    );
    server.shutdown();
}

/// Satellite 3: a restart racing shutdown must appear in the final run.
/// `Recover` is ordered before `Shutdown` in each process mailbox, so
/// with the snapshot taken *after* teardown the notice is guaranteed;
/// the pre-fix code snapshotted before teardown and lost it.
#[test]
fn shutdown_snapshot_includes_restarts_racing_the_teardown() {
    let sys = ThreadedDining::spawn_recoverable(topology::ring(3), RuntimeConfig::default());
    sys.crash(ProcessId(0));
    // No settling sleep: the recover is still in flight when shutdown
    // begins, which is exactly the race.
    sys.recover(ProcessId(0));
    let run = sys.shutdown_complete(Duration::ZERO);
    assert_eq!(
        run.restarts.len(),
        1,
        "the racing restart must be in the snapshot: {:?}",
        run.restarts
    );
}

/// Satellite 4, stale half: a leftover socket file from a dead server
/// must not block a new one — probe-connect refuses, unlink, bind.
#[cfg(unix)]
#[test]
fn uds_bind_clears_a_stale_socket_file() {
    let path = std::env::temp_dir().join(format!("ekbd-net-stale-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // A bound-then-dropped listener leaves the file behind with nobody
    // accepting — the crashed-server shape.
    drop(std::os::unix::net::UnixListener::bind(&path).unwrap());
    assert!(path.exists(), "stale socket file is on disk");

    let server = DaemonServer::start(
        topology::ring(3),
        &ServerAddr::Uds(path.clone()),
        ServerConfig::default(),
    )
    .expect("stale file is cleared and the bind succeeds");
    let addr = server.local_addr().clone();
    let client = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    client.bye();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Satellite 4, live half: a second server must *not* steal the socket
/// out from under a running one. The probe connects, so the bind is
/// refused with `AddrInUse` — and the first server keeps serving.
#[cfg(unix)]
#[test]
fn uds_bind_refuses_a_live_server() {
    let path = std::env::temp_dir().join(format!("ekbd-net-live-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = DaemonServer::start(
        topology::ring(3),
        &ServerAddr::Uds(path.clone()),
        ServerConfig::default(),
    )
    .unwrap();

    let second = DaemonServer::start(
        topology::ring(3),
        &ServerAddr::Uds(path.clone()),
        ServerConfig::default(),
    );
    match second {
        Err(e) => assert_eq!(
            e.kind(),
            std::io::ErrorKind::AddrInUse,
            "live server is refused, not stolen: {e}"
        ),
        Ok(_) => panic!("second server must not bind over a live one"),
    }

    // The first server is unharmed — its socket file still answers.
    let addr = server.local_addr().clone();
    let mut client = DaemonClient::connect(&addr, 0, ClientConfig::default()).unwrap();
    client.hungry().unwrap();
    client.wait_granted(Duration::from_secs(5)).unwrap();
    client.wait_released(Duration::from_secs(5)).unwrap();
    client.bye();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Satellite 5: a dialer that connects and never speaks is dropped at
/// the handshake deadline and counted as a *timeout*, not a protocol
/// error — it broke no framing rule. The pre-fix server folded both
/// into `protocol_errors`, polluting the signal operators alert on.
#[test]
fn silent_dialer_counts_as_handshake_timeout_not_protocol_error() {
    let cfg = ServerConfig {
        handshake_ms: 100,
        ..ServerConfig::default()
    };
    let server = DaemonServer::start(topology::ring(3), &ephemeral_tcp(), cfg).unwrap();
    let ServerAddr::Tcp(raw_addr) = server.local_addr().clone() else {
        unreachable!("tcp server")
    };

    let silent = std::net::TcpStream::connect(&raw_addr).unwrap();
    // Hold the socket open, say nothing, and give the deadline sweep
    // time to convict.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.handshake_timeouts == 1 {
            assert_eq!(
                stats.protocol_errors, 0,
                "silence is not a framing violation: {stats:?}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "handshake sweep never fired: {stats:?}",
            stats = server.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(silent);
    server.shutdown();
}
