//! Property-based tests of the EKN1 wire codec: encode ∘ decode identity
//! over arbitrary frames, plus exhaustive corruption sweeps — every
//! truncation point and every single-bit flip of every generated frame
//! must be *detected*, never decoded as a (different) frame.

use ekbd_net::wire::{decode_frame, encode_frame, AdmitPath, Frame};
use proptest::prelude::*;

/// Strategy: an arbitrary protocol frame. The vendored proptest shim has
/// no enum strategies, so the variant is drawn as a small integer and the
/// fields from full-width ranges.
fn frame() -> impl Strategy<Value = Frame> {
    (
        0u8..16,
        0u32..u32::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u8..3,
    )
        .prop_map(|(variant, small, wide_a, wide_b, path)| {
            let admit = match path {
                0 => AdmitPath::Fresh,
                1 => AdmitPath::Resumed,
                _ => AdmitPath::Rejoined,
            };
            match variant {
                0 => Frame::Hello { process: small },
                1 => Frame::Resume {
                    process: small,
                    session: wide_a,
                    token: wide_b,
                },
                2 => Frame::Welcome {
                    session: wide_a,
                    token: wide_b,
                    path: admit,
                },
                3 => Frame::Busy {
                    retry_after_ms: small,
                },
                4 => Frame::Reject { code: path },
                5 => Frame::Hungry { process: small },
                6 => Frame::Granted {
                    process: small,
                    at_ms: wide_a,
                },
                7 => Frame::Released {
                    process: small,
                    at_ms: wide_a,
                },
                8 => Frame::Ping { nonce: small },
                9 => Frame::Pong { nonce: small },
                10 => Frame::Bye,
                11 => Frame::Bind { process: small },
                12 => Frame::Unbind { process: small },
                13 => Frame::Bound {
                    process: small,
                    path: admit,
                },
                14 => Frame::BindReject {
                    process: small,
                    code: path,
                },
                _ => Frame::Unbound { process: small },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trip identity: decode(encode(f)) == f, consuming exactly
    /// the encoded bytes.
    #[test]
    fn encode_decode_identity(f in frame()) {
        let bytes = encode_frame(&f);
        let (back, consumed) = decode_frame(&bytes)
            .expect("own encoding is well-formed")
            .expect("own encoding is complete");
        prop_assert_eq!(back, f);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Every proper prefix is either "incomplete, read more" or an
    /// outright error — never a decoded frame.
    #[test]
    fn every_truncation_point_is_detected(f in frame()) {
        let bytes = encode_frame(&f);
        for cut in 0..bytes.len() {
            let r = decode_frame(&bytes[..cut]);
            prop_assert!(
                !matches!(r, Ok(Some(_))),
                "truncation to {} of {} bytes decoded a frame",
                cut,
                bytes.len()
            );
        }
    }

    /// Single-bit rot anywhere in a frame is always detected: the CRC
    /// covers the header and body, so no flip may yield a frame. (A flip
    /// that enlarges the length field legitimately reads as incomplete —
    /// that too is detection, and more bytes only lead to a CRC error.)
    #[test]
    fn every_single_bit_flip_is_detected(f in frame()) {
        let bytes = encode_frame(&f);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut rotted = bytes.clone();
                rotted[byte] ^= 1 << bit;
                let r = decode_frame(&rotted);
                prop_assert!(
                    !matches!(r, Ok(Some(_))),
                    "flip at byte {} bit {} decoded as a frame",
                    byte,
                    bit
                );
            }
        }
    }

    /// Two frames back to back decode independently: corruption confined
    /// to the second never disturbs the first.
    #[test]
    fn streaming_resynchronizes_frame_boundaries(a in frame(), b in frame()) {
        let mut bytes = encode_frame(&a);
        let first_len = bytes.len();
        bytes.extend_from_slice(&encode_frame(&b));
        let (first, n) = decode_frame(&bytes).unwrap().expect("first frame complete");
        prop_assert_eq!(first, a);
        prop_assert_eq!(n, first_len);
        let (second, m) = decode_frame(&bytes[n..]).unwrap().expect("second frame complete");
        prop_assert_eq!(second, b);
        prop_assert_eq!(n + m, bytes.len());
    }
}
