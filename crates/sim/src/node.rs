use crate::obs::StreamSink;
use crate::time::{Duration, Time};
use crate::trace::Observation;
use crate::ProcessId;
use rand::rngs::StdRng;

/// An input delivered to a [`Node`] by the simulator.
#[derive(Debug)]
pub enum NodeEvent<M, E> {
    /// Fired once for every process at time zero, before any other event.
    Start,
    /// A message arrived on the FIFO channel `from → self`.
    Message {
        /// The sender.
        from: ProcessId,
        /// The payload.
        msg: M,
    },
    /// A timer set via [`Context::set_timer`] fired.
    Timer {
        /// The tag passed to `set_timer`.
        tag: u64,
    },
    /// An externally scheduled event (workload input such as "become
    /// hungry" or "stop eating") arrived.
    External(E),
    /// The process restarts after a crash (crash-recovery fault model).
    ///
    /// All volatile state is presumed lost; the node must rebuild itself
    /// from its immutable configuration. `incarnation` is the simulator's
    /// per-process restart counter (the paper-standard "one counter in
    /// stable storage" assumption), strictly increasing across restarts.
    Recover {
        /// 1-based restart count; strictly greater than any value this
        /// process observed in a previous life.
        incarnation: u64,
        /// When `Some`, the restarted state is adversarially corrupted:
        /// the node should derive deterministic bit flips from this
        /// entropy instead of rebooting blank.
        corruption: Option<u64>,
    },
    /// A transient fault flips state bits of this (live) process.
    ///
    /// `entropy` is a deterministic per-event random word the node uses to
    /// decide which bits to flip.
    Corrupt {
        /// Seeded entropy word for the corruption.
        entropy: u64,
    },
    /// The (initially absent) process boots into the system at runtime
    /// (dynamic membership). Delivered instead of [`NodeEvent::Start`];
    /// the node initializes itself and introduces itself to its present
    /// neighbors.
    Join {
        /// The simulator's per-process restart counter, shared with
        /// [`NodeEvent::Recover`]: a joiner boots at incarnation ≥ 1, so a
        /// later crash + recovery of the same process keeps the counter
        /// strictly increasing.
        incarnation: u64,
    },
    /// The process is leaving the system gracefully; this is the last
    /// event it will ever handle. Outgoing sends still go out, so the node
    /// should discharge held resources (forks, deferred acks) here.
    Leave,
}

/// A process in the simulated system.
///
/// Nodes are *pure state machines*: all interaction with the outside world
/// goes through the [`Context`] passed to [`Node::handle`]. This is what
/// lets the same algorithm code run unchanged on the discrete-event
/// simulator and on the threaded real-time runtime.
pub trait Node {
    /// Message type exchanged between nodes. `Clone` is required so the
    /// network can inject duplicate copies under a fault plan.
    type Msg: Clone;
    /// Externally injected events (the workload interface).
    type Ext;
    /// Observations emitted for metrics/checkers.
    type Obs;

    /// Handles one event, possibly sending messages, setting timers, and
    /// emitting observations via `ctx`.
    fn handle(
        &mut self,
        ev: NodeEvent<Self::Msg, Self::Ext>,
        ctx: &mut Context<'_, Self::Msg, Self::Obs>,
    );
}

/// Where [`Context::observe`] writes.
///
/// The legacy engine buffers raw observations per dispatch and lets the
/// simulator wrap them afterwards (the pre-optimization cost model); the
/// indexed engine hands the context the simulator's log directly, so each
/// observation is stamped and stored exactly once.
pub(crate) enum ObsSink<'a, O> {
    /// Per-dispatch scratch, drained by the simulator after the handler.
    Scratch(Vec<O>),
    /// The simulator's observation log, written in place.
    Direct(&'a mut Vec<Observation<O>>),
    /// A streaming aggregator (the scale tier): each observation is
    /// consumed immediately and never stored densely.
    Stream(&'a mut dyn StreamSink<O>),
}

/// The effect interface handed to [`Node::handle`].
///
/// Effects are buffered and applied by the simulator after the handler
/// returns, so a handler always sees a consistent snapshot of time.
pub struct Context<'a, M, O> {
    pub(crate) id: ProcessId,
    pub(crate) now: Time,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) timers: Vec<(Duration, u64)>,
    pub(crate) observations: ObsSink<'a, O>,
}

impl<'a, M, O> Context<'a, M, O> {
    /// Builds a context around caller-owned effect buffers, so the simulator
    /// can recycle them across events instead of allocating per dispatch.
    pub(crate) fn with_buffers(
        id: ProcessId,
        now: Time,
        rng: &'a mut StdRng,
        sends: Vec<(ProcessId, M)>,
        timers: Vec<(Duration, u64)>,
        observations: ObsSink<'a, O>,
    ) -> Self {
        Context {
            id,
            now,
            rng,
            sends,
            timers,
            observations,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` over the reliable FIFO channel.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Arranges a [`NodeEvent::Timer`] with `tag` to fire after `delay`
    /// ticks (at least one tick in the future).
    pub fn set_timer(&mut self, delay: Duration, tag: u64) {
        self.timers.push((delay.max(1), tag));
    }

    /// Emits an observation for the metrics layer.
    pub fn observe(&mut self, obs: O) {
        match &mut self.observations {
            ObsSink::Scratch(v) => v.push(obs),
            ObsSink::Direct(out) => out.push(Observation {
                time: self.now,
                process: self.id,
                obs,
            }),
            ObsSink::Stream(sink) => sink.record(self.now, self.id, obs),
        }
    }

    /// Deterministic per-simulation random source.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_effects() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx: Context<'_, &str, u32> = Context::with_buffers(
            ProcessId(2),
            Time(7),
            &mut rng,
            Vec::new(),
            Vec::new(),
            ObsSink::Scratch(Vec::new()),
        );
        assert_eq!(ctx.id(), ProcessId(2));
        assert_eq!(ctx.now(), Time(7));
        ctx.send(ProcessId(0), "hi");
        ctx.set_timer(0, 9); // clamped to 1
        ctx.observe(41);
        assert_eq!(ctx.sends, vec![(ProcessId(0), "hi")]);
        assert_eq!(ctx.timers, vec![(1, 9)]);
        match ctx.observations {
            ObsSink::Scratch(v) => assert_eq!(v, vec![41]),
            _ => panic!("this context buffers in scratch"),
        }
    }

    #[test]
    fn direct_sink_stamps_in_place() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut log: Vec<Observation<u32>> = Vec::new();
        let mut ctx: Context<'_, &str, u32> = Context::with_buffers(
            ProcessId(3),
            Time(11),
            &mut rng,
            Vec::new(),
            Vec::new(),
            ObsSink::Direct(&mut log),
        );
        ctx.observe(7);
        drop(ctx);
        assert_eq!(log.len(), 1);
        assert_eq!(
            (log[0].time, log[0].process, log[0].obs),
            (Time(11), ProcessId(3), 7)
        );
    }
}
