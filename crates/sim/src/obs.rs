//! Streaming observation aggregators for the scale tier.
//!
//! Dense observation logs are `O(events)` memory — fine up to a few
//! thousand processes, fatal at 10⁵–10⁶. A [`StreamSink`] consumes each
//! observation the instant it is emitted and keeps only `O(processes)`
//! aggregate state. The building blocks here are deliberately exact where
//! the metrics layer is exact:
//!
//! * [`LatencyHistogram`] stores a precise count per tick below
//!   [`LatencyHistogram::EXACT_CAP`] and log₂ bins above, so nearest-rank
//!   quantiles are *bit-equal* to the dense [`ekbd-metrics`] summary
//!   whenever every sample is below the cap (true for every small-graph
//!   equivalence scenario), and within a factor-2 bracket beyond it.
//! * [`Reservoir`] keeps a bounded, deterministically chosen sample of
//!   events for post-mortem excerpts, via seeded max-weight selection, so
//!   identical runs keep identical excerpts.

use crate::time::Time;
use crate::ProcessId;

/// A consumer of observations emitted through
/// [`Context::observe`](crate::Context::observe) when the simulator runs
/// with a streaming sink instead of a dense log.
pub trait StreamSink<O> {
    /// Consumes one observation, stamped with its emission time and the
    /// emitting process. Called synchronously from inside the event loop —
    /// implementations must be `O(1)`-ish and must not re-enter the
    /// simulator.
    fn record(&mut self, time: Time, process: ProcessId, obs: O);
}

/// A latency histogram that is exact below [`Self::EXACT_CAP`] ticks and
/// log₂-binned above, with constant-time record and `O(cap)` memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `exact[v]` counts samples of exactly `v` ticks, `v < EXACT_CAP`.
    exact: Vec<u64>,
    /// `coarse[k]` counts samples in `[2^k, 2^(k+1))`, for samples
    /// `≥ EXACT_CAP` (lower bins stay zero).
    coarse: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Samples below this many ticks are counted exactly; above, they fall
    /// into log₂ bins. 1024 ticks covers every small-graph hungry→eat
    /// latency in the test corpus, which is what makes the streaming-vs-
    /// dense equivalence gate exact rather than approximate.
    pub const EXACT_CAP: u64 = 1024;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            exact: vec![0; Self::EXACT_CAP as usize],
            coarse: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample of `v` ticks.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < Self::EXACT_CAP {
            self.exact[v as usize] += 1;
        } else {
            self.coarse[63 - v.leading_zeros() as usize] += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `q`-quantile (`0 < q ≤ 1`), matching the dense
    /// summary's `idx = ceil(q·count).clamp(1, count) - 1` convention.
    /// Exact if the selected sample is below [`Self::EXACT_CAP`]; otherwise
    /// the lower bound of its log₂ bin (clamped to the true max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (v, &c) in self.exact.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return v as u64;
            }
        }
        for (k, &c) in self.coarse.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return (1u64 << k).max(Self::EXACT_CAP).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` (used when merging per-shard histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.exact.iter_mut().zip(&other.exact) {
            *a += b;
        }
        for (a, b) in self.coarse.iter_mut().zip(&other.coarse) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A compact `count/min/p50/p99/max/mean` line for reports.
    pub fn brief(&self) -> String {
        format!(
            "n={} min={} p50={} p99={} max={} mean={:.1}",
            self.count(),
            self.min(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max(),
            self.mean()
        )
    }
}

/// A deterministic bounded sample of a stream: each item gets a seeded
/// pseudo-random weight and the `cap` largest-weight items are kept.
///
/// Unlike classic reservoir sampling (whose RNG consumption depends on
/// stream length), max-weight selection merges cleanly across shards: the
/// union of two reservoirs re-truncated by weight equals the reservoir of
/// the concatenated streams, so sharded excerpts are shard-count-stable as
/// long as item keys are.
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    seed: u64,
    cap: usize,
    taken: u64,
    /// Kept items with their weights, sorted by descending weight.
    items: Vec<(u64, T)>,
}

impl<T> Reservoir<T> {
    /// An empty reservoir keeping at most `cap` items.
    pub fn new(seed: u64, cap: usize) -> Self {
        Reservoir {
            seed,
            cap,
            taken: 0,
            items: Vec::with_capacity(cap.min(64)),
        }
    }

    /// Offers an item with `key` (typically derived from the event's time
    /// and process, so the weight is independent of arrival order).
    pub fn offer(&mut self, key: u64, item: T) {
        self.taken += 1;
        if self.cap == 0 {
            return;
        }
        let w = splitmix(self.seed ^ key);
        if self.items.len() < self.cap {
            self.items.push((w, item));
            self.items.sort_by_key(|p| std::cmp::Reverse(p.0));
        } else if w > self.items.last().expect("non-empty at cap").0 {
            self.items.pop();
            let at = self.items.partition_point(|&(x, _)| x > w);
            self.items.insert(at, (w, item));
        }
    }

    /// Total items offered (kept or not).
    pub fn offered(&self) -> u64 {
        self.taken
    }

    /// The kept sample, heaviest first.
    pub fn items(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, t)| t)
    }

    /// Number of kept items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is kept.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Folds `other` into `self`, re-truncating to the weight-heaviest
    /// `cap` of the union.
    pub fn merge(&mut self, other: Reservoir<T>) {
        self.taken += other.taken;
        self.items.extend(other.items);
        self.items.sort_by_key(|p| std::cmp::Reverse(p.0));
        self.items.truncate(self.cap);
    }
}

/// splitmix64 finalizer — the workspace-standard seeded hash.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_exact_below_cap() {
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = (0..500).map(|i| (i * 37) % 900).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        assert_eq!(h.count(), 500);
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
        for q in [0.01, 0.25, 0.50, 0.75, 0.99, 1.0] {
            let rank = ((q * 500.0f64).ceil() as usize).clamp(1, 500) - 1;
            assert_eq!(h.quantile(q), samples[rank], "quantile {q} mismatch");
        }
        let mean: f64 = samples.iter().sum::<u64>() as f64 / 500.0;
        assert!((h.mean() - mean).abs() < 1e-9);
    }

    #[test]
    fn histogram_brackets_above_cap() {
        let mut h = LatencyHistogram::new();
        h.record(5_000);
        h.record(70_000);
        assert_eq!(h.count(), 2);
        let p50 = h.quantile(0.5);
        assert!((4096..=5_000).contains(&p50), "p50 {p50} out of bracket");
        assert_eq!(h.quantile(1.0), 65_536.min(h.max()));
    }

    #[test]
    fn histogram_empty_and_merge() {
        let h = LatencyHistogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.quantile(0.5)), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);

        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 { &mut a } else { &mut b }.record(v * 13 % 700);
            whole.record(v * 13 % 700);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal single-stream ingestion");
        assert!(!whole.brief().is_empty());
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let fill = |seed| {
            let mut r = Reservoir::new(seed, 8);
            for i in 0..1000u64 {
                r.offer(i, i);
            }
            r.items().copied().collect::<Vec<u64>>()
        };
        assert_eq!(fill(1).len(), 8);
        assert_eq!(fill(1), fill(1));
        assert_ne!(fill(1), fill(2));
        let mut r: Reservoir<u8> = Reservoir::new(0, 0);
        r.offer(3, 9);
        assert!(r.is_empty());
        assert_eq!(r.offered(), 1);
    }

    #[test]
    fn reservoir_merge_equals_concatenated_stream() {
        let mut whole = Reservoir::new(7, 5);
        let mut left = Reservoir::new(7, 5);
        let mut right = Reservoir::new(7, 5);
        for i in 0..400u64 {
            whole.offer(i, i);
            if i < 200 { &mut left } else { &mut right }.offer(i, i);
        }
        left.merge(right);
        assert_eq!(
            left.items().collect::<Vec<_>>(),
            whole.items().collect::<Vec<_>>()
        );
        assert_eq!(left.offered(), whole.offered());
    }
}
