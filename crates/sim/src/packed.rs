//! The bit-packed scale-tier dining kernel (S1 space bound, §7).
//!
//! The general [`Simulator`](crate::Simulator) runs arbitrary [`Node`]
//! state machines with boxed messages and dense per-edge structs — perfect
//! for the fault machinery, too heavy for 10⁵–10⁶ processes. This module is
//! a *specialized* kernel for fault-free Algorithm 1 at scale:
//!
//! * **State** realizes the paper's S1 bound: per process, 3 header bits
//!   (2-bit phase + doorway bit) and exactly **6 bits per incident edge**
//!   (`pinged/ack/replied/deferred/fork/token`), packed contiguously into
//!   `u64` words indexed by CSR slot. Colors live once in a shared
//!   immutable table (`⌈log₂(δ+1)⌉` bits each in spirit; a `u32` in
//!   practice). Everything else is bounded per-process or per-edge
//!   counters.
//! * **Events** are single `u64` words — `(to, kind, slot, aux)` bit
//!   fields whose natural integer order *is* the canonical per-tick
//!   processing order, which is what makes runs invariant in the shard
//!   count (see [`shard`](crate::shard)).
//! * **Delays** are stateless hashes of `(seed, edge, per-channel seq)`,
//!   clamped to per-channel FIFO by a monotone bump, so a message's
//!   delivery tick is a pure function of the run's history on that channel
//!   — identical no matter which shard computes it.
//!
//! The kernel mirrors `ekbd-dining`'s `DiningProcess` action-for-action
//! (the ten actions of Algorithm 1, internal guards evaluated in enabling
//! order 2 → 5 → 6 → 9 after every event). It deliberately omits the
//! failure-detector, crash, and membership machinery: the scale tier
//! answers throughput and contention questions on correct runs, and the
//! general simulator plus golden traces remain the oracle for faults.
//!
//! Safety checking at scale cannot afford dense traces, so exclusion is
//! checked *in flight*: every eating session broadcasts a ghost `EatMark`
//! (not part of the protocol, never touching FIFO state) carrying its
//! interval to each neighbor at a fixed 1-tick delay; each endpoint of an
//! edge detects each overlapping interval pair exactly once and the
//! higher-id endpoint counts it. A fault-free run must report zero.

use crate::obs::{splitmix, LatencyHistogram, Reservoir};
use ekbd_graph::partition::Partition;
use ekbd_graph::{ConflictGraph, ProcessId};

/// Phase values in the 2-bit header field.
const THINKING: u8 = 0;
const HUNGRY: u8 = 1;
const EATING: u8 = 2;
/// Doorway bit in the header.
const INSIDE: u8 = 1 << 2;

/// Per-edge flag bits, identical to `ekbd-dining`'s layout.
const PINGED: u8 = 1 << 0;
const ACK: u8 = 1 << 1;
const REPLIED: u8 = 1 << 2;
const DEFERRED: u8 = 1 << 3;
const FORK: u8 = 1 << 4;
const TOKEN: u8 = 1 << 5;

/// Event kinds, ordered so that the packed-word integer order gives the
/// canonical intra-tick processing order. Protocol messages (0–3) sort
/// before the ghost `EatMark` (4): a process that starts eating at tick
/// `t` always does so before handling marks arriving at `t`, which is what
/// makes overlap detection exactly-once (see `on_mark`).
const K_PING: u64 = 0;
const K_ACK: u64 = 1;
const K_REQUEST: u64 = 2;
const K_FORK: u64 = 3;
const K_MARK: u64 = 4;
const K_HUNGRY: u64 = 5;
const K_EATEND: u64 = 6;

/// Bit layout of a packed event word: `to` in the top bits so that plain
/// `u64` sort orders by `(to, kind, slot, aux)`.
const TO_SHIFT: u32 = 38; // 26 bits
const KIND_SHIFT: u32 = 35; // 3 bits
const SLOT_SHIFT: u32 = 13; // 22 bits
const AUX_MASK: u64 = (1 << 13) - 1; // 13 bits

#[inline]
fn encode(to: u32, kind: u64, slot: u32, aux: u64) -> u64 {
    debug_assert!(to < (1 << 26) && kind < 8 && slot < (1 << 22) && aux <= AUX_MASK);
    ((to as u64) << TO_SHIFT) | (kind << KIND_SHIFT) | ((slot as u64) << SLOT_SHIFT) | aux
}

#[inline]
fn decode(w: u64) -> (u32, u64, u32, u64) {
    (
        (w >> TO_SHIFT) as u32,
        (w >> KIND_SHIFT) & 0x7,
        ((w >> SLOT_SHIFT) & 0x3f_ffff) as u32,
        w & AUX_MASK,
    )
}

/// Configuration of a scale-tier run.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// RNG seed; the run is a pure function of `(graph, colors, seed)`.
    pub seed: u64,
    /// Hard tick ceiling; runs normally quiesce well before it.
    pub horizon: u64,
    /// Eating sessions each process performs before going quiet.
    pub sessions: u32,
    /// Thinking-time range (ticks, inclusive) between sessions.
    pub think: (u64, u64),
    /// Eating-duration range (ticks, inclusive); upper bound ≤ 8191 so a
    /// duration fits the event word's aux field.
    pub eat: (u64, u64),
    /// Maximum message delay; each message takes `1..=delay_max` ticks
    /// (then FIFO-bumped), hashed statelessly from the channel history.
    pub delay_max: u64,
    /// Reservoir capacity for sampled eating-session excerpts.
    pub excerpt_cap: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 0,
            horizon: 1_000_000,
            sessions: 3,
            think: (1, 40),
            eat: (1, 10),
            delay_max: 4,
            excerpt_cap: 16,
        }
    }
}

impl ScaleConfig {
    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    /// Sets the tick ceiling.
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }
    /// Sets the per-process session count.
    pub fn sessions(mut self, sessions: u32) -> Self {
        self.sessions = sessions;
        self
    }
    /// Sets the thinking-time range.
    pub fn think(mut self, lo: u64, hi: u64) -> Self {
        self.think = (lo, hi);
        self
    }
    /// Sets the eating-duration range.
    pub fn eat(mut self, lo: u64, hi: u64) -> Self {
        self.eat = (lo, hi);
        self
    }
    /// Sets the maximum message delay.
    pub fn delay_max(mut self, d: u64) -> Self {
        self.delay_max = d.max(1);
        self
    }

    fn validate(&self) {
        assert!(
            self.think.0 >= 1 && self.think.0 <= self.think.1,
            "bad think range"
        );
        assert!(self.eat.0 >= 1 && self.eat.0 <= self.eat.1, "bad eat range");
        assert!(
            self.eat.1 <= AUX_MASK,
            "eat duration must fit the aux field"
        );
        assert!(self.delay_max >= 1, "delay_max must be ≥ 1");
        assert!(self.sessions >= 1, "sessions must be ≥ 1");
    }

    fn wheel_len(&self) -> usize {
        // Longest schedulable offset: 1 + think.1 (next hunger), eat.1
        // (session end), or delay_max plus the FIFO bump headroom (the
        // paper's ≤ 4 in-flight messages per edge, with margin).
        (self.think.1 + 1).max(self.eat.1).max(self.delay_max + 16) as usize + 2
    }
}

/// A per-session excerpt kept by the reservoir sampler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EatExcerpt {
    /// Tick the session started eating.
    pub tick: u64,
    /// The eating process.
    pub process: u32,
    /// Hungry→eat latency of the session, in ticks.
    pub latency: u64,
}

/// One shard's slice of the packed kernel: the state of its member
/// processes and a local timer wheel. All cross-shard interaction goes
/// through explicit `(delivery_tick, event_word)` batches.
pub(crate) struct ShardState {
    id: usize,
    /// Global ids of member processes, ascending.
    pub(crate) members: Vec<u32>,
    /// Local CSR: `loff[l]..loff[l+1]` are member `l`'s adjacency slots.
    loff: Vec<u32>,
    /// Global neighbor id per local slot (sorted within each process).
    ladj: Vec<u32>,
    /// For local slot `g` (me → q), my slot index within q's adjacency —
    /// stamped into event words so the receiver's lookup is O(1).
    rev_slot: Vec<u32>,
    /// 3 header bits per member (phase + doorway).
    header: Vec<u8>,
    /// 6 flag bits per local slot, packed into contiguous words: slot `g`
    /// occupies bits `[6g, 6g+6)` — the S1 layout, literally.
    flags: Vec<u64>,
    /// Per-channel send counter (me → q), feeding the stateless delay hash.
    seq: Vec<u32>,
    /// Per-channel last delivery tick, enforcing FIFO.
    last_del: Vec<u64>,
    /// Most recent neighbor eating interval learned from an `EatMark`,
    /// per local slot; `[0, 0)` until the first mark.
    nbr_start: Vec<u64>,
    nbr_end: Vec<u64>,
    /// Per-member workload state.
    hungry_since: Vec<u64>,
    eat_start: Vec<u64>,
    eat_end: Vec<u64>,
    pub(crate) eats: Vec<u32>,
    /// Timer wheel: ring of per-tick event lists.
    wheel: Vec<Vec<u64>>,
    pending: usize,
    /// Scratch for the current tick's sorted events.
    batch: Vec<u64>,
    // ---- per-shard counters, merged into the run report ----
    pub(crate) events: u64,
    pub(crate) messages: u64,
    pub(crate) mistakes: u64,
    pub(crate) latency: LatencyHistogram,
    pub(crate) excerpts: Reservoir<EatExcerpt>,
    /// When set, eat start/stop transitions are appended to `obs` for an
    /// external driver ([`InteractiveScale`]) to drain. Off (and empty)
    /// for the batch workload paths.
    record_obs: bool,
    obs: Vec<(u64, u32, bool)>,
}

/// A shard's final state plus the tick its worker stopped at, moved out
/// of a worker thread at the end of a sharded run.
pub(crate) struct ShardHandle {
    pub(crate) state: ShardState,
    pub(crate) final_tick: u64,
}

/// The packed kernel: shared immutable topology plus one [`ShardState`]
/// per shard. Drive it with [`run_sequential`](Self::run_sequential) (one
/// thread, any shard count) or [`shard::run_sharded`](crate::shard::run_sharded)
/// (one worker thread per shard) — both produce identical results.
pub struct PackedKernel {
    pub(crate) config: ScaleConfig,
    pub(crate) n: usize,
    /// Shard of each process.
    pub(crate) owner: Vec<u8>,
    /// Static priorities (proper coloring), shared by all shards.
    colors: std::sync::Arc<Vec<u32>>,
    pub(crate) shards: Vec<ShardState>,
}

/// The merged result of a scale-tier run.
#[derive(Clone, Debug)]
pub struct ScaleRunReport {
    /// Process count.
    pub n: usize,
    /// Shard count the run used.
    pub shards: usize,
    /// Events processed (kernel dispatches, all shards).
    pub events: u64,
    /// Protocol messages sent (pings/acks/requests/forks; marks excluded).
    pub messages: u64,
    /// Final virtual tick.
    pub final_tick: u64,
    /// Completed eating sessions per process, indexed by id.
    pub eats: Vec<u32>,
    /// Overlapping eating-interval pairs across conflict edges (must be 0).
    pub mistakes: u64,
    /// Processes still hungry when the run ended.
    pub starving: u64,
    /// Hungry→eat latency distribution.
    pub latency: LatencyHistogram,
    /// Deterministically sampled session excerpts.
    pub excerpts: Vec<EatExcerpt>,
    /// Wall-clock duration of the drive loop, in nanoseconds (excluded
    /// from the fingerprint; 0 for sequential runs driven without timing).
    pub wall_nanos: u128,
}

impl ScaleRunReport {
    /// Whether the run upholds the scale-tier gate: zero exclusion
    /// mistakes and every process ate at least once.
    pub fn verdict(&self) -> bool {
        self.mistakes == 0 && self.eats.iter().all(|&e| e >= 1)
    }

    /// Fewest completed sessions over all processes.
    pub fn min_eats(&self) -> u32 {
        self.eats.iter().copied().min().unwrap_or(0)
    }

    /// Aggregate events per second, from `wall_nanos` (0 if untimed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.events as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }

    /// A canonical digest of everything deterministic about the run —
    /// byte-identical across reruns with the same `(seed, shards)`, and by
    /// design across *different* shard counts too. Wall-clock fields are
    /// excluded.
    pub fn fingerprint(&self) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &e in &self.eats {
            h = splitmix(h ^ e as u64);
        }
        let mut ex = 0xe37_79b9u64;
        for e in &self.excerpts {
            ex = splitmix(ex ^ e.tick ^ ((e.process as u64) << 32) ^ e.latency.rotate_left(17));
        }
        format!(
            "packed-scale-v1 n={} events={} msgs={} ticks={} eats#{:016x} \
             mistakes={} starving={} lat[{}] ex#{:016x}",
            self.n,
            self.events,
            self.messages,
            self.final_tick,
            h,
            self.mistakes,
            self.starving,
            self.latency.brief(),
            ex
        )
    }
}

#[inline]
fn mix3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix(
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ c.wrapping_mul(0x94d0_49bb_1331_11eb),
    )
}

/// Seeded duration in `lo..=hi` for `(process, counter)`, salted so think
/// and eat draws are independent streams.
#[inline]
fn ranged(seed: u64, salt: u64, p: u32, counter: u32, range: (u64, u64)) -> u64 {
    range.0 + mix3(seed ^ salt, p as u64, counter as u64, 0x5eed) % (range.1 - range.0 + 1)
}

impl ShardState {
    #[inline]
    fn local_of(&self, global: u32) -> usize {
        self.members
            .binary_search(&global)
            .expect("event routed to non-member")
    }

    #[inline]
    fn get_flag(&self, g: usize, f: u8) -> bool {
        let bit = g * 6;
        let (w, o) = (bit / 64, (bit % 64) as u32);
        let six = if o <= 58 {
            (self.flags[w] >> o) & 0x3f
        } else {
            ((self.flags[w] >> o) | (self.flags[w + 1] << (64 - o))) & 0x3f
        };
        six & f as u64 != 0
    }

    #[inline]
    fn set_flag(&mut self, g: usize, f: u8, v: bool) {
        let bit = g * 6;
        let (w, o) = (bit / 64, (bit % 64) as u32);
        if o <= 58 {
            if v {
                self.flags[w] |= (f as u64) << o;
            } else {
                self.flags[w] &= !((f as u64) << o);
            }
        } else {
            // o in 59..=63: the 6-bit field straddles words w and w+1.
            let low = (f as u64) << o;
            let high = (f as u64) >> (64 - o);
            if v {
                self.flags[w] |= low;
                self.flags[w + 1] |= high;
            } else {
                self.flags[w] &= !low;
                self.flags[w + 1] &= !high;
            }
        }
    }

    #[inline]
    fn phase(&self, l: usize) -> u8 {
        self.header[l] & 0x3
    }

    #[inline]
    fn set_phase(&mut self, l: usize, p: u8) {
        self.header[l] = (self.header[l] & !0x3) | p;
    }

    #[inline]
    fn inside(&self, l: usize) -> bool {
        self.header[l] & INSIDE != 0
    }

    #[inline]
    fn set_inside(&mut self, l: usize, v: bool) {
        if v {
            self.header[l] |= INSIDE;
        } else {
            self.header[l] &= !INSIDE;
        }
    }

    #[inline]
    fn slots(&self, l: usize) -> std::ops::Range<usize> {
        self.loff[l] as usize..self.loff[l + 1] as usize
    }

    fn push_wheel(&mut self, now: u64, delivery: u64, word: u64) {
        let len = self.wheel.len() as u64;
        assert!(
            delivery > now && delivery - now < len,
            "delivery {delivery} outside wheel window at tick {now}"
        );
        self.wheel[(delivery % len) as usize].push(word);
        self.pending += 1;
    }

    /// Earliest tick after `now` with a scheduled local event.
    fn next_after(&self, now: u64) -> u64 {
        if self.pending == 0 {
            return u64::MAX;
        }
        let len = self.wheel.len() as u64;
        for dt in 1..len {
            if !self.wheel[((now + dt) % len) as usize].is_empty() {
                return now + dt;
            }
        }
        unreachable!("pending events must live within the wheel window");
    }

    /// Sends a protocol message on local slot `g` (member `l` → its `j`-th
    /// neighbor): stateless hashed delay, FIFO-bumped per channel.
    #[allow(clippy::too_many_arguments)] // hot path: fields unpacked by the dispatcher
    fn send(
        &mut self,
        seed: u64,
        delay_max: u64,
        now: u64,
        l: usize,
        g: usize,
        kind: u64,
        owner: &[u8],
        out: &mut [Vec<(u64, u64)>],
    ) {
        let from = self.members[l];
        let to = self.ladj[g];
        let delay = 1 + mix3(seed, from as u64, to as u64, self.seq[g] as u64) % delay_max;
        self.seq[g] += 1;
        let delivery = (now + delay).max(self.last_del[g] + 1);
        self.last_del[g] = delivery;
        self.messages += 1;
        let word = encode(to, kind, self.rev_slot[g], 0);
        let dst = owner[to as usize] as usize;
        if dst == self.id {
            self.push_wheel(now, delivery, word);
        } else {
            out[dst].push((delivery, word));
        }
    }

    /// Action 2: while hungry outside, ping neighbors missing an ack.
    fn try_request_acks(
        &mut self,
        seed: u64,
        delay_max: u64,
        now: u64,
        l: usize,
        owner: &[u8],
        out: &mut [Vec<(u64, u64)>],
    ) {
        if self.phase(l) != HUNGRY || self.inside(l) {
            return;
        }
        for g in self.slots(l) {
            if !self.get_flag(g, PINGED) && !self.get_flag(g, ACK) {
                self.set_flag(g, PINGED, true);
                self.send(seed, delay_max, now, l, g, K_PING, owner, out);
            }
        }
    }

    /// Action 5: enter the doorway once every neighbor acked (the scale
    /// tier is fault-free, so the suspicion escape hatch never fires).
    fn try_enter_doorway(&mut self, l: usize) {
        if self.phase(l) != HUNGRY || self.inside(l) {
            return;
        }
        if self.slots(l).all(|g| self.get_flag(g, ACK)) {
            self.set_inside(l, true);
            for g in self.slots(l) {
                self.set_flag(g, ACK, false);
                self.set_flag(g, REPLIED, false);
            }
        }
    }

    /// Action 6: inside the doorway, spend tokens on missing forks.
    fn try_request_forks(
        &mut self,
        seed: u64,
        delay_max: u64,
        now: u64,
        l: usize,
        owner: &[u8],
        out: &mut [Vec<(u64, u64)>],
    ) {
        if self.phase(l) != HUNGRY || !self.inside(l) {
            return;
        }
        for g in self.slots(l) {
            if self.get_flag(g, TOKEN) && !self.get_flag(g, FORK) {
                self.set_flag(g, TOKEN, false);
                self.send(seed, delay_max, now, l, g, K_REQUEST, owner, out);
            }
        }
    }

    /// Action 9: eat once every fork is held; emits marks, checks overlap
    /// against stored neighbor intervals (detection site 2), schedules the
    /// session end.
    fn try_eat(
        &mut self,
        cfg: &ScaleConfig,
        now: u64,
        l: usize,
        owner: &[u8],
        out: &mut [Vec<(u64, u64)>],
    ) {
        if self.phase(l) != HUNGRY || !self.inside(l) {
            return;
        }
        if !self.slots(l).all(|g| self.get_flag(g, FORK)) {
            return;
        }
        self.set_phase(l, EATING);
        let me = self.members[l];
        let dur = ranged(cfg.seed, eat_salt(), me, self.eats[l], cfg.eat);
        self.eat_start[l] = now;
        self.eat_end[l] = now + dur;
        let lat = now - self.hungry_since[l];
        self.latency.record(lat);
        self.excerpts.offer(
            mix3(cfg.seed, now, me as u64, 0xec5e),
            EatExcerpt {
                tick: now,
                process: me,
                latency: lat,
            },
        );
        self.push_wheel(now, now + dur, encode(me, K_EATEND, 0, 0));
        if self.record_obs {
            self.obs.push((now, me, true));
        }
        for g in self.slots(l) {
            let q = self.ladj[g];
            // Site 2: my new interval vs the neighbor interval last heard.
            if self.nbr_end[g] > 0
                && self.nbr_start[g] < now + dur
                && now < self.nbr_end[g]
                && me > q
            {
                self.mistakes += 1;
            }
            // Ghost mark: fixed 1-tick delay, outside the FIFO channel.
            let word = encode(q, K_MARK, self.rev_slot[g], dur);
            let dst = owner[q as usize] as usize;
            if dst == self.id {
                self.push_wheel(now, now + 1, word);
            } else {
                out[dst].push((now + 1, word));
            }
        }
    }

    fn internal_actions(
        &mut self,
        cfg: &ScaleConfig,
        now: u64,
        l: usize,
        owner: &[u8],
        out: &mut [Vec<(u64, u64)>],
    ) {
        self.try_request_acks(cfg.seed, cfg.delay_max, now, l, owner, out);
        self.try_enter_doorway(l);
        self.try_request_forks(cfg.seed, cfg.delay_max, now, l, owner, out);
        self.try_eat(cfg, now, l, owner, out);
    }

    /// Action 10: exit — grant deferred requests and pings, go thinking.
    fn exit(
        &mut self,
        seed: u64,
        delay_max: u64,
        now: u64,
        l: usize,
        owner: &[u8],
        out: &mut [Vec<(u64, u64)>],
    ) {
        self.set_inside(l, false);
        self.set_phase(l, THINKING);
        for g in self.slots(l) {
            if self.get_flag(g, TOKEN) && self.get_flag(g, FORK) {
                self.set_flag(g, FORK, false);
                self.send(seed, delay_max, now, l, g, K_FORK, owner, out);
            }
            if self.get_flag(g, DEFERRED) {
                self.set_flag(g, DEFERRED, false);
                self.send(seed, delay_max, now, l, g, K_ACK, owner, out);
            }
        }
    }

    /// Processes every event scheduled for tick `now`, appending
    /// cross-shard events to `out[dst_shard]`.
    pub(crate) fn process_tick(
        &mut self,
        cfg: &ScaleConfig,
        colors: &[u32],
        owner: &[u8],
        now: u64,
        out: &mut [Vec<(u64, u64)>],
    ) {
        let slot = (now % self.wheel.len() as u64) as usize;
        if self.wheel[slot].is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        batch.append(&mut self.wheel[slot]);
        self.pending -= batch.len();
        // Canonical order: plain integer sort = (to, kind, slot, aux).
        batch.sort_unstable();
        for &word in &batch {
            self.events += 1;
            let (to, kind, slot, aux) = decode(word);
            let l = self.local_of(to);
            match kind {
                K_PING => {
                    let g = self.loff[l] as usize + slot as usize;
                    // Action 3: defer if inside or already replied this
                    // session; otherwise ack (and remember it while hungry).
                    if self.inside(l) || self.get_flag(g, REPLIED) {
                        self.set_flag(g, DEFERRED, true);
                    } else {
                        self.set_flag(g, REPLIED, self.phase(l) == HUNGRY);
                        self.send(cfg.seed, cfg.delay_max, now, l, g, K_ACK, owner, out);
                    }
                    self.internal_actions(cfg, now, l, owner, out);
                }
                K_ACK => {
                    let g = self.loff[l] as usize + slot as usize;
                    // Action 4.
                    let useful = self.phase(l) == HUNGRY && !self.inside(l);
                    self.set_flag(g, ACK, useful);
                    self.set_flag(g, PINGED, false);
                    self.internal_actions(cfg, now, l, owner, out);
                }
                K_REQUEST => {
                    let g = self.loff[l] as usize + slot as usize;
                    let from = self.ladj[g];
                    // Action 7: the requester's color comes from the shared
                    // table instead of riding in the message.
                    debug_assert!(self.get_flag(g, FORK), "Lemma 1.1: request without fork");
                    self.set_flag(g, TOKEN, true);
                    let grant = self.get_flag(g, FORK)
                        && (!self.inside(l)
                            || (self.phase(l) == HUNGRY
                                && colors[to as usize] < colors[from as usize]));
                    if grant {
                        self.set_flag(g, FORK, false);
                        self.send(cfg.seed, cfg.delay_max, now, l, g, K_FORK, owner, out);
                    }
                    self.internal_actions(cfg, now, l, owner, out);
                }
                K_FORK => {
                    let g = self.loff[l] as usize + slot as usize;
                    // Action 8.
                    debug_assert!(!self.get_flag(g, FORK), "Lemma 1.2: duplicate fork");
                    self.set_flag(g, FORK, true);
                    self.internal_actions(cfg, now, l, owner, out);
                }
                K_MARK => {
                    // Ghost message: neighbor's session interval is
                    // [now - 1, now - 1 + aux). Site 1 of overlap
                    // detection; no internal actions (not a protocol event).
                    let g = self.loff[l] as usize + slot as usize;
                    let (ms, me_) = (now - 1, now - 1 + aux);
                    let q = self.ladj[g];
                    if self.phase(l) == EATING
                        && self.eat_start[l] < me_
                        && ms < self.eat_end[l]
                        && to > q
                    {
                        self.mistakes += 1;
                    }
                    self.nbr_start[g] = ms;
                    self.nbr_end[g] = me_;
                }
                K_HUNGRY => {
                    if self.record_obs && self.phase(l) != THINKING {
                        // An external driver may race an injection against
                        // an in-flight grant; a hunger landing on a
                        // non-thinking process is dropped, not asserted.
                        continue;
                    }
                    debug_assert_eq!(self.phase(l), THINKING);
                    self.set_phase(l, HUNGRY);
                    self.hungry_since[l] = now;
                    self.internal_actions(cfg, now, l, owner, out);
                }
                K_EATEND => {
                    debug_assert_eq!(self.phase(l), EATING);
                    self.exit(cfg.seed, cfg.delay_max, now, l, owner, out);
                    self.eats[l] += 1;
                    if self.record_obs {
                        self.obs.push((now, to, false));
                    }
                    if self.eats[l] < cfg.sessions {
                        let think = ranged(cfg.seed, think_salt(), to, self.eats[l], cfg.think);
                        self.push_wheel(now, now + 1 + think, encode(to, K_HUNGRY, 0, 0));
                    }
                    self.internal_actions(cfg, now, l, owner, out);
                }
                _ => unreachable!("unknown event kind"),
            }
        }
        self.batch = batch;
    }

    /// Packages this shard's final state for hand-back from a worker
    /// thread (sharded driver only).
    pub(crate) fn into_handle(self, final_tick: u64) -> ShardHandle {
        ShardHandle {
            state: self,
            final_tick,
        }
    }

    /// Accepts a batch of cross-shard events delivered after a barrier.
    pub(crate) fn accept(&mut self, now: u64, batch: &mut Vec<(u64, u64)>) {
        for (delivery, word) in batch.drain(..) {
            self.push_wheel(now, delivery, word);
        }
    }

    /// Earliest pending tick, for the global time-advance consensus.
    pub(crate) fn next_event_after(&self, now: u64) -> u64 {
        self.next_after(now)
    }
}

// Salt constants for the independent think/eat duration hash streams.
#[inline]
fn eat_salt() -> u64 {
    0xea7
}
#[inline]
fn think_salt() -> u64 {
    0x7417
}

impl PackedKernel {
    /// Builds the kernel: per-shard CSR slices of `graph`, initial fork at
    /// the higher-color endpoint and token at the lower (§3.1), and every
    /// process's first hunger pre-scheduled.
    ///
    /// # Panics
    ///
    /// Panics if the coloring is not proper for `graph`, the partition
    /// does not cover `graph`, or the config is inconsistent.
    pub fn new(
        graph: &ConflictGraph,
        colors: &[u32],
        partition: &Partition,
        config: ScaleConfig,
    ) -> Self {
        config.validate();
        let n = graph.len();
        assert!(
            n < (1 << 26),
            "packed event words index at most 2^26 processes"
        );
        assert_eq!(colors.len(), n, "coloring must cover the graph");
        assert_eq!(
            partition.assignment.len(),
            n,
            "partition must cover the graph"
        );
        assert!(
            partition.shards <= u8::MAX as usize + 1,
            "at most 256 shards"
        );
        assert!(
            graph.max_degree() < (1 << 22),
            "packed event words index at most 2^22 neighbors"
        );
        let owner: Vec<u8> = partition.assignment.iter().map(|&s| s as u8).collect();
        let wheel_len = config.wheel_len();
        let mut shards = Vec::with_capacity(partition.shards);
        for (sid, members) in partition.members().into_iter().enumerate() {
            let members: Vec<u32> = members.iter().map(|p| p.index() as u32).collect();
            let mut loff = Vec::with_capacity(members.len() + 1);
            let mut ladj = Vec::new();
            let mut rev_slot = Vec::new();
            let mut flags_bits = 0usize;
            loff.push(0u32);
            for &m in &members {
                let p = ProcessId::from(m as usize);
                for &q in graph.neighbors(p) {
                    assert_ne!(
                        colors[m as usize],
                        colors[q.index()],
                        "coloring must be proper"
                    );
                    ladj.push(q.index() as u32);
                    let back = graph
                        .neighbors(q)
                        .binary_search(&p)
                        .expect("adjacency is symmetric");
                    rev_slot.push(back as u32);
                }
                loff.push(ladj.len() as u32);
            }
            flags_bits += ladj.len() * 6;
            let mut shard = ShardState {
                id: sid,
                loff,
                header: vec![THINKING; members.len()],
                flags: vec![0u64; flags_bits.div_ceil(64) + 1],
                seq: vec![0; ladj.len()],
                last_del: vec![0; ladj.len()],
                nbr_start: vec![0; ladj.len()],
                nbr_end: vec![0; ladj.len()],
                hungry_since: vec![0; members.len()],
                eat_start: vec![0; members.len()],
                eat_end: vec![0; members.len()],
                eats: vec![0; members.len()],
                wheel: vec![Vec::new(); wheel_len],
                pending: 0,
                batch: Vec::new(),
                events: 0,
                messages: 0,
                mistakes: 0,
                latency: LatencyHistogram::new(),
                excerpts: Reservoir::new(config.seed ^ 0xe8ce_4a17, config.excerpt_cap),
                record_obs: false,
                obs: Vec::new(),
                members,
                ladj,
                rev_slot,
            };
            // §3.1 initial placement: fork at the higher color, token at
            // the lower; and every process schedules its first hunger.
            for l in 0..shard.members.len() {
                let me = shard.members[l];
                for g in shard.slots(l) {
                    let q = shard.ladj[g];
                    if colors[me as usize] > colors[q as usize] {
                        shard.set_flag(g, FORK, true);
                    } else {
                        shard.set_flag(g, TOKEN, true);
                    }
                }
                let think = ranged(config.seed, think_salt(), me, 0, config.think);
                shard.push_wheel(0, 1 + think, encode(me, K_HUNGRY, 0, 0));
            }
            shards.push(shard);
        }
        PackedKernel {
            config,
            n,
            owner,
            colors: std::sync::Arc::new(colors.to_vec()),
            shards,
        }
    }

    /// Shared color table (read-only, used by every shard).
    pub(crate) fn colors(&self) -> std::sync::Arc<Vec<u32>> {
        self.colors.clone()
    }

    /// Approximate resident bytes of all mutable kernel state — the number
    /// the S1 bound governs. Excludes the shared graph/colors.
    pub fn state_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.header.len()
                    + s.flags.len() * 8
                    + (s.seq.len() + s.rev_slot.len() + s.ladj.len()) * 4
                    + (s.last_del.len() + s.nbr_start.len() + s.nbr_end.len()) * 8
                    + (s.hungry_since.len() + s.eat_start.len() + s.eat_end.len()) * 8
                    + s.eats.len() * 4
            })
            .sum()
    }

    /// Drives every shard in lock-step on the calling thread. Exists as
    /// the reference implementation the threaded driver must match
    /// bit-for-bit, and as the `--shards 1` fast path.
    pub fn run_sequential(mut self) -> ScaleRunReport {
        let cfg = self.config.clone();
        let colors = self.colors();
        let k = self.shards.len();
        let mut out: Vec<Vec<Vec<(u64, u64)>>> = vec![vec![Vec::new(); k]; k];
        let mut now = 0u64;
        loop {
            let next = self
                .shards
                .iter()
                .map(|s| s.next_event_after(now))
                .min()
                .unwrap_or(u64::MAX);
            if next == u64::MAX || next > cfg.horizon {
                break;
            }
            now = next;
            for (sid, shard) in self.shards.iter_mut().enumerate() {
                shard.process_tick(&cfg, &colors, &self.owner, now, &mut out[sid]);
            }
            for row in out.iter_mut() {
                for (dst, cell) in row.iter_mut().enumerate() {
                    if !cell.is_empty() {
                        self.shards[dst].accept(now, cell);
                    }
                }
            }
        }
        self.into_report(now, 0)
    }

    /// Folds per-shard state into the merged report.
    pub(crate) fn into_report(self, final_tick: u64, wall_nanos: u128) -> ScaleRunReport {
        let mut eats = vec![0u32; self.n];
        let mut starving = 0u64;
        let mut events = 0u64;
        let mut messages = 0u64;
        let mut mistakes = 0u64;
        let mut latency = LatencyHistogram::new();
        let mut excerpts = Reservoir::new(self.config.seed ^ 0xe8ce_4a17, self.config.excerpt_cap);
        let shard_count = self.shards.len();
        for shard in self.shards {
            for (l, &m) in shard.members.iter().enumerate() {
                eats[m as usize] = shard.eats[l];
                if shard.phase(l) == HUNGRY {
                    starving += 1;
                }
            }
            events += shard.events;
            messages += shard.messages;
            mistakes += shard.mistakes;
            latency.merge(&shard.latency);
            excerpts.merge(shard.excerpts);
        }
        ScaleRunReport {
            n: self.n,
            shards: shard_count,
            events,
            messages,
            final_tick,
            eats,
            mistakes,
            starving,
            latency,
            excerpts: excerpts.items().cloned().collect(),
            wall_nanos,
        }
    }
}

/// One eat-session transition observed by an [`InteractiveScale`] driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EatObs {
    /// Virtual tick of the transition.
    pub tick: u64,
    /// The process whose session changed.
    pub process: u32,
    /// `true` when the process started eating, `false` when it stopped.
    pub started: bool,
}

/// An externally driven packed kernel: the batch workload (pre-scheduled
/// hungers, per-process session quotas) is stripped out, and hunger is
/// instead *injected* by a caller — the net server's scale backend — who
/// drains eat start/stop observations as virtual time advances.
///
/// Single-shard by construction: an interactive driver serializes at the
/// injection boundary anyway, so sharding would only buy barrier overhead.
/// Determinism is preserved per *injection schedule*: the same sequence of
/// `inject_hungry`/`step` calls replays the same virtual history.
pub struct InteractiveScale {
    kernel: PackedKernel,
    now: u64,
    /// Per-process "a K_HUNGRY is scheduled or being served" latch, so a
    /// double injection can never violate the kernel's one-hunger-in-
    /// flight invariant. Cleared when the grant (eat start) is observed.
    queued: Vec<bool>,
    /// Single-shard scratch for `process_tick`'s cross-shard interface;
    /// stays empty (a shard never routes to itself through `out`).
    out_scratch: Vec<Vec<(u64, u64)>>,
}

impl InteractiveScale {
    /// Builds an interactive kernel over `graph` with the given proper
    /// coloring. `config.sessions`/`horizon` are ignored (the caller owns
    /// the workload and the clock); think/eat/delay ranges still shape
    /// the virtual-time dynamics.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PackedKernel::new`].
    pub fn new(graph: &ConflictGraph, colors: &[u32], config: ScaleConfig) -> Self {
        // `sessions: 1` disables the K_EATEND hunger rescheduling after
        // the first session; combined with the wheel flush below, the
        // kernel starts fully quiescent and only moves when fed.
        let config = ScaleConfig {
            sessions: 1,
            ..config
        };
        let part = Partition {
            assignment: vec![0; graph.len()],
            shards: 1,
        };
        let mut kernel = PackedKernel::new(graph, colors, &part, config);
        let shard = &mut kernel.shards[0];
        for cell in &mut shard.wheel {
            cell.clear();
        }
        shard.pending = 0;
        shard.record_obs = true;
        InteractiveScale {
            queued: vec![false; graph.len()],
            kernel,
            now: 0,
            out_scratch: vec![Vec::new()],
        }
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Process count.
    pub fn len(&self) -> usize {
        self.kernel.n
    }

    /// Whether the kernel has no processes.
    pub fn is_empty(&self) -> bool {
        self.kernel.n == 0
    }

    /// Whether any events are pending (i.e. [`step`](Self::step) would
    /// advance virtual time).
    pub fn has_pending(&self) -> bool {
        self.kernel.shards[0].pending > 0
    }

    /// Injects hunger for process `p`, scheduling its `K_HUNGRY` one tick
    /// out. Returns `false` (and does nothing) if `p` is out of range, is
    /// not currently thinking, or already has an unserved injection.
    pub fn inject_hungry(&mut self, p: u32) -> bool {
        if p as usize >= self.queued.len() || self.queued[p as usize] {
            return false;
        }
        let shard = &mut self.kernel.shards[0];
        let l = shard.local_of(p);
        if shard.phase(l) != THINKING {
            return false;
        }
        shard.push_wheel(self.now, self.now + 1, encode(p, K_HUNGRY, 0, 0));
        self.queued[p as usize] = true;
        true
    }

    /// Advances virtual time until the kernel is quiescent or `max_ticks`
    /// event-bearing ticks have been processed, appending observed eat
    /// transitions to `obs`. Returns the number of ticks processed.
    pub fn step(&mut self, max_ticks: u64, obs: &mut Vec<EatObs>) -> u64 {
        let color_table = self.kernel.colors();
        let cfg = self.kernel.config.clone();
        let PackedKernel { owner, shards, .. } = &mut self.kernel;
        let shard = &mut shards[0];
        let mut ticks = 0u64;
        while ticks < max_ticks {
            let next = shard.next_event_after(self.now);
            if next == u64::MAX {
                break;
            }
            self.now = next;
            shard.process_tick(&cfg, &color_table, owner, next, &mut self.out_scratch);
            debug_assert!(
                self.out_scratch[0].is_empty(),
                "single shard never emits cross-shard events"
            );
            ticks += 1;
        }
        for (tick, p, started) in shard.obs.drain(..) {
            if started {
                self.queued[p as usize] = false;
            }
            obs.push(EatObs {
                tick,
                process: p,
                started,
            });
        }
        ticks
    }

    /// Consumes the kernel into the standard scale-run report (wall time
    /// is the caller's to stamp; recorded as 0 here).
    pub fn finish(self) -> ScaleRunReport {
        let now = self.now;
        self.kernel.into_report(now, 0)
    }
}

#[cfg(test)]
mod interactive_tests {
    use super::*;
    use ekbd_graph::{coloring, topology};

    #[test]
    fn interactive_kernel_starts_quiescent_and_serves_injections() {
        let g = topology::ring(12);
        let colors = coloring::greedy(&g);
        let mut ik = InteractiveScale::new(&g, &colors, ScaleConfig::default().seed(9));
        assert!(!ik.has_pending(), "no batch workload may be pre-scheduled");
        let mut obs = Vec::new();
        assert_eq!(ik.step(1_000, &mut obs), 0);
        assert!(obs.is_empty());

        for p in 0..12u32 {
            assert!(ik.inject_hungry(p));
            assert!(!ik.inject_hungry(p), "double injection must be refused");
        }
        while ik.has_pending() {
            ik.step(10_000, &mut obs);
        }
        let starts = obs.iter().filter(|o| o.started).count();
        let stops = obs.iter().filter(|o| !o.started).count();
        assert_eq!(starts, 12, "every injected process eats exactly once");
        assert_eq!(stops, 12, "every session ends");

        // Second round: everyone is thinking again, injections re-admit.
        let before = ik.now();
        for p in 0..12u32 {
            assert!(ik.inject_hungry(p), "process {p} should accept a second meal");
        }
        while ik.has_pending() {
            ik.step(10_000, &mut obs);
        }
        assert!(ik.now() > before);
        let report = ik.finish();
        assert_eq!(report.mistakes, 0);
        assert!(report.eats.iter().all(|&e| e == 2));
    }

    #[test]
    fn interactive_runs_replay_deterministically() {
        let g = topology::ring(8);
        let colors = coloring::greedy(&g);
        let run = |seed: u64| {
            let mut ik = InteractiveScale::new(&g, &colors, ScaleConfig::default().seed(seed));
            let mut obs = Vec::new();
            for p in [3u32, 7, 0, 5] {
                ik.inject_hungry(p);
            }
            while ik.has_pending() {
                ik.step(1 << 20, &mut obs);
            }
            (obs, ik.finish().fingerprint())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "seed must steer the dynamics");
    }
}
