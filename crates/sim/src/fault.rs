//! Adversarial channel faults: probabilistic loss, duplication, bounded
//! reordering, and timed link partitions that heal.
//!
//! The paper's system model (§2) assumes reliable FIFO channels. A
//! [`FaultPlan`] deliberately breaks that assumption so the `ekbd-link`
//! recovery layer can be shown to restore it: every fault decision is drawn
//! from a dedicated RNG stream derived from the run seed, so a faulty run is
//! exactly as deterministic and replayable as a fault-free one. With the
//! default (empty) plan the network is byte-for-byte the reliable FIFO
//! fabric of the seed simulator.

use crate::time::{Duration, Time};
use crate::ProcessId;
use std::collections::HashMap;

/// Per-edge fault probabilities.
///
/// All probabilities are clamped into `[0, 1]` when sampled. The default is
/// the fault-free channel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability that a message is silently dropped in transit.
    pub loss: f64,
    /// Probability that a message is delivered twice (the duplicate takes an
    /// independently sampled delay).
    pub dup: f64,
    /// Probability that a message escapes the FIFO floor: its delivery time
    /// ignores previously scheduled deliveries on the ordered channel and may
    /// therefore overtake older messages.
    pub reorder: f64,
    /// Extra delay jitter (uniform in `[0, reorder_window]`) added to a
    /// reordered message, bounding how far it can fall behind.
    pub reorder_window: Duration,
}

impl LinkFault {
    /// A channel that only loses messages, with probability `loss`.
    pub fn lossy(loss: f64) -> Self {
        LinkFault {
            loss,
            ..LinkFault::default()
        }
    }

    /// Whether this fault spec can never alter a message.
    pub fn is_inert(&self) -> bool {
        self.loss <= 0.0 && self.dup <= 0.0 && self.reorder <= 0.0
    }
}

/// A timed link partition: while `start ≤ now < heal`, every message whose
/// endpoints straddle `side` vs. the rest of the system is dropped.
///
/// Partitions always heal (or the run's horizon ends first); the paper's
/// eventual properties only require that faults stop eventually.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// One side of the cut (the other side is everyone else).
    pub side: Vec<ProcessId>,
    /// First instant at which the cut drops messages.
    pub start: Time,
    /// First instant at which the cut is healed (exclusive end).
    pub heal: Time,
}

impl Partition {
    /// Whether a message sent from `from` to `to` at `now` crosses this
    /// partition while it is active.
    pub fn cuts(&self, from: ProcessId, to: ProcessId, now: Time) -> bool {
        if now < self.start || now >= self.heal {
            return false;
        }
        self.side.contains(&from) != self.side.contains(&to)
    }
}

/// A scheduled restart of a crashed process (crash-recovery fault model).
///
/// If the process is not crashed when the event fires, it is a no-op; the
/// simulator never "restarts" a live process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverySpec {
    /// The process to restart.
    pub process: ProcessId,
    /// When the restart fires.
    pub at: Time,
    /// Whether the process reboots with adversarially corrupted dining
    /// state instead of blank state.
    pub corrupt: bool,
}

/// A scheduled transient fault flipping state bits of a *live* process.
///
/// If the process is crashed when the event fires, it is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptionSpec {
    /// The process whose state is corrupted.
    pub process: ProcessId,
    /// When the corruption fires.
    pub at: Time,
}

/// A deterministic, seeded schedule of channel faults for one run.
///
/// Built with chained setters:
///
/// ```
/// use ekbd_sim::{FaultPlan, LinkFault, ProcessId, Time};
/// let plan = FaultPlan::new()
///     .loss(0.10)
///     .duplication(0.02)
///     .reorder(0.05, 16)
///     .edge_fault(ProcessId(0), ProcessId(1), LinkFault::lossy(0.5))
///     .partition(vec![ProcessId(0)], Time(100), Time(400));
/// assert!(!plan.is_inert());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fault spec applied to every edge without an explicit override.
    pub default_fault: LinkFault,
    /// Per-edge overrides, keyed by unordered endpoint pair.
    overrides: HashMap<(ProcessId, ProcessId), LinkFault>,
    /// Timed partitions; a message is dropped if *any* active partition cuts
    /// it.
    pub partitions: Vec<Partition>,
    /// Scheduled restarts of crashed processes.
    pub recoveries: Vec<RecoverySpec>,
    /// Scheduled transient state corruptions of live processes.
    pub corruptions: Vec<CorruptionSpec>,
}

fn unordered(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultPlan {
    /// The empty plan: a perfectly reliable network.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the default per-message loss probability on every edge.
    pub fn loss(mut self, p: f64) -> Self {
        self.default_fault.loss = p;
        self
    }

    /// Sets the default per-message duplication probability on every edge.
    pub fn duplication(mut self, p: f64) -> Self {
        self.default_fault.dup = p;
        self
    }

    /// Sets the default reordering probability and jitter window.
    pub fn reorder(mut self, p: f64, window: Duration) -> Self {
        self.default_fault.reorder = p;
        self.default_fault.reorder_window = window;
        self
    }

    /// Overrides the fault spec for the unordered edge `{a, b}`.
    pub fn edge_fault(mut self, a: ProcessId, b: ProcessId, fault: LinkFault) -> Self {
        self.overrides.insert(unordered(a, b), fault);
        self
    }

    /// Adds a partition isolating `side` from the rest during
    /// `[start, heal)`.
    pub fn partition(mut self, side: Vec<ProcessId>, start: Time, heal: Time) -> Self {
        assert!(start < heal, "partition must heal after it starts");
        self.partitions.push(Partition { side, start, heal });
        self
    }

    /// Schedules a restart of `p` at `t` with blank (zeroed) state.
    pub fn recover(mut self, p: ProcessId, t: Time) -> Self {
        self.recoveries.push(RecoverySpec {
            process: p,
            at: t,
            corrupt: false,
        });
        self
    }

    /// Schedules a restart of `p` at `t` with adversarially corrupted state.
    pub fn recover_corrupted(mut self, p: ProcessId, t: Time) -> Self {
        self.recoveries.push(RecoverySpec {
            process: p,
            at: t,
            corrupt: true,
        });
        self
    }

    /// Schedules a transient state corruption of the live process `p` at `t`.
    pub fn corrupt_state(mut self, p: ProcessId, t: Time) -> Self {
        self.corruptions.push(CorruptionSpec { process: p, at: t });
        self
    }

    /// The fault spec in force on the unordered edge `{a, b}`.
    pub fn fault_for(&self, a: ProcessId, b: ProcessId) -> LinkFault {
        self.overrides
            .get(&unordered(a, b))
            .copied()
            .unwrap_or(self.default_fault)
    }

    /// Whether a message from `from` to `to` sent at `now` is cut by an
    /// active partition.
    pub fn partitioned(&self, from: ProcessId, to: ProcessId, now: Time) -> bool {
        self.partitions.iter().any(|p| p.cuts(from, to, now))
    }

    /// Whether this plan can never alter any message: no partitions and
    /// every reachable fault spec inert.
    pub fn is_inert(&self) -> bool {
        self.partitions.is_empty()
            && self.default_fault.is_inert()
            && self.overrides.values().all(LinkFault::is_inert)
            && self.recoveries.is_empty()
            && self.corruptions.is_empty()
    }

    /// The latest partition heal time, if any — after this instant the
    /// network is "eventually reliable" again (fault probabilities aside).
    pub fn last_heal(&self) -> Option<Time> {
        self.partitions.iter().map(|p| p.heal).max()
    }

    /// The time of the last scheduled process fault (recovery or
    /// corruption), if any — after this instant process state is only
    /// touched by the algorithm itself.
    pub fn last_process_fault(&self) -> Option<Time> {
        let r = self.recoveries.iter().map(|r| r.at).max();
        let c = self.corruptions.iter().map(|c| c.at).max();
        r.max(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_inert());
        assert!(!plan.partitioned(p(0), p(1), Time(5)));
        assert_eq!(plan.fault_for(p(0), p(1)), LinkFault::default());
        assert_eq!(plan.last_heal(), None);
    }

    #[test]
    fn edge_override_beats_default() {
        let plan = FaultPlan::new()
            .loss(0.1)
            .edge_fault(p(2), p(1), LinkFault::lossy(0.9));
        // Lookup is orientation-insensitive.
        assert_eq!(plan.fault_for(p(1), p(2)).loss, 0.9);
        assert_eq!(plan.fault_for(p(2), p(1)).loss, 0.9);
        assert_eq!(plan.fault_for(p(0), p(1)).loss, 0.1);
        assert!(!plan.is_inert());
    }

    #[test]
    fn partition_cuts_only_across_the_side_and_only_while_active() {
        let plan = FaultPlan::new().partition(vec![p(0), p(1)], Time(10), Time(20));
        // Across the cut, inside the window.
        assert!(plan.partitioned(p(0), p(2), Time(10)));
        assert!(plan.partitioned(p(2), p(1), Time(19)));
        // Within a side: never cut.
        assert!(!plan.partitioned(p(0), p(1), Time(15)));
        assert!(!plan.partitioned(p(2), p(3), Time(15)));
        // Outside the window: healed.
        assert!(!plan.partitioned(p(0), p(2), Time(9)));
        assert!(!plan.partitioned(p(0), p(2), Time(20)));
        assert_eq!(plan.last_heal(), Some(Time(20)));
    }

    #[test]
    #[should_panic(expected = "heal")]
    fn partition_must_heal_after_start() {
        let _ = FaultPlan::new().partition(vec![p(0)], Time(5), Time(5));
    }

    #[test]
    fn process_fault_schedules_are_not_inert() {
        let plan = FaultPlan::new().recover(p(1), Time(50));
        assert!(!plan.is_inert());
        assert_eq!(plan.last_process_fault(), Some(Time(50)));
        let plan = FaultPlan::new()
            .recover_corrupted(p(0), Time(40))
            .corrupt_state(p(2), Time(90));
        assert!(!plan.is_inert());
        assert_eq!(plan.last_process_fault(), Some(Time(90)));
        assert!(plan.recoveries[0].corrupt);
        assert_eq!(FaultPlan::new().last_process_fault(), None);
    }

    #[test]
    fn inert_fault_specs() {
        assert!(LinkFault::default().is_inert());
        assert!(!LinkFault::lossy(0.01).is_inert());
        let reordering = LinkFault {
            reorder: 0.5,
            reorder_window: 8,
            ..LinkFault::default()
        };
        assert!(!reordering.is_inert());
    }
}
