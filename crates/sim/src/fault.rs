//! Adversarial channel faults: probabilistic loss, duplication, bounded
//! reordering, and timed link partitions that heal.
//!
//! The paper's system model (§2) assumes reliable FIFO channels. A
//! [`FaultPlan`] deliberately breaks that assumption so the `ekbd-link`
//! recovery layer can be shown to restore it: every fault decision is drawn
//! from a dedicated RNG stream derived from the run seed, so a faulty run is
//! exactly as deterministic and replayable as a fault-free one. With the
//! default (empty) plan the network is byte-for-byte the reliable FIFO
//! fabric of the seed simulator.

use crate::time::{Duration, Time};
use crate::ProcessId;
use std::collections::HashMap;
use std::fmt;

/// Per-edge fault probabilities.
///
/// All probabilities are clamped into `[0, 1]` when sampled. The default is
/// the fault-free channel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability that a message is silently dropped in transit.
    pub loss: f64,
    /// Probability that a message is delivered twice (the duplicate takes an
    /// independently sampled delay).
    pub dup: f64,
    /// Probability that a message escapes the FIFO floor: its delivery time
    /// ignores previously scheduled deliveries on the ordered channel and may
    /// therefore overtake older messages.
    pub reorder: f64,
    /// Extra delay jitter (uniform in `[0, reorder_window]`) added to a
    /// reordered message, bounding how far it can fall behind.
    pub reorder_window: Duration,
}

impl LinkFault {
    /// A channel that only loses messages, with probability `loss`.
    pub fn lossy(loss: f64) -> Self {
        LinkFault {
            loss,
            ..LinkFault::default()
        }
    }

    /// Whether this fault spec can never alter a message.
    pub fn is_inert(&self) -> bool {
        self.loss <= 0.0 && self.dup <= 0.0 && self.reorder <= 0.0
    }
}

/// A timed link partition: while `start ≤ now < heal`, every message whose
/// endpoints straddle `side` vs. the rest of the system is dropped.
///
/// Partitions always heal (or the run's horizon ends first); the paper's
/// eventual properties only require that faults stop eventually.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// One side of the cut (the other side is everyone else).
    pub side: Vec<ProcessId>,
    /// First instant at which the cut drops messages.
    pub start: Time,
    /// First instant at which the cut is healed (exclusive end).
    pub heal: Time,
}

impl Partition {
    /// Whether a message sent from `from` to `to` at `now` crosses this
    /// partition while it is active.
    pub fn cuts(&self, from: ProcessId, to: ProcessId, now: Time) -> bool {
        if now < self.start || now >= self.heal {
            return false;
        }
        self.side.contains(&from) != self.side.contains(&to)
    }
}

/// A scheduled restart of a crashed process (crash-recovery fault model).
///
/// If the process is not crashed when the event fires, it is a no-op; the
/// simulator never "restarts" a live process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverySpec {
    /// The process to restart.
    pub process: ProcessId,
    /// When the restart fires.
    pub at: Time,
    /// Whether the process reboots with adversarially corrupted dining
    /// state instead of blank state.
    pub corrupt: bool,
}

/// A scheduled transient fault flipping state bits of a *live* process.
///
/// If the process is crashed when the event fires, it is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptionSpec {
    /// The process whose state is corrupted.
    pub process: ProcessId,
    /// When the corruption fires.
    pub at: Time,
}

/// Error returned by [`FaultPlan::validate`]: a contradictory or
/// out-of-range composition of fault axes that the simulator would
/// otherwise execute as a silent no-op (or a misleading half-effect).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// An event targets a process outside `0..n`.
    OutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The population size.
        n: usize,
    },
    /// A recovery is scheduled with no unconsumed crash of the same
    /// process strictly before it — the simulator would drop it as a
    /// no-op ("never restarts a live process").
    RecoverBeforeCrash {
        /// The process whose recovery dangles.
        process: ProcessId,
        /// When the dangling recovery fires.
        at: Time,
    },
    /// Two partitions are active at once and cut at least one common
    /// edge: the overlap makes heal-time reasoning ambiguous (healing one
    /// cut does not restore the edge), so composed schedules must keep
    /// partition windows edge-disjoint.
    OverlappingPartitions {
        /// Index of the earlier partition in [`FaultPlan::partitions`].
        first: usize,
        /// Index of the later, conflicting partition.
        second: usize,
    },
    /// A partition whose heal instant is not after its start (possible
    /// only by building the `partitions` field directly; the
    /// [`partition`](FaultPlan::partition) builder asserts this).
    PartitionNeverHeals {
        /// Index of the degenerate partition.
        index: usize,
    },
    /// A partition with an empty side cuts nothing.
    EmptyPartitionSide {
        /// Index of the vacuous partition.
        index: usize,
    },
    /// A probability outside `[0, 1]`.
    BadProbability {
        /// Which dial is out of range (`loss`, `dup`, `reorder`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::OutOfRange { process, n } => {
                write!(f, "fault event targets {process} in a population of {n}")
            }
            FaultPlanError::RecoverBeforeCrash { process, at } => write!(
                f,
                "recovery of {process} at {at} has no crash before it to recover from"
            ),
            FaultPlanError::OverlappingPartitions { first, second } => write!(
                f,
                "partitions #{first} and #{second} are active at once and cut a common edge"
            ),
            FaultPlanError::PartitionNeverHeals { index } => {
                write!(f, "partition #{index} does not heal after it starts")
            }
            FaultPlanError::EmptyPartitionSide { index } => {
                write!(f, "partition #{index} has an empty side and cuts nothing")
            }
            FaultPlanError::BadProbability { what, value } => {
                write!(f, "{what} probability {value} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic, seeded schedule of channel faults for one run.
///
/// Built with chained setters:
///
/// ```
/// use ekbd_sim::{FaultPlan, LinkFault, ProcessId, Time};
/// let plan = FaultPlan::new()
///     .loss(0.10)
///     .duplication(0.02)
///     .reorder(0.05, 16)
///     .edge_fault(ProcessId(0), ProcessId(1), LinkFault::lossy(0.5))
///     .partition(vec![ProcessId(0)], Time(100), Time(400));
/// assert!(!plan.is_inert());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fault spec applied to every edge without an explicit override.
    pub default_fault: LinkFault,
    /// Per-edge overrides, keyed by unordered endpoint pair.
    overrides: HashMap<(ProcessId, ProcessId), LinkFault>,
    /// Timed partitions; a message is dropped if *any* active partition cuts
    /// it.
    pub partitions: Vec<Partition>,
    /// Scheduled restarts of crashed processes.
    pub recoveries: Vec<RecoverySpec>,
    /// Scheduled transient state corruptions of live processes.
    pub corruptions: Vec<CorruptionSpec>,
}

fn unordered(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultPlan {
    /// The empty plan: a perfectly reliable network.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the default per-message loss probability on every edge.
    pub fn loss(mut self, p: f64) -> Self {
        self.default_fault.loss = p;
        self
    }

    /// Sets the default per-message duplication probability on every edge.
    pub fn duplication(mut self, p: f64) -> Self {
        self.default_fault.dup = p;
        self
    }

    /// Sets the default reordering probability and jitter window.
    pub fn reorder(mut self, p: f64, window: Duration) -> Self {
        self.default_fault.reorder = p;
        self.default_fault.reorder_window = window;
        self
    }

    /// Overrides the fault spec for the unordered edge `{a, b}`.
    pub fn edge_fault(mut self, a: ProcessId, b: ProcessId, fault: LinkFault) -> Self {
        self.overrides.insert(unordered(a, b), fault);
        self
    }

    /// Adds a partition isolating `side` from the rest during
    /// `[start, heal)`.
    pub fn partition(mut self, side: Vec<ProcessId>, start: Time, heal: Time) -> Self {
        assert!(start < heal, "partition must heal after it starts");
        self.partitions.push(Partition { side, start, heal });
        self
    }

    /// Schedules a restart of `p` at `t` with blank (zeroed) state.
    pub fn recover(mut self, p: ProcessId, t: Time) -> Self {
        self.recoveries.push(RecoverySpec {
            process: p,
            at: t,
            corrupt: false,
        });
        self
    }

    /// Schedules a restart of `p` at `t` with adversarially corrupted state.
    pub fn recover_corrupted(mut self, p: ProcessId, t: Time) -> Self {
        self.recoveries.push(RecoverySpec {
            process: p,
            at: t,
            corrupt: true,
        });
        self
    }

    /// Schedules a transient state corruption of the live process `p` at `t`.
    pub fn corrupt_state(mut self, p: ProcessId, t: Time) -> Self {
        self.corruptions.push(CorruptionSpec { process: p, at: t });
        self
    }

    /// The fault spec in force on the unordered edge `{a, b}`.
    pub fn fault_for(&self, a: ProcessId, b: ProcessId) -> LinkFault {
        self.overrides
            .get(&unordered(a, b))
            .copied()
            .unwrap_or(self.default_fault)
    }

    /// Whether a message from `from` to `to` sent at `now` is cut by an
    /// active partition.
    pub fn partitioned(&self, from: ProcessId, to: ProcessId, now: Time) -> bool {
        self.partitions.iter().any(|p| p.cuts(from, to, now))
    }

    /// Whether this plan can never alter any message: no partitions and
    /// every reachable fault spec inert.
    pub fn is_inert(&self) -> bool {
        self.partitions.is_empty()
            && self.default_fault.is_inert()
            && self.overrides.values().all(LinkFault::is_inert)
            && self.recoveries.is_empty()
            && self.corruptions.is_empty()
    }

    /// The latest partition heal time, if any — after this instant the
    /// network is "eventually reliable" again (fault probabilities aside).
    pub fn last_heal(&self) -> Option<Time> {
        self.partitions.iter().map(|p| p.heal).max()
    }

    /// Checks the plan against a population of `n` and a crash schedule.
    ///
    /// The crash schedule lives at scenario scope (the simulator's
    /// `schedule_crash`), not in the plan, but recoveries only make sense
    /// relative to it — so composition validation takes both.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range targets, probabilities outside `[0, 1]`,
    /// degenerate partitions, concurrently-active partitions that cut a
    /// common edge, and recoveries with no unconsumed crash of the same
    /// process strictly before them.
    pub fn validate(&self, n: usize, crashes: &[(ProcessId, Time)]) -> Result<(), FaultPlanError> {
        let check_prob = |what: &'static str, value: f64| {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(FaultPlanError::BadProbability { what, value })
            }
        };
        for f in std::iter::once(&self.default_fault).chain(self.overrides.values()) {
            check_prob("loss", f.loss)?;
            check_prob("dup", f.dup)?;
            check_prob("reorder", f.reorder)?;
        }
        let check_range = |p: ProcessId| {
            if p.index() < n {
                Ok(())
            } else {
                Err(FaultPlanError::OutOfRange { process: p, n })
            }
        };
        for &(p, _) in crashes {
            check_range(p)?;
        }
        for r in &self.recoveries {
            check_range(r.process)?;
        }
        for c in &self.corruptions {
            check_range(c.process)?;
        }
        for (i, part) in self.partitions.iter().enumerate() {
            if part.side.is_empty() {
                return Err(FaultPlanError::EmptyPartitionSide { index: i });
            }
            if part.heal <= part.start {
                return Err(FaultPlanError::PartitionNeverHeals { index: i });
            }
            for &p in &part.side {
                check_range(p)?;
            }
        }
        // Concurrently-active partitions must be edge-disjoint: healing
        // one cut while the other still severs the same pair makes "the
        // network is whole after last_heal" reasoning ambiguous per edge.
        for i in 0..self.partitions.len() {
            for j in i + 1..self.partitions.len() {
                let (a, b) = (&self.partitions[i], &self.partitions[j]);
                let windows_overlap = a.start < b.heal && b.start < a.heal;
                if !windows_overlap {
                    continue;
                }
                let common_edge = (0..n).any(|x| {
                    (x + 1..n).any(|y| {
                        let (x, y) = (ProcessId::from(x), ProcessId::from(y));
                        let cut = |p: &Partition| p.side.contains(&x) != p.side.contains(&y);
                        cut(a) && cut(b)
                    })
                });
                if common_edge {
                    return Err(FaultPlanError::OverlappingPartitions {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        // Each recovery needs its own crash strictly before it: pair the
        // k-th recovery of a process (in time order) with the k-th crash.
        let mut by_process: HashMap<ProcessId, (Vec<Time>, Vec<Time>)> = HashMap::new();
        for &(p, t) in crashes {
            by_process.entry(p).or_default().0.push(t);
        }
        for r in &self.recoveries {
            by_process.entry(r.process).or_default().1.push(r.at);
        }
        for (p, (mut cr, mut rec)) in by_process {
            cr.sort_unstable();
            rec.sort_unstable();
            for (k, &at) in rec.iter().enumerate() {
                if cr.get(k).is_none_or(|&c| c >= at) {
                    return Err(FaultPlanError::RecoverBeforeCrash { process: p, at });
                }
            }
        }
        Ok(())
    }

    /// The time of the last scheduled process fault (recovery or
    /// corruption), if any — after this instant process state is only
    /// touched by the algorithm itself.
    pub fn last_process_fault(&self) -> Option<Time> {
        let r = self.recoveries.iter().map(|r| r.at).max();
        let c = self.corruptions.iter().map(|c| c.at).max();
        r.max(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::from(i)
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_inert());
        assert!(!plan.partitioned(p(0), p(1), Time(5)));
        assert_eq!(plan.fault_for(p(0), p(1)), LinkFault::default());
        assert_eq!(plan.last_heal(), None);
    }

    #[test]
    fn edge_override_beats_default() {
        let plan = FaultPlan::new()
            .loss(0.1)
            .edge_fault(p(2), p(1), LinkFault::lossy(0.9));
        // Lookup is orientation-insensitive.
        assert_eq!(plan.fault_for(p(1), p(2)).loss, 0.9);
        assert_eq!(plan.fault_for(p(2), p(1)).loss, 0.9);
        assert_eq!(plan.fault_for(p(0), p(1)).loss, 0.1);
        assert!(!plan.is_inert());
    }

    #[test]
    fn partition_cuts_only_across_the_side_and_only_while_active() {
        let plan = FaultPlan::new().partition(vec![p(0), p(1)], Time(10), Time(20));
        // Across the cut, inside the window.
        assert!(plan.partitioned(p(0), p(2), Time(10)));
        assert!(plan.partitioned(p(2), p(1), Time(19)));
        // Within a side: never cut.
        assert!(!plan.partitioned(p(0), p(1), Time(15)));
        assert!(!plan.partitioned(p(2), p(3), Time(15)));
        // Outside the window: healed.
        assert!(!plan.partitioned(p(0), p(2), Time(9)));
        assert!(!plan.partitioned(p(0), p(2), Time(20)));
        assert_eq!(plan.last_heal(), Some(Time(20)));
    }

    #[test]
    #[should_panic(expected = "heal")]
    fn partition_must_heal_after_start() {
        let _ = FaultPlan::new().partition(vec![p(0)], Time(5), Time(5));
    }

    #[test]
    fn process_fault_schedules_are_not_inert() {
        let plan = FaultPlan::new().recover(p(1), Time(50));
        assert!(!plan.is_inert());
        assert_eq!(plan.last_process_fault(), Some(Time(50)));
        let plan = FaultPlan::new()
            .recover_corrupted(p(0), Time(40))
            .corrupt_state(p(2), Time(90));
        assert!(!plan.is_inert());
        assert_eq!(plan.last_process_fault(), Some(Time(90)));
        assert!(plan.recoveries[0].corrupt);
        assert_eq!(FaultPlan::new().last_process_fault(), None);
    }

    #[test]
    fn validate_accepts_sane_compositions() {
        let plan = FaultPlan::new()
            .loss(0.1)
            .duplication(0.05)
            .reorder(0.2, 8)
            .partition(vec![p(0)], Time(100), Time(400))
            .partition(vec![p(2)], Time(600), Time(900))
            .recover(p(1), Time(500))
            .corrupt_state(p(3), Time(700));
        plan.validate(5, &[(p(1), Time(200))]).unwrap();
        // Time-overlapping partitions are fine when edge-disjoint: {0} vs
        // {1} both cut (0,1)… so use sides whose cut sets are disjoint.
        let plan = FaultPlan::new()
            .partition(vec![p(0), p(1)], Time(100), Time(400))
            .partition(vec![p(0), p(1)], Time(200), Time(500));
        assert!(matches!(
            plan.validate(4, &[]),
            Err(FaultPlanError::OverlappingPartitions {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn validate_rejects_recover_before_crash() {
        let plan = FaultPlan::new().recover(p(1), Time(500));
        assert_eq!(
            plan.validate(5, &[]),
            Err(FaultPlanError::RecoverBeforeCrash {
                process: p(1),
                at: Time(500)
            })
        );
        // Recovery at the same instant as the crash is still dangling.
        assert!(plan.validate(5, &[(p(1), Time(500))]).is_err());
        // Two recoveries need two crashes.
        let plan = FaultPlan::new()
            .recover(p(1), Time(500))
            .recover(p(1), Time(900));
        assert!(plan.validate(5, &[(p(1), Time(100))]).is_err());
        plan.validate(5, &[(p(1), Time(100)), (p(1), Time(700))])
            .unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range_and_bad_dials() {
        assert_eq!(
            FaultPlan::new()
                .recover(p(9), Time(5))
                .validate(4, &[(p(9), Time(1))]),
            Err(FaultPlanError::OutOfRange {
                process: p(9),
                n: 4
            })
        );
        assert!(FaultPlan::new().validate(4, &[(p(7), Time(1))]).is_err());
        assert!(matches!(
            FaultPlan::new().loss(1.5).validate(4, &[]),
            Err(FaultPlanError::BadProbability { what: "loss", .. })
        ));
        assert!(FaultPlan::new()
            .edge_fault(p(0), p(1), LinkFault::lossy(-0.1))
            .validate(4, &[])
            .is_err());
        // Degenerate partitions built by direct field manipulation.
        let mut plan = FaultPlan::new();
        plan.partitions.push(Partition {
            side: vec![],
            start: Time(1),
            heal: Time(2),
        });
        assert_eq!(
            plan.validate(4, &[]),
            Err(FaultPlanError::EmptyPartitionSide { index: 0 })
        );
        let mut plan = FaultPlan::new();
        plan.partitions.push(Partition {
            side: vec![p(0)],
            start: Time(9),
            heal: Time(9),
        });
        assert_eq!(
            plan.validate(4, &[]),
            Err(FaultPlanError::PartitionNeverHeals { index: 0 })
        );
    }

    #[test]
    fn fault_plan_error_display() {
        let e = FaultPlanError::OverlappingPartitions {
            first: 0,
            second: 2,
        };
        assert!(e.to_string().contains("common edge"));
        assert!(FaultPlanError::RecoverBeforeCrash {
            process: p(1),
            at: Time(9)
        }
        .to_string()
        .contains("no crash"));
    }

    #[test]
    fn inert_fault_specs() {
        assert!(LinkFault::default().is_inert());
        assert!(!LinkFault::lossy(0.01).is_inert());
        let reordering = LinkFault {
            reorder: 0.5,
            reorder_window: 8,
            ..LinkFault::default()
        };
        assert!(!reordering.is_inert());
    }
}
